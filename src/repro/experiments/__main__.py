"""CLI: regenerate paper exhibits.

Usage::

    python -m repro.experiments                    # usage + exhibit ids
    python -m repro.experiments --list             # sorted ids, one per line
    python -m repro.experiments fig11              # run one and print it
    python -m repro.experiments all                # run everything
    python -m repro.experiments all --jobs 0       # ... on every core
    python -m repro.experiments fig11 --no-cache   # force recompute
    python -m repro.experiments --report out fig11 # also drop artifacts
    python -m repro.experiments all --tier fleet   # fluid scale tier only
    python -m repro.experiments --list --tier all  # every id + its tier

``--tier`` scopes ``all`` and ``--list`` to the per-session testbed
exhibits (default), the ``repro.fleet`` fluid-tier exhibits, or both;
exhibits named explicitly always run regardless of tier.

Runs go through ``repro.runtime``:

* ``--jobs N`` parallelizes over ``N`` worker processes (``0`` = all
  cores). A single exhibit parallelizes its internal sweeps (RPS grids,
  seed repeats); several exhibits (or ``all``) fan out whole exhibits,
  one per worker. Results print in request order either way, and are
  byte-identical to a serial run.
* Finished exhibits are cached under ``--cache-dir`` (default
  ``.repro-cache/``, or ``$REPRO_CACHE_DIR``), keyed by the exhibit id,
  the cost-model fingerprint, and the source hash of the exhibit's
  import closure — touching a module only invalidates the exhibits
  that (transitively) import it. ``--no-cache`` bypasses the cache.

With ``--report <dir>``, every exhibit run executes with an enabled
telemetry registry and step profiling, and drops three machine-readable
artifacts into ``<dir>``:

* ``<exp_id>.report.json`` — tables/series/findings + telemetry snapshot
  + per-simulator profiler attribution;
* ``<exp_id>.prom``        — Prometheus text-format metrics snapshot;
* ``<exp_id>.trace.json``  — Chrome ``trace_event`` JSON (open in
  ``chrome://tracing`` or https://ui.perfetto.dev).

Artifacts require a real execution, so ``--report`` refreshes the cache
instead of reading it.
"""

import argparse
import sys

from ..runtime import RunSpec, SweepExecutor, run_exhibit, use_executor
from . import EXPERIMENTS, exhibit_ids, exhibit_tier


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate paper exhibits.")
    parser.add_argument("targets", nargs="*", metavar="exhibit",
                        help="exhibit ids to run, or 'all'")
    parser.add_argument("--list", action="store_true", dest="list_exhibits",
                        help="print the sorted known exhibit ids (with "
                             "their tier) and exit")
    parser.add_argument("--tier", choices=("testbed", "fleet", "all"),
                        default="testbed",
                        help="which tier 'all' and --list cover: the "
                             "per-session testbed exhibits (default), "
                             "the fluid fleet-scale exhibits, or both; "
                             "explicitly named exhibits always run")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (0 = all cores; default 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and don't write the result cache")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="result cache directory "
                             "(default .repro-cache or $REPRO_CACHE_DIR)")
    parser.add_argument("--report", default=None, metavar="DIR",
                        help="write report/metrics/trace artifacts to DIR")
    return parser


def _print_run(run) -> None:
    print(run.result.formatted())
    status = "cached" if run.cache_hit else "regenerated"
    line = f"[{run.exp_id} {status} in {run.elapsed_s:.1f}s"
    if run.artifact_paths:
        line += "; artifacts: " + ", ".join(sorted(
            run.artifact_paths.values()))
    print(line + "]\n")


def main(argv) -> int:
    try:
        options = _parser().parse_args(argv[1:])
    except SystemExit as exit_:  # argparse error (2) or --help (0)
        return 0 if exit_.code == 0 else 1
    def in_tier(exp_id: str) -> bool:
        return options.tier in ("all", exhibit_tier(exp_id))

    if options.list_exhibits:
        for exp_id in exhibit_ids():
            if in_tier(exp_id):
                print(f"{exp_id}  [{exhibit_tier(exp_id)}]")
        return 0
    if not options.targets:
        _parser().print_usage()
        print("exhibits:", " ".join(EXPERIMENTS))
        return 1
    if options.targets == ["all"]:
        targets = [exp_id for exp_id in EXPERIMENTS if in_tier(exp_id)]
    else:
        targets = options.targets
        unknown = [t for t in targets if t not in EXPERIMENTS]
        if unknown:
            print("unknown exhibit(s):", " ".join(unknown), file=sys.stderr)
            print("known exhibits:", " ".join(EXPERIMENTS), file=sys.stderr)
            return 1

    specs = [RunSpec(exp_id, report_dir=options.report,
                     use_cache=not options.no_cache,
                     cache_dir=options.cache_dir)
             for exp_id in targets]
    if len(specs) == 1:
        # One exhibit: spend the workers inside it, on its own sweeps.
        with use_executor(jobs=options.jobs):
            _print_run(run_exhibit(specs[0]))
        return 0
    # Several exhibits: one exhibit per worker; inner sweeps stay serial
    # (pool workers are daemonic and cannot nest pools).
    with SweepExecutor(jobs=options.jobs) as executor:
        for run in executor.imap(run_exhibit, specs):
            _print_run(run)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
