"""CLI: regenerate paper exhibits.

Usage::

    python -m repro.experiments                    # list exhibits
    python -m repro.experiments fig11              # run one and print it
    python -m repro.experiments all                # run everything (minutes)
    python -m repro.experiments --report out fig11 # also drop artifacts

With ``--report <dir>``, every exhibit run executes with an enabled
telemetry registry and step profiling, and drops three machine-readable
artifacts into ``<dir>``:

* ``<exp_id>.report.json`` — tables/series/findings + telemetry snapshot
  + per-simulator profiler attribution;
* ``<exp_id>.prom``        — Prometheus text-format metrics snapshot;
* ``<exp_id>.trace.json``  — Chrome ``trace_event`` JSON (open in
  ``chrome://tracing`` or https://ui.perfetto.dev).
"""

import sys
import time

from ..obs import (
    Telemetry,
    disable_profiling,
    enable_profiling,
    set_telemetry,
    take_profilers,
    write_run_artifacts,
)
from . import EXPERIMENTS, run

USAGE = "usage: python -m repro.experiments [--report <dir>] <exhibit>|all"


def _run_with_report(exp_id: str, report_dir: str):
    """Run one exhibit under telemetry + profiling; write its artifacts."""
    telemetry = Telemetry(enabled=True)
    previous = set_telemetry(telemetry)
    enable_profiling(keep_timeline=True)
    take_profilers()  # drop any profilers a previous exhibit leaked
    started = time.time()
    try:
        result = run(exp_id)
    finally:
        disable_profiling()
        set_telemetry(previous)
    elapsed = time.time() - started
    profilers = take_profilers()
    paths = write_run_artifacts(
        report_dir, exp_id, result=result, telemetry=telemetry,
        profilers=profilers,
        meta={"exp_id": exp_id, "wall_clock_s": elapsed,
              "simulators_profiled": len(profilers)})
    return result, elapsed, paths


def main(argv) -> int:
    args = list(argv[1:])
    report_dir = None
    if "--report" in args:
        index = args.index("--report")
        if index + 1 >= len(args):
            print(USAGE)
            return 1
        report_dir = args[index + 1]
        del args[index:index + 2]
    if not args:
        print(USAGE)
        print("exhibits:", " ".join(EXPERIMENTS))
        return 1
    targets = list(EXPERIMENTS) if args[0] == "all" else args
    for exp_id in targets:
        if report_dir is not None:
            result, elapsed, paths = _run_with_report(exp_id, report_dir)
            print(result.formatted())
            print(f"[{exp_id} regenerated in {elapsed:.1f}s; artifacts: "
                  + ", ".join(sorted(paths.values())) + "]\n")
        else:
            started = time.time()
            result = run(exp_id)
            print(result.formatted())
            print(f"[{exp_id} regenerated in {time.time() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
