"""CLI: regenerate paper exhibits.

Usage::

    python -m repro.experiments            # list exhibits
    python -m repro.experiments fig11      # run one and print it
    python -m repro.experiments all        # run everything (minutes)
"""

import sys
import time

from . import EXPERIMENTS, run


def main(argv) -> int:
    if len(argv) < 2:
        print("usage: python -m repro.experiments <exhibit>|all")
        print("exhibits:", " ".join(EXPERIMENTS))
        return 1
    targets = list(EXPERIMENTS) if argv[1] == "all" else argv[1:]
    for exp_id in targets:
        started = time.time()
        result = run(exp_id)
        print(result.formatted())
        print(f"[{exp_id} regenerated in {time.time() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
