"""Shared testbed construction (§5.1) and measurement helpers.

The paper's testbed: one master + two worker nodes, 15 pods per worker,
3 services; 8 cores / 16 threads. Every comparison experiment builds
this identical layout per architecture.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple, Type

from ..core import CanalMesh
from ..k8s import Cluster
from ..mesh import AmbientMesh, DEFAULT_COSTS, IstioMesh, MeshCostModel, NoMesh
from ..mesh.base import ServiceMesh
from ..netsim import Topology
from ..runtime.sweep import sweep_imap
from ..simcore import Simulator
from ..workloads import ClosedLoopDriver, LoadReport, OpenLoopDriver

__all__ = ["TestbedRun", "build_testbed", "light_load_latency",
           "latency_at_rps", "find_knee_rps", "MESH_CLASSES"]

MESH_CLASSES = {
    "no-mesh": NoMesh,
    "istio": IstioMesh,
    "ambient": AmbientMesh,
    "canal": CanalMesh,
}

#: The §5.1 testbed shape.
SERVICES = 3
PODS_PER_SERVICE = 10
WORKER_NODES = 2


class TestbedRun:
    """A fully built testbed ready to drive load."""

    def __init__(self, sim: Simulator, cluster: Cluster, mesh: ServiceMesh):
        self.sim = sim
        self.cluster = cluster
        self.mesh = mesh

    @property
    def client_pod(self):
        return self.cluster.pods["svc0-1"]

    def run_driver(self, driver) -> LoadReport:
        process = self.sim.process(driver.run(), name="driver")
        self.sim.run()
        return process.value


def build_testbed(mesh_name: str, seed: int = 7,
                  costs: MeshCostModel = DEFAULT_COSTS,
                  mesh_kwargs: Optional[dict] = None) -> TestbedRun:
    """Construct the §5.1 testbed for one architecture."""
    mesh_cls = MESH_CLASSES[mesh_name]
    sim = Simulator(seed)
    topology = Topology.single_az_testbed(worker_nodes=WORKER_NODES)
    cluster = Cluster("testbed", topology.all_nodes())
    mesh = mesh_cls(sim, costs=costs, **(mesh_kwargs or {}))
    mesh.attach(cluster)
    for index in range(SERVICES):
        name = f"svc{index}"
        cluster.create_deployment(name, replicas=PODS_PER_SERVICE,
                                  labels={"app": name})
        cluster.create_service(name, selector={"app": name})
    return TestbedRun(sim, cluster, mesh)


def light_load_latency(mesh_name: str, seed: int = 7,
                       costs: MeshCostModel = DEFAULT_COSTS,
                       requests: int = 100,
                       mesh_kwargs: Optional[dict] = None) -> LoadReport:
    """Fig 10's probe: 1 thread, 1 connection, 1 request per second."""
    run = build_testbed(mesh_name, seed=seed, costs=costs,
                        mesh_kwargs=mesh_kwargs)
    driver = ClosedLoopDriver(run.sim, run.mesh, run.client_pod, "svc1",
                              connections=1,
                              requests_per_connection=requests,
                              think_time_s=1.0)
    return run.run_driver(driver)


def latency_at_rps(mesh_name: str, rps: float, duration_s: float = 3.0,
                   seed: int = 7, costs: MeshCostModel = DEFAULT_COSTS,
                   connections: int = 100,
                   mesh_kwargs: Optional[dict] = None
                   ) -> Tuple[LoadReport, TestbedRun]:
    """Fig 11's probe: open-loop offered load over 100 connections."""
    run = build_testbed(mesh_name, seed=seed, costs=costs,
                        mesh_kwargs=mesh_kwargs)
    driver = OpenLoopDriver(run.sim, run.mesh, run.client_pod, "svc1",
                            rps=rps, duration_s=duration_s,
                            connections=connections)
    report = run.run_driver(driver)
    return report, run


def _knee_point(spec: Tuple[str, float, float, int, MeshCostModel]) -> float:
    """One RPS grid point → P99 latency (module-level: sweeps pickle it)."""
    mesh_name, rps, duration_s, seed, costs = spec
    report, _run = latency_at_rps(mesh_name, rps, duration_s=duration_s,
                                  seed=seed, costs=costs)
    return report.latency.percentile(99)


def find_knee_rps(mesh_name: str, rps_grid: List[float],
                  spike_multiplier: float = 3.0, seed: int = 7,
                  costs: MeshCostModel = DEFAULT_COSTS,
                  duration_s: float = 3.0) -> Tuple[float, List[Tuple[float, float]]]:
    """Sweep offered RPS; return (knee, [(rps, p99)]) where the knee is
    the last RPS before P99 exceeds ``spike_multiplier`` × its
    light-load value.

    Grid points run through the ambient sweep executor. Consumption is
    ordered and stops past the spike, so the returned curve is
    byte-identical at any ``--jobs`` level (a serial executor also skips
    *computing* the points past the spike).
    """
    curve: List[Tuple[float, float]] = []
    base_p99: Optional[float] = None
    knee = rps_grid[0]
    specs = [(mesh_name, rps, duration_s, seed, costs) for rps in rps_grid]
    for rps, p99 in zip(rps_grid, sweep_imap(_knee_point, specs)):
        curve.append((rps, p99))
        if base_p99 is None:
            base_p99 = p99
        if p99 > spike_multiplier * base_p99:
            return knee, curve
        knee = rps
    return knee, curve
