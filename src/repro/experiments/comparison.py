"""§5.2–§5.4 exhibits: Canal vs Istio vs Ambient on the testbed.

Fig 10 (light-load latency), Fig 11 (latency vs RPS / throughput),
Fig 12 (crypto-offload CPU saving), Fig 13 (CPU usage), Fig 14
(configuration completion time), Fig 15 (southbound bandwidth).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core import CanalControlPlane
from ..mesh import (
    AmbientControlPlane,
    DEFAULT_COSTS,
    IstioControlPlane,
    MeshCostModel,
)
from ..runtime.sweep import sweep_map
from ..simcore import Simulator, percentile
from ..workloads import OpenLoopDriver, ShortFlowDriver
from .base import ExperimentResult, Series, Table
from .testbed import build_testbed, find_knee_rps, light_load_latency

__all__ = [
    "fig10_latency_light_workloads",
    "fig11_latency_vs_rps",
    "fig12_crypto_cpu_saving",
    "fig13_cpu_usage",
    "fig14_config_completion",
    "fig15_southbound_bandwidth",
]


# --------------------------------------------------------------------------
# Fig 10 — latency under light workloads
# --------------------------------------------------------------------------

def fig10_latency_light_workloads(seed: int = 7,
                                  costs: MeshCostModel = DEFAULT_COSTS,
                                  requests: int = 100) -> ExperimentResult:
    """1 thread, 1 connection, 1 request/s, 100 times, per architecture."""
    result = ExperimentResult("fig10", "Latency under light workloads")
    table = Table("Mean end-to-end latency",
                  ["architecture", "mean_ms", "p90_ms"])
    means: Dict[str, float] = {}
    for mesh_name in ("no-mesh", "canal", "ambient", "istio"):
        report = light_load_latency(mesh_name, seed=seed, costs=costs,
                                    requests=requests)
        mean = report.latency.mean
        means[mesh_name] = mean
        table.add_row(mesh_name, mean * 1e3,
                      report.latency.percentile(90) * 1e3)
    result.tables.append(table)
    result.findings["istio_over_canal"] = means["istio"] / means["canal"]
    result.findings["ambient_over_canal"] = means["ambient"] / means["canal"]
    result.findings["canal_over_baseline"] = means["canal"] / means["no-mesh"]
    result.notes.append(
        "paper: Canal is closest to the no-mesh baseline; its latency is "
        "1.7x / 1.3x lower than Istio / Ambient")
    return result


# --------------------------------------------------------------------------
# Fig 11 — P99 latency under changing workloads (throughput knees)
# --------------------------------------------------------------------------

#: RPS sweep grids per architecture (coarse → the knee bands).
_DEFAULT_GRIDS = {
    "istio": [200, 400, 600, 800, 1000, 1200, 1400, 1600, 1800, 2200],
    "ambient": [500, 1500, 3000, 4000, 5000, 6000, 7000, 8000, 9000],
    "canal": [1000, 3000, 6000, 9000, 11000, 12000, 13000, 14000, 16000],
}


def fig11_latency_vs_rps(grids: Optional[Dict[str, List[float]]] = None,
                         seed: int = 7,
                         costs: MeshCostModel = DEFAULT_COSTS,
                         duration_s: float = 3.0) -> ExperimentResult:
    """Sweep offered RPS per architecture; report P99 curves and the
    max sustainable RPS before the latency spike."""
    result = ExperimentResult("fig11", "P99 latency under changing workloads")
    knees: Dict[str, float] = {}
    for mesh_name, grid in (grids or _DEFAULT_GRIDS).items():
        knee, curve = find_knee_rps(mesh_name, grid, seed=seed, costs=costs,
                                    duration_s=duration_s)
        knees[mesh_name] = knee
        series = Series(f"{mesh_name}_p99", x_label="rps",
                        y_label="p99_latency_s")
        for rps, p99 in curve:
            series.add(rps, p99)
        result.series.append(series)
    table = Table("Throughput before latency spike",
                  ["architecture", "max_rps"])
    for mesh_name, knee in knees.items():
        table.add_row(mesh_name, knee)
    result.tables.append(table)
    result.findings["canal_over_istio_throughput"] = (
        knees["canal"] / knees["istio"])
    result.findings["canal_over_ambient_throughput"] = (
        knees["canal"] / knees["ambient"])
    result.notes.append(
        "paper: Canal's throughput is 12.3x / 2.3x that of Istio / "
        "Ambient; the model reproduces the ordering with ~7-9x / ~1.8-2.2x "
        "(see EXPERIMENTS.md on the residual gap)")
    return result


# --------------------------------------------------------------------------
# Fig 12 — on-node proxy CPU saving from crypto offloading
# --------------------------------------------------------------------------

def _fig12_point(spec: Tuple[dict, float, int, MeshCostModel, float]
                 ) -> float:
    """One (crypto mode, rps) testbed run → on-node CPU cores."""
    kwargs, rps, seed, costs, duration_s = spec
    run = build_testbed("canal", seed=seed, costs=costs,
                        mesh_kwargs=dict(kwargs))
    driver = ShortFlowDriver(run.sim, run.mesh, run.client_pod,
                             "svc1", rps=rps, duration_s=duration_s)
    run.run_driver(driver)
    return run.mesh.user_cpu_seconds() / duration_s


def fig12_crypto_cpu_saving(rps_levels: Optional[List[float]] = None,
                            seed: int = 7,
                            costs: MeshCostModel = DEFAULT_COSTS,
                            duration_s: float = 3.0) -> ExperimentResult:
    """HTTPS short flows through Canal's on-node proxy under three
    crypto configurations; savings are vs software crypto.

    Local AVX-512 fills batches only at high RPS (lower saving at low
    load); the remote key server always sees full batches.
    """
    result = ExperimentResult(
        "fig12", "On-node proxy CPU saving with crypto offloading")
    levels = rps_levels or [100, 400, 1000]
    modes = (
        ("software", {"crypto_offload": "software",
                      "software_new_cpu": False}),
        ("local", {"crypto_offload": "local"}),
        ("remote", {"crypto_offload": "remote"}))
    specs = [(kwargs, rps, seed, costs, duration_s)
             for _mode, kwargs in modes for rps in levels]
    usages_flat = sweep_map(_fig12_point, specs)
    cpu_by_mode: Dict[str, List[float]] = {}
    for index, (mode, _kwargs) in enumerate(modes):
        usages = usages_flat[index * len(levels):(index + 1) * len(levels)]
        series = Series(f"{mode}_onnode_cpu_cores", x_label="rps",
                        y_label="cores")
        for rps, cores in zip(levels, usages):
            series.add(rps, cores)
        cpu_by_mode[mode] = usages
        result.series.append(series)
    local_savings = [1 - l / s for l, s in zip(cpu_by_mode["local"],
                                               cpu_by_mode["software"])]
    remote_savings = [1 - r / s for r, s in zip(cpu_by_mode["remote"],
                                                cpu_by_mode["software"])]
    table = Table("CPU saving vs software crypto",
                  ["rps", "local_saving", "remote_saving"])
    for rps, local, remote in zip(levels, local_savings, remote_savings):
        table.add_row(rps, local, remote)
    result.tables.append(table)
    result.findings["local_saving_min"] = min(local_savings)
    result.findings["local_saving_max"] = max(local_savings)
    result.findings["remote_saving_min"] = min(remote_savings)
    result.findings["remote_saving_max"] = max(remote_savings)
    result.notes.append(
        "paper: local offloading saves 43-70% CPU, remote 62-70%")
    return result


# --------------------------------------------------------------------------
# Fig 13 — CPU usage of Istio, Ambient, and Canal
# --------------------------------------------------------------------------

def _fig13_point(spec: Tuple[str, float, int, MeshCostModel, float]
                 ) -> Tuple[float, float]:
    """One (mesh, rps) testbed run → (user cores, infra cores)."""
    mesh_name, rps, seed, costs, duration_s = spec
    run = build_testbed(mesh_name, seed=seed, costs=costs)
    driver = OpenLoopDriver(run.sim, run.mesh, run.client_pod,
                            "svc1", rps=rps, duration_s=duration_s,
                            connections=50)
    run.run_driver(driver)
    return (run.mesh.user_cpu_seconds() / duration_s,
            run.mesh.infra_cpu_seconds() / duration_s)


def fig13_cpu_usage(rps_levels: Optional[List[float]] = None, seed: int = 7,
                    costs: MeshCostModel = DEFAULT_COSTS,
                    duration_s: float = 3.0) -> ExperimentResult:
    """CPU cores consumed at equal workloads: Istio, Ambient,
    Canal (proxy = user cluster only) and Canal (total = + gateway)."""
    result = ExperimentResult("fig13", "CPU usage of Istio, Ambient, Canal")
    levels = rps_levels or [200, 500, 1000]
    meshes = ("istio", "ambient", "canal")
    specs = [(mesh_name, rps, seed, costs, duration_s)
             for mesh_name in meshes for rps in levels]
    points = sweep_map(_fig13_point, specs)
    user_cores: Dict[str, List[float]] = {}
    total_cores: Dict[str, List[float]] = {}
    for index, mesh_name in enumerate(meshes):
        user_series = Series(f"{mesh_name}_user_cpu", x_label="rps",
                             y_label="cores")
        user_cores[mesh_name] = []
        total_cores[mesh_name] = []
        for rps, (user, infra) in zip(
                levels, points[index * len(levels):(index + 1) * len(levels)]):
            user_cores[mesh_name].append(user)
            total_cores[mesh_name].append(user + infra)
            user_series.add(rps, user)
        result.series.append(user_series)
    canal_total = Series("canal_total_cpu", x_label="rps", y_label="cores")
    for rps, cores in zip(levels, total_cores["canal"]):
        canal_total.add(rps, cores)
    result.series.append(canal_total)

    def mean_ratio(a: List[float], b: List[float]) -> float:
        return sum(x / y for x, y in zip(a, b)) / len(a)

    result.findings["istio_over_canal_cpu"] = mean_ratio(
        user_cores["istio"], user_cores["canal"])
    result.findings["ambient_over_canal_cpu"] = mean_ratio(
        user_cores["ambient"], user_cores["canal"])
    result.notes.append(
        "paper: Canal consumes 12-19x / 4.6-7.2x less user CPU than "
        "Istio / Ambient")
    return result


# --------------------------------------------------------------------------
# Fig 14 — configuration completion time for creating pods
# --------------------------------------------------------------------------

_PLANES = {
    "istio": IstioControlPlane,
    "ambient": AmbientControlPlane,
    "canal": CanalControlPlane,
}


def _fig14_point(spec: Tuple[str, int, int]) -> float:
    """One (mesh, pod count, repeat) control-plane run → completion_s."""
    from ..k8s import Cluster
    from ..netsim import Topology

    mesh_name, count, run_seed = spec
    sim = Simulator(run_seed)
    topology = Topology.multi_az_region(
        azs=1, nodes_per_az=max(2, count // 15))
    cluster = Cluster("cp", topology.all_nodes(),
                      node_cpu_millicores=10_000_000,
                      node_memory_mb=10_000_000)
    for index in range(3):
        cluster.create_deployment(f"s{index}", replicas=5,
                                  labels={"app": f"s{index}"})
        cluster.create_service(f"s{index}",
                               selector={"app": f"s{index}"})
    plane = _PLANES[mesh_name](sim, cluster)
    process = sim.process(plane.create_pods_and_configure(count, "s0"))
    sim.run()
    return process.value.completion_s


def fig14_config_completion(pod_counts: Optional[List[int]] = None,
                            repeats: int = 5, seed: int = 19
                            ) -> ExperimentResult:
    """P90 time from an API call creating N pods to successful pings."""
    result = ExperimentResult(
        "fig14", "Configuration completion time for pod creation")
    counts = pod_counts or [50, 100, 200, 400]
    specs = [(mesh_name, count, seed + repeat)
             for mesh_name in _PLANES
             for count in counts
             for repeat in range(repeats)]
    samples_flat = sweep_map(_fig14_point, specs)
    p90: Dict[str, List[float]] = {name: [] for name in _PLANES}
    cursor = 0
    for mesh_name in _PLANES:
        series = Series(f"{mesh_name}_p90_completion", x_label="pods",
                        y_label="seconds")
        for count in counts:
            samples = samples_flat[cursor:cursor + repeats]
            cursor += repeats
            value = percentile(samples, 90)
            p90[mesh_name].append(value)
            series.add(count, value)
        result.series.append(series)

    def mean_ratio(a: List[float], b: List[float]) -> float:
        return sum(x / y for x, y in zip(a, b)) / len(a)

    result.findings["istio_over_canal_time"] = mean_ratio(
        p90["istio"], p90["canal"])
    result.findings["ambient_over_canal_time"] = mean_ratio(
        p90["ambient"], p90["canal"])
    result.notes.append(
        "paper: Canal completes configuration 1.5-2.1x / 1.2-1.5x faster "
        "than Istio / Ambient")
    return result


# --------------------------------------------------------------------------
# Fig 15 — southbound bandwidth during a routing-policy update
# --------------------------------------------------------------------------

def fig15_southbound_bandwidth(seed: int = 19) -> ExperimentResult:
    """Total southbound bytes of one routing update on the 30-pod
    testbed, per architecture."""
    from ..k8s import Cluster
    from ..netsim import Topology

    result = ExperimentResult(
        "fig15", "Southbound bandwidth occupation on a routing update")
    table = Table("Southbound bytes per routing update",
                  ["architecture", "bytes", "configs_pushed"])
    totals: Dict[str, int] = {}
    for mesh_name, plane_cls in _PLANES.items():
        sim = Simulator(seed)
        topology = Topology.single_az_testbed(worker_nodes=2)
        cluster = Cluster("testbed", topology.all_nodes())
        for index in range(3):
            cluster.create_deployment(f"svc{index}", replicas=10,
                                      labels={"app": f"svc{index}"})
            cluster.create_service(f"svc{index}",
                                   selector={"app": f"svc{index}"})
        plane = plane_cls(sim, cluster)
        process = sim.process(plane.push_update(kind="routing"))
        sim.run()
        report = process.value
        totals[mesh_name] = report.total_bytes
        table.add_row(mesh_name, report.total_bytes, report.targets)
    result.tables.append(table)
    result.findings["istio_over_canal_bytes"] = (
        totals["istio"] / totals["canal"])
    result.findings["ambient_over_canal_bytes"] = (
        totals["ambient"] / totals["canal"])
    result.notes.append(
        "paper: Istio uses 9.8x and Ambient 4.6x Canal's southbound "
        "bandwidth")
    return result
