"""Experiment harness: structured results that print like paper exhibits.

Every experiment function returns an :class:`ExperimentResult` holding
tables (rows the paper's tables report) and series (the curves its
figures plot), so benchmarks and examples share one code path and the
output can be eyeballed against the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

__all__ = ["Table", "Series", "ExperimentResult"]


@dataclass
class Table:
    """A printable table (one per paper table, or per figure summary)."""

    title: str
    columns: List[str]
    rows: List[List[object]] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has "
                f"{len(self.columns)} columns")
        self.rows.append(list(values))

    def column(self, name: str) -> List[object]:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def formatted(self) -> str:
        def cell(value: object) -> str:
            if isinstance(value, float):
                if value == 0:
                    return "0"
                if abs(value) >= 1000 or abs(value) < 0.01:
                    return f"{value:.3g}"
                return f"{value:.3f}".rstrip("0").rstrip(".")
            return str(value)

        grid = [self.columns] + [[cell(v) for v in row] for row in self.rows]
        widths = [max(len(row[i]) for row in grid)
                  for i in range(len(self.columns))]
        lines = [self.title, "-" * len(self.title)]
        for index, row in enumerate(grid):
            lines.append("  ".join(
                text.ljust(width) for text, width in zip(row, widths)))
            if index == 0:
                lines.append("  ".join("=" * width for width in widths))
        return "\n".join(lines)


@dataclass
class Series:
    """One plotted curve: (x, y) points with axis labels."""

    name: str
    points: List[Tuple[float, float]] = field(default_factory=list)
    x_label: str = "x"
    y_label: str = "y"

    def add(self, x: float, y: float) -> None:
        self.points.append((x, y))

    @property
    def xs(self) -> List[float]:
        return [p[0] for p in self.points]

    @property
    def ys(self) -> List[float]:
        return [p[1] for p in self.points]


@dataclass
class ExperimentResult:
    """Everything one experiment produced."""

    exp_id: str                 # e.g. "fig11", "table5"
    title: str
    tables: List[Table] = field(default_factory=list)
    series: List[Series] = field(default_factory=list)
    #: Scalar findings keyed by name (the numbers EXPERIMENTS.md quotes).
    findings: Dict[str, float] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def series_named(self, name: str) -> Series:
        for series in self.series:
            if series.name == name:
                return series
        raise KeyError(f"no series named {name!r} in {self.exp_id}")

    def table_named(self, title: str) -> Table:
        for table in self.tables:
            if table.title == title:
                return table
        raise KeyError(f"no table named {title!r} in {self.exp_id}")

    def formatted(self) -> str:
        lines = [f"=== {self.exp_id}: {self.title} ==="]
        for table in self.tables:
            lines.append(table.formatted())
            lines.append("")
        for series in self.series:
            lines.append(f"[series] {series.name} "
                         f"({series.x_label} -> {series.y_label})")
            lines.append("  " + "  ".join(
                f"({x:.4g}, {y:.4g})" for x, y in series.points))
        if self.findings:
            lines.append("[findings] " + ", ".join(
                f"{key}={value:.4g}" for key, value in self.findings.items()))
        for note in self.notes:
            lines.append(f"[note] {note}")
        return "\n".join(lines)
