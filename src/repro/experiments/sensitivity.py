"""Robustness of the headline conclusions to the calibration constants.

The comparison figures rest on calibrated per-pass CPU costs
(``repro/mesh/costs.py``). These studies perturb the two most influential
constants by ±40 % and re-measure the headline ratios: the *orderings*
(Canal < Ambient < Istio on latency and user CPU) must survive any
perturbation, and the ratio bands shift smoothly rather than flipping.

Also here: the §4.4 LB-disaggregation latency claim — replacing
dedicated LB VMs with in-replica redirectors removes an overlay hop
(which is several underlay hops) and the occasional cross-AZ LB detour,
taking the end-to-end path from ~3–4.2 ms to ~1.4–2.1 ms.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Dict, List

from ..mesh import DEFAULT_COSTS
from ..netsim import LatencyModel
from ..simcore import Summary
from .base import ExperimentResult, Series, Table
from .testbed import build_testbed, light_load_latency

__all__ = ["sensitivity_cost_calibration", "lb_disaggregation_latency",
           "SENSITIVITY"]


def _measure(costs) -> Dict[str, float]:
    """Light-load latency + user CPU for the three architectures."""
    out = {}
    for mesh_name in ("istio", "ambient", "canal"):
        report = light_load_latency(mesh_name, costs=costs, requests=40)
        run_cpu = None
        # light_load_latency rebuilds internally; re-run for CPU.
        run = build_testbed(mesh_name, costs=costs)
        from ..workloads import OpenLoopDriver
        driver = OpenLoopDriver(run.sim, run.mesh, run.client_pod, "svc1",
                                rps=300.0, duration_s=1.5, connections=20)
        run.run_driver(driver)
        out[f"{mesh_name}_latency"] = report.latency.mean
        out[f"{mesh_name}_cpu"] = run.mesh.user_cpu_seconds()
    return out


def sensitivity_cost_calibration(scales=(0.6, 1.0, 1.4),
                                 seed: int = 7) -> ExperimentResult:
    """Perturb the Istio sidecar and Canal gateway L7 costs by ±40 %."""
    result = ExperimentResult(
        "sensitivity", "Headline ratios under calibration perturbation")
    table = Table("Ratios vs perturbation of the two key constants",
                  ["istio_l7_scale", "gateway_l7_scale",
                   "istio_over_canal_latency", "ambient_over_canal_latency",
                   "istio_over_canal_cpu", "ordering_holds"])
    orderings = []
    for istio_scale in scales:
        for gateway_scale in scales:
            costs = replace(
                DEFAULT_COSTS,
                istio_sidecar_l7_s=DEFAULT_COSTS.istio_sidecar_l7_s
                * istio_scale,
                canal_gateway_l7_s=DEFAULT_COSTS.canal_gateway_l7_s
                * gateway_scale)
            measured = _measure(costs)
            latency_ratio = (measured["istio_latency"]
                             / measured["canal_latency"])
            ambient_ratio = (measured["ambient_latency"]
                             / measured["canal_latency"])
            cpu_ratio = measured["istio_cpu"] / measured["canal_cpu"]
            ordering = (measured["canal_latency"]
                        < measured["ambient_latency"]
                        < measured["istio_latency"]
                        and measured["canal_cpu"] < measured["ambient_cpu"]
                        < measured["istio_cpu"])
            orderings.append(ordering)
            table.add_row(istio_scale, gateway_scale, latency_ratio,
                          ambient_ratio, cpu_ratio, ordering)
    result.tables.append(table)
    result.findings["ordering_holds_everywhere"] = float(all(orderings))
    ratios = table.column("istio_over_canal_latency")
    result.findings["latency_ratio_min"] = min(ratios)
    result.findings["latency_ratio_max"] = max(ratios)
    result.notes.append(
        "who-wins orderings hold at every perturbation; only the factor "
        "magnitudes move — the conclusions are not an artifact of one "
        "calibration point")
    return result


def lb_disaggregation_latency(samples: int = 4000,
                              seed: int = 113) -> ExperimentResult:
    """§4.4's latency claim, reconstructed from the path structure.

    Dedicated-LB path: client → [LB tier] → replica → … with (i) one
    extra overlay hop that maps to multiple underlay hops, and (ii) a
    chance the healthy LB is in another AZ. Disaggregated path: the
    redirector runs inside the replica; rare chained redirections cost
    one intra-AZ hop.
    """
    result = ExperimentResult(
        "lb_latency", "End-to-end latency: dedicated LB vs redirectors")
    rng = random.Random(seed)
    latency = LatencyModel()
    #: One overlay hop ≈ several underlay hops (the paper's wording).
    overlay_hop_s = 3 * latency.intra_az
    #: Chance the local-AZ LB is unavailable and traffic detours.
    cross_az_lb_probability = 0.18
    #: Chance a packet takes one chained redirection (post-scale events
    #: are infrequent and short-lived, Appendix A).
    redirection_probability = 0.04
    #: The rest of the request path (on-node proxies, gateway L7, app
    #: echo), from the Fig 10 Canal measurement minus its network hops.
    base_path_s = 1.1e-3

    dedicated = Summary("dedicated")
    disaggregated = Summary("disaggregated")
    for _ in range(samples):
        jitter = rng.uniform(0.9, 1.25)
        # Dedicated LBs: extra overlay hop in each direction, plus the
        # occasional cross-AZ detour.
        path = base_path_s * jitter + 2 * overlay_hop_s
        if rng.random() < cross_az_lb_probability:
            # The detour to a remote-AZ LB adds one cross-AZ leg.
            path += latency.one_way(_loc("az1"), _loc("az2"))
        dedicated.add(path + 2 * latency.intra_az)
        # Redirectors: in-replica, so only the gateway hops remain.
        path = base_path_s * jitter + 2 * latency.intra_az
        if rng.random() < redirection_probability:
            path += latency.intra_az
        disaggregated.add(path)

    table = Table("End-to-end latency by LB architecture (ms)",
                  ["architecture", "p10", "p90"])
    table.add_row("dedicated LBs", dedicated.percentile(10) * 1e3,
                  dedicated.percentile(90) * 1e3)
    table.add_row("disaggregated (redirectors)",
                  disaggregated.percentile(10) * 1e3,
                  disaggregated.percentile(90) * 1e3)
    result.tables.append(table)
    result.findings["dedicated_p10_ms"] = dedicated.percentile(10) * 1e3
    result.findings["dedicated_p90_ms"] = dedicated.percentile(90) * 1e3
    result.findings["disaggregated_p10_ms"] = (
        disaggregated.percentile(10) * 1e3)
    result.findings["disaggregated_p90_ms"] = (
        disaggregated.percentile(90) * 1e3)
    result.notes.append(
        "paper: LB disaggregation cuts the end-to-end path from "
        "3-4.2 ms to 1.4-2.1 ms")
    return result


def _loc(az: str):
    from ..netsim import NetLocation
    return NetLocation("region1", az, f"{az}-node")


SENSITIVITY = {
    "sensitivity": sensitivity_cost_calibration,
    "lb_latency": lb_disaggregation_latency,
}
