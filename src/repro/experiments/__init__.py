"""One experiment per paper table and figure.

``EXPERIMENTS`` maps exhibit IDs ("fig11", "table5", ...) to functions
returning :class:`ExperimentResult`; ``run(exp_id)`` executes one and
``run_all()`` the full set. The benchmark suite under ``benchmarks/``
calls the same functions.
"""

from typing import Callable, Dict, List

from .ablations import ABLATIONS
from .cases import CASES_EXPERIMENTS
from .sensitivity import SENSITIVITY
from .appendix import (
    fig21_iptables_path,
    fig22_context_switch_frequency,
    fig23_crypto_completion_time,
    fig24_latency_distribution,
    fig25_avx512_batching,
    fig26_session_consistency,
    fig27_28_offload_performance,
    fig29_30_ebpf_performance,
)
from .base import ExperimentResult, Series, Table
from .cloud_ops import (
    build_production_gateway,
    fig16_noisy_neighbor,
    fig17_scaling_cdf,
    fig18_scaling_occurrences,
    fig19_shuffle_sharding,
    fig20_daily_operations,
    table4_scaling_timelines,
)
from .comparison import (
    fig10_latency_light_workloads,
    fig11_latency_vs_rps,
    fig12_crypto_cpu_saving,
    fig13_cpu_usage,
    fig14_config_completion,
    fig15_southbound_bandwidth,
)
from .deployment_costs import table5_cost_reduction
from .fleet_scale import (
    fleet_fig13_cpu_at_scale,
    fleet_fig17_18_scaling_at_scale,
    fleet_fig19_sharding_at_scale,
    fleet_fig20_daily_operations_at_scale,
)
from .recovery import fig8_plan, fig8_recovery
from .resilience import fig8_resilience, resilience_plan
from .health_checks import (
    table6_health_check_excess,
    table7_health_check_reduction,
)
from .sidecar_problems import (
    fig2_latency_vs_utilization,
    fig3_sidecar_growth,
    fig4_controller_cpu,
    fig5_istio_ambient_cpu,
    table1_sidecar_resources,
    table2_update_frequency,
    table3_l7_adoption,
)
from .testbed import build_testbed, find_knee_rps, light_load_latency
from .trace_breakdown import trace_breakdown

EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "table1": table1_sidecar_resources,
    "fig2": fig2_latency_vs_utilization,
    "fig3": fig3_sidecar_growth,
    "fig4": fig4_controller_cpu,
    "fig5": fig5_istio_ambient_cpu,
    "table2": table2_update_frequency,
    "table3": table3_l7_adoption,
    "fig8_recovery": fig8_recovery,
    "fig8_resilience": fig8_resilience,
    "fig10": fig10_latency_light_workloads,
    "fig11": fig11_latency_vs_rps,
    "fig12": fig12_crypto_cpu_saving,
    "fig13": fig13_cpu_usage,
    "fig14": fig14_config_completion,
    "fig15": fig15_southbound_bandwidth,
    "fig16": fig16_noisy_neighbor,
    "fig17": fig17_scaling_cdf,
    "table4": table4_scaling_timelines,
    "fig18": fig18_scaling_occurrences,
    "fig19": fig19_shuffle_sharding,
    "fig20": fig20_daily_operations,
    "table5": table5_cost_reduction,
    "table6": table6_health_check_excess,
    "table7": table7_health_check_reduction,
    "fig21": fig21_iptables_path,
    "fig22": fig22_context_switch_frequency,
    "fig23": fig23_crypto_completion_time,
    "fig24": fig24_latency_distribution,
    "fig25": fig25_avx512_batching,
    "fig26": fig26_session_consistency,
    "fig27_28": fig27_28_offload_performance,
    "fig29_30": fig29_30_ebpf_performance,
    "trace_breakdown": trace_breakdown,
}

#: Ablation studies of the design choices (not paper exhibits, but
#: regenerable the same way).
EXPERIMENTS.update(ABLATIONS)

#: §6.2's production incidents and §2.1's cross-region case, scripted.
EXPERIMENTS.update(CASES_EXPERIMENTS)

#: Calibration robustness + the §4.4 LB-latency claim.
EXPERIMENTS.update(SENSITIVITY)

#: The fluid-flow scale tier's exhibits: the same §5.5 claims at the
#: paper's true operating point (O(10k) replicas, O(1M) sessions,
#: multi-region). See ``repro.fleet`` and DESIGN.md §2i.
FLEET_EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "fleet_fig13": fleet_fig13_cpu_at_scale,
    "fleet_fig17_18": fleet_fig17_18_scaling_at_scale,
    "fleet_fig19": fleet_fig19_sharding_at_scale,
    "fleet_fig20": fleet_fig20_daily_operations_at_scale,
}
EXPERIMENTS.update(FLEET_EXPERIMENTS)

#: Exhibit tiers: "testbed" = per-session DES at testbed scale (the
#: default everywhere), "fleet" = the fluid scale tier. One registry
#: so the CLI filter, ``--list`` annotations, and the serve job specs
#: all agree.
TIERS = ("testbed", "fleet")


def exhibit_tier(exp_id: str) -> str:
    """Which tier an exhibit belongs to ("testbed" or "fleet")."""
    if exp_id not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {exp_id!r}; "
                       f"known: {sorted(EXPERIMENTS)}")
    return "fleet" if exp_id in FLEET_EXPERIMENTS else "testbed"


def exhibit_ids() -> List[str]:
    """The sorted catalog of known exhibit ids.

    One listing shared by the CLI (``--list``), job-spec validation in
    ``repro.serve``, and error messages — so every surface agrees on
    what exists.
    """
    return sorted(EXPERIMENTS)


def run(exp_id: str) -> ExperimentResult:
    """Run one experiment by its exhibit ID."""
    if exp_id not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {exp_id!r}; "
                       f"known: {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[exp_id]()


def run_all() -> List[ExperimentResult]:
    """Run every experiment in exhibit order."""
    return [EXPERIMENTS[exp_id]() for exp_id in EXPERIMENTS]


__all__ = [
    "ABLATIONS",
    "CASES_EXPERIMENTS",
    "EXPERIMENTS",
    "FLEET_EXPERIMENTS",
    "SENSITIVITY",
    "TIERS",
    "ExperimentResult",
    "Series",
    "Table",
    "build_production_gateway",
    "build_testbed",
    "exhibit_ids",
    "exhibit_tier",
    "fig8_plan",
    "fig8_recovery",
    "fig8_resilience",
    "find_knee_rps",
    "light_load_latency",
    "resilience_plan",
    "run",
    "run_all",
]
