"""§2.1 exhibits: the problems of per-pod sidecars.

Table 1, Fig 2, Fig 3, Fig 4, Fig 5, Table 2, Table 3.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..k8s import Cluster, ResourceRequest
from ..mesh import (
    DEFAULT_COSTS,
    IstioControlPlane,
    IstioMesh,
    MeshCostModel,
)
from ..mesh.costs import sample_service_time
from ..mesh.proxy import ProxyTier
from ..netsim import Topology
from ..runtime.sweep import sweep_map
from ..simcore import Simulator, Summary
from ..workloads import growth_trend, update_frequency_for_cluster
from .base import ExperimentResult, Series, Table
from .testbed import build_testbed

__all__ = [
    "table1_sidecar_resources",
    "fig2_latency_vs_utilization",
    "fig3_sidecar_growth",
    "fig4_controller_cpu",
    "fig5_istio_ambient_cpu",
    "table2_update_frequency",
    "table3_l7_adoption",
]


# --------------------------------------------------------------------------
# Table 1 — sidecar resource usage in production clusters
# --------------------------------------------------------------------------

#: (nodes, pods, sidecar cpu millicores, sidecar memory MB, target CPU
#: share, target memory share) per cluster. Per-pod sidecar requests are
#: back-solved from the paper's totals (e.g. 1500 cores / 15k pods =
#: 100 m); the target shares are Table 1's percentages and determine how
#: big the apps are relative to their sidecars (the last cluster is the
#: paper's extreme case where sidecars rival the apps).
_TABLE1_CLUSTERS = [
    (500, 15_000, 100, 340, 0.10, 0.10),
    (200, 8_000, 125, 150, 0.08, 0.05),
    (100, 1_000, 32, 150, 0.04, 0.05),
    (60, 2_000, 200, 150, 0.10, 0.06),
    (60, 400, 375, 750, 0.30, 0.25),
]


def _table1_point(spec: Tuple[Tuple[int, int, int, int, float, float],
                              float, int]) -> List[object]:
    """Build one scaled production cluster → its table row."""
    (nodes, pods, sidecar_cpu, sidecar_mem,
     cpu_target, mem_target), scale, seed = spec
    headroom = 1.15  # node capacity beyond scheduled requests
    n_nodes = max(3, int(nodes * scale))
    n_pods = max(4, int(pods * scale))
    # The first node is the master; pods land on the workers.
    pods_per_node = -(-n_pods // (n_nodes - 1))
    # App sizes back-solved so the sidecar lands at the cluster's
    # observed share of total capacity.
    app_cpu = int(sidecar_cpu * (1.0 / (cpu_target * headroom) - 1))
    app_mem = int(sidecar_mem * (1.0 / (mem_target * headroom) - 1))
    node_cpu = int(pods_per_node * (app_cpu + sidecar_cpu) * headroom)
    node_mem = int(pods_per_node * (app_mem + sidecar_mem) * headroom)
    sim = Simulator(seed)
    topology = Topology.multi_az_region(azs=1, nodes_per_az=n_nodes)
    cluster = Cluster("prod", topology.all_nodes(),
                      node_cpu_millicores=node_cpu,
                      node_memory_mb=node_mem)
    mesh = IstioMesh(sim, sidecar_resources=ResourceRequest(
        cpu_millicores=sidecar_cpu, memory_mb=sidecar_mem))
    mesh.attach(cluster)
    cluster.create_deployment(
        "app", replicas=n_pods, labels={"app": "app"},
        resources=ResourceRequest(cpu_millicores=app_cpu,
                                  memory_mb=app_mem))
    usage = cluster.resource_usage()
    cpu_share = (usage["sidecar_cpu_millicores"]
                 / usage["capacity_cpu_millicores"])
    mem_share = (usage["sidecar_memory_mb"]
                 / usage["capacity_memory_mb"])
    return [nodes, pods,
            usage["sidecar_cpu_millicores"] / scale / 1000.0,
            cpu_share,
            usage["sidecar_memory_mb"] / scale / 1024.0,
            mem_share]


def table1_sidecar_resources(scale: float = 0.1,
                             seed: int = 3) -> ExperimentResult:
    """Build each production cluster (scaled down) with sidecar
    injection and report the sidecar share of cluster resources.

    ``scale`` shrinks node/pod counts for runtime; shares are
    scale-invariant because both numerator and denominator shrink.
    """
    result = ExperimentResult("table1", "Resource usage of Istio sidecars")
    table = Table("Sidecar share of cluster resources",
                  ["nodes", "pods", "sidecar_cpu_cores", "cpu_share",
                   "sidecar_memory_gb", "memory_share"])
    for row in sweep_map(_table1_point,
                         [(cluster_row, scale, seed)
                          for cluster_row in _TABLE1_CLUSTERS]):
        table.add_row(*row)
    result.tables.append(table)
    shares = table.column("cpu_share")
    result.findings["max_cpu_share"] = max(shares)
    result.findings["min_cpu_share"] = min(shares)
    result.notes.append(
        "paper: sidecars consume 4-30% of cluster CPU and 5-25% of memory")
    return result


# --------------------------------------------------------------------------
# Fig 2 — sidecar CPU utilization vs end-to-end latency
# --------------------------------------------------------------------------

def _fig2_point(spec: Tuple[float, int, float, float, int, float]
                ) -> Tuple[float, float]:
    """One utilization level on a standalone sidecar → (p99, mean)."""
    target_util, seed, mean_cost, sigma, cores, duration_s = spec
    capacity = cores / mean_cost
    sim = Simulator(seed)
    tier = ProxyTier(sim, cores=cores, name="sidecar")
    latencies = Summary("lat")

    def one():
        start = sim.now
        cost = sample_service_time(sim.rng, mean_cost, sigma)
        yield from tier.work(cost)
        latencies.add(sim.now - start)

    def arrivals(rate=target_util * capacity):
        while sim.now < duration_s:
            yield sim.timeout(sim.rng.expovariate(rate))
            sim.process(one(), name="req")

    sim.process(arrivals(), name="arrivals")
    sim.run()
    return latencies.percentile(99), latencies.mean


def fig2_latency_vs_utilization(seed: int = 11,
                                costs: MeshCostModel = DEFAULT_COSTS,
                                duration_s: float = 20.0) -> ExperimentResult:
    """Drive a standalone sidecar at rising utilization; latency doubles
    near 45 % and blows up past 75 % (heavy-tailed Envoy processing).

    Multipliers are relative to the light-load *mean* latency, the
    natural normalization for Fig 2's "latency doubles / spikes" bands.
    """
    result = ExperimentResult(
        "fig2", "Sidecar CPU usage vs end-to-end latency")
    mean_cost = costs.istio_sidecar_l7_s
    sigma = costs.istio_l7_sigma
    utilizations = (0.1, 0.2, 0.3, 0.45, 0.6, 0.75, 0.85, 0.92)
    points = sweep_map(_fig2_point,
                       [(target_util, seed, mean_cost, sigma, 2, duration_s)
                        for target_util in utilizations])
    series_p99 = Series("p99_latency", x_label="cpu_utilization",
                        y_label="latency_multiplier")
    series_mean = Series("mean_latency", x_label="cpu_utilization",
                         y_label="latency_multiplier")
    base_mean = points[0][1]
    for target_util, (p99, mean) in zip(utilizations, points):
        series_p99.add(target_util, p99 / base_mean)
        series_mean.add(target_util, mean / base_mean)
    result.series.extend([series_p99, series_mean])
    by_util = dict(series_mean.points)
    result.findings["mean_multiplier_at_45pct"] = by_util[0.45]
    result.findings["p99_multiplier_at_92pct"] = dict(series_p99.points)[0.92]
    result.notes.append(
        "paper: latency doubles past 45% utilization and spikes "
        "(100x-1000x) past 75%")
    return result


# --------------------------------------------------------------------------
# Fig 3 — sidecar count growth for a major customer
# --------------------------------------------------------------------------

def fig3_sidecar_growth(seed: int = 5) -> ExperimentResult:
    """2020 → 2022 sidecar counts (~2× growth), quarterly."""
    result = ExperimentResult("fig3", "#Sidecars for a major customer")
    rng = random.Random(seed)
    quarters = 9  # 2020Q1 .. 2022Q1
    counts = growth_trend(rng, start_value=52_000, end_value=100_000,
                          points=quarters)
    series = Series("sidecars", x_label="quarter_index", y_label="sidecars")
    for index, count in enumerate(counts):
        series.add(index, count)
    result.series.append(series)
    result.findings["growth_ratio"] = counts[-1] / counts[0]
    result.notes.append("paper: the sidecar count nearly doubles 2020-2022")
    return result


# --------------------------------------------------------------------------
# Fig 4 — controller CPU usage and pod update time vs cluster size
# --------------------------------------------------------------------------

def _fig4_point(spec: Tuple[int, int]) -> Tuple[float, float, float]:
    """One cluster size → (build cpu_s, push cpu rate, completion_s)."""
    pods, seed = spec
    sim = Simulator(seed)
    topology = Topology.multi_az_region(azs=1,
                                        nodes_per_az=max(2, pods // 15))
    cluster = Cluster("cp", topology.all_nodes(),
                      node_cpu_millicores=10_000_000,
                      node_memory_mb=10_000_000)
    services = max(1, pods // 2)
    per_service = max(1, pods // services)
    for index in range(services):
        cluster.create_deployment(f"s{index}", replicas=per_service,
                                  labels={"app": f"s{index}"})
        cluster.create_service(f"s{index}", selector={"app": f"s{index}"})
    plane = IstioControlPlane(sim, cluster)
    push = sim.process(plane.push_update())
    sim.run()
    report = push.value
    # Pushing is I/O-bound: its CPU *rate* during the update stays
    # flat while total bytes (and completion) grow.
    return (report.build_cpu_s,
            report.push_cpu_s / report.completion_s,
            report.completion_s)


def fig4_controller_cpu(cluster_sizes: Optional[List[int]] = None,
                        seed: int = 13) -> ExperimentResult:
    """Istio full-config updates: build CPU grows with cluster size,
    push CPU stays flat, completion time stretches."""
    result = ExperimentResult(
        "fig4", "Controller CPU usage and pod update time (Istio)")
    sizes = cluster_sizes or [100, 300, 600, 1000]
    build_series = Series("build_cpu_s", x_label="pods", y_label="cpu_s")
    push_series = Series("push_cpu_utilization", x_label="pods",
                         y_label="cores")
    completion_series = Series("completion_s", x_label="pods",
                               y_label="seconds")
    points = sweep_map(_fig4_point, [(pods, seed) for pods in sizes])
    for pods, (build_cpu, push_rate, completion) in zip(sizes, points):
        build_series.add(pods, build_cpu)
        push_series.add(pods, push_rate)
        completion_series.add(pods, completion)
    result.series.extend([build_series, push_series, completion_series])
    result.findings["build_growth"] = (
        build_series.ys[-1] / build_series.ys[0])
    result.findings["push_rate_growth"] = (
        push_series.ys[-1] / push_series.ys[0])
    result.findings["completion_growth"] = (
        completion_series.ys[-1] / completion_series.ys[0])
    result.notes.append(
        "paper: building is CPU-bound and grows with cluster size; "
        "pushing is I/O-bound (flat CPU) but completion takes longer")
    return result


# --------------------------------------------------------------------------
# Fig 5 — CPU usage of Istio and Ambient
# --------------------------------------------------------------------------

def _fig5_point(spec: Tuple[str, float, int, float]) -> float:
    """One (mesh, rps) testbed run → user-cluster proxy cores."""
    from ..workloads import OpenLoopDriver

    mesh_name, rps, seed, duration_s = spec
    run = build_testbed(mesh_name, seed=seed)
    driver = OpenLoopDriver(run.sim, run.mesh, run.client_pod,
                            "svc1", rps=rps, duration_s=duration_s,
                            connections=50)
    run.run_driver(driver)
    return run.mesh.user_cpu_seconds() / duration_s


def fig5_istio_ambient_cpu(rps_levels: Optional[List[float]] = None,
                           seed: int = 7,
                           duration_s: float = 2.0) -> ExperimentResult:
    """User-cluster proxy CPU of Istio vs Ambient under equal load.

    Ambient shares proxies but per-service waypoints still see their
    pods' synchronized peaks, so its saving over Istio is bounded.
    """
    result = ExperimentResult("fig5", "CPU usage of Istio and Ambient")
    levels = rps_levels or [200, 500, 1000]
    meshes = ("istio", "ambient")
    points = sweep_map(_fig5_point,
                       [(mesh_name, rps, seed, duration_s)
                        for mesh_name in meshes for rps in levels])
    for index, mesh_name in enumerate(meshes):
        series = Series(f"{mesh_name}_user_cpu_cores", x_label="rps",
                        y_label="cores")
        for rps, cores in zip(
                levels, points[index * len(levels):(index + 1) * len(levels)]):
            series.add(rps, cores)
        result.series.append(series)
    istio = result.series_named("istio_user_cpu_cores")
    ambient = result.series_named("ambient_user_cpu_cores")
    ratios = [i / a for (_x, i), (_y, a) in zip(istio.points, ambient.points)]
    result.findings["istio_over_ambient_cpu"] = sum(ratios) / len(ratios)
    result.notes.append(
        "paper: Ambient's resource sharing saves CPU vs Istio, but less "
        "than hoped (synchronized peaks at per-service waypoints)")
    return result


# --------------------------------------------------------------------------
# Table 2 — configuration update frequency by cluster size
# --------------------------------------------------------------------------

def table2_update_frequency(seed: int = 17) -> ExperimentResult:
    """Update frequency grows with cluster size (more services)."""
    result = ExperimentResult("table2", "Config update frequency by cluster")
    rng = random.Random(seed)
    table = Table("Configuration update frequency",
                  ["nodes", "pods", "updates_per_min"])
    rows = [(6, 300), (45, 900), (200, 2250)]
    for nodes, pods in rows:
        frequency = update_frequency_for_cluster(rng, pods)
        table.add_row(nodes, pods, frequency)
    result.tables.append(table)
    freqs = table.column("updates_per_min")
    result.findings["small_cluster_per_min"] = freqs[0]
    result.findings["large_cluster_per_min"] = freqs[-1]
    result.notes.append(
        "paper bands: 100-500 pods -> 1-5/min; 700-1100 -> 10-20/min; "
        "1500-3000 -> 40-70/min")
    return result


# --------------------------------------------------------------------------
# Table 3 — proportion of users enabling L7 features by region
# --------------------------------------------------------------------------

#: Per-region (L7 any, L7 routing, L7 security) adoption probabilities —
#: the operational data of Table 3, used as workload-model constants.
_TABLE3_REGIONS = {
    "Region1": (0.95, 0.95, 0.29),
    "Region2": (0.93, 0.93, 0.33),
    "Region3": (0.90, 0.86, 0.27),
    "Region4": (0.80, 0.72, 0.40),
    "Region5": (0.88, 0.80, 0.53),
}


def table3_l7_adoption(users_per_region: int = 2000,
                       seed: int = 23) -> ExperimentResult:
    """Sample synthetic user populations with the paper's adoption rates
    and report the measured proportions (validates the workload model
    used to justify 'most users need L7')."""
    result = ExperimentResult("table3", "Users enabling L7 features")
    rng = random.Random(seed)
    table = Table("L7 adoption by region",
                  ["region", "l7", "l7_routing", "l7_security"])
    for region, (p_l7, p_routing, p_security) in _TABLE3_REGIONS.items():
        l7 = routing = security = 0
        for _ in range(users_per_region):
            has_l7 = rng.random() < p_l7
            l7 += has_l7
            if has_l7:
                routing += rng.random() < p_routing / p_l7
                security += rng.random() < p_security / p_l7
        table.add_row(region, l7 / users_per_region,
                      routing / users_per_region,
                      security / users_per_region)
    result.tables.append(table)
    l7_values = table.column("l7")
    result.findings["min_l7_share"] = min(l7_values)
    result.findings["max_l7_share"] = max(l7_values)
    result.notes.append("paper: 80-95% of customers configure L7 rules")
    return result
