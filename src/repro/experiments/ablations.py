"""Ablation studies: what each Canal design choice buys.

Each ablation removes or de-tunes one mechanism DESIGN.md calls out and
measures the paper-relevant metric with and without it:

* shuffle sharding vs. naive block placement → blast radius;
* Canal's long redirector chains (4) vs. Beamer's 2 → session
  consistency through consecutive scale events;
* health-check aggregation levels, individually → probe volume;
* eBPF Nagle on/off → small-packet context switches (the §4.1.2 bug);
* RCA-driven precise scaling vs. blind scaling → operations and time;
* session-aggregation tunnel count → core balance vs. session savings;
* incremental vs. full-config push → southbound bytes (§2.1's
  "incremental update would be preferable").
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..core import (
    Backend,
    DisaggregatedLB,
    GatewayConfig,
    MeshGateway,
    Replica,
    ScalingEngine,
    ScalingTimings,
    SessionAggregator,
    ShuffleSharder,
)
from ..core.healthcheck import HealthCheckPlan
from ..core.replica import ReplicaConfig
from ..kernel import EbpfRedirect
from ..mesh.controlplane import ConfigTarget, IstioControlPlane
from ..netsim import FiveTuple
from ..simcore import Simulator
from .base import ExperimentResult, Series, Table
from .health_checks import CASES

__all__ = [
    "ablation_shuffle_sharding",
    "ablation_chain_length",
    "ablation_health_aggregation_levels",
    "ablation_ebpf_nagle",
    "ablation_precise_vs_blind_scaling",
    "ablation_tunnel_count",
    "ablation_incremental_push",
    "ablation_peak_shaving",
    "ABLATIONS",
]


# --------------------------------------------------------------------------
# Shuffle sharding vs naive block placement
# --------------------------------------------------------------------------

def _naive_assign(services: int, backends: List[Backend],
                  per_service: int) -> Dict[int, List[Backend]]:
    """Contiguous block placement: service i gets backends
    [k, k+per_service) — the pre-shuffle-sharding strawman."""
    assignment = {}
    for service_id in range(services):
        start = (service_id * per_service) % len(backends)
        chosen = [backends[(start + i) % len(backends)]
                  for i in range(per_service)]
        assignment[service_id] = chosen
        for backend in chosen:
            backend.install_service(service_id)
    return assignment


def ablation_shuffle_sharding(services: int = 24, backends_per_az: int = 6,
                              seed: int = 91) -> ExperimentResult:
    """Blast radius when one service's whole backend set dies."""
    result = ExperimentResult(
        "ablation_sharding", "Shuffle sharding vs naive placement")
    sim = Simulator(seed)

    # Naive block placement.
    naive_backends = [Backend(sim, f"n{i}", "az1")
                      for i in range(2 * backends_per_az)]
    naive = _naive_assign(services, naive_backends, per_service=4)

    def naive_collateral() -> float:
        """Mean # of *other* services fully lost when one service's
        backends all fail."""
        losses = []
        for victim, victim_backends in naive.items():
            doomed = {b.name for b in victim_backends}
            lost = sum(
                1 for other, other_backends in naive.items()
                if other != victim
                and {b.name for b in other_backends} <= doomed)
            losses.append(lost)
        return sum(losses) / len(losses)

    # Shuffle sharding.
    sharder = ShuffleSharder(random.Random(seed),
                             backends_per_service_per_az=2,
                             azs_per_service=2)
    pools = {az: [Backend(sim, f"{az}-b{i}", az)
                  for i in range(backends_per_az)]
             for az in ("az1", "az2")}
    for service_id in range(services):
        for backend in sharder.assign(service_id, pools):
            backend.install_service(service_id)

    shuffled_collateral = 0.0
    for service_id in range(services):
        survivors = sharder.survivors_if_combination_fails(service_id)
        shuffled_collateral += sum(1 for v in survivors.values() if v == 0)
    shuffled_collateral /= services

    table = Table("Mean co-failing services per total service failure",
                  ["placement", "collateral_services"])
    table.add_row("naive blocks", naive_collateral())
    table.add_row("shuffle sharding", shuffled_collateral)
    result.tables.append(table)
    result.findings["naive_collateral"] = naive_collateral()
    result.findings["shuffled_collateral"] = shuffled_collateral
    result.notes.append(
        "shuffle sharding guarantees zero co-failing services; block "
        "placement takes down every co-located block")
    return result


# --------------------------------------------------------------------------
# Redirector chain length: Beamer's 2 vs Canal's 4
# --------------------------------------------------------------------------

def ablation_chain_length(flows: int = 300, drains: int = 3,
                          seed: int = 93) -> ExperimentResult:
    """Session survival through consecutive replica drains (§4.4's
    reason for chains > 2: e.g. consecutive crashes from a query of
    death)."""
    result = ExperimentResult(
        "ablation_chain", "Redirector chain length under repeated drains")
    table = Table("Established-flow survival after consecutive drains",
                  ["max_chain", "flows_kept", "fraction"])
    for max_chain in (2, 4):
        sim = Simulator(seed)
        replicas = [Replica(sim, f"ip{i}", "az1", ReplicaConfig())
                    for i in range(drains + 2)]
        lb = DisaggregatedLB(service_id=1, replicas=replicas,
                             max_chain=max_chain)
        sample = [FiveTuple(f"10.3.{i // 250}.{i % 250 + 1}",
                            10_000 + i, "10.9.9.9", 443)
                  for i in range(flows)]
        owners = {f: lb.deliver(f, is_syn=True).replica.name
                  for f in sample}
        # Drain several replicas back-to-back without waiting for flows
        # to age (the crash-cascade scenario).
        for index in range(drains):
            lb.drain_replica(f"ip{index}")
        kept = sum(1 for f in sample
                   if lb.deliver(f, is_syn=False).replica.name == owners[f])
        table.add_row(max_chain, kept, kept / flows)
        result.findings[f"kept_fraction_chain{max_chain}"] = kept / flows
    result.tables.append(table)
    result.notes.append(
        "Beamer's chain of 2 evicts owners after the second drain; "
        "Canal's longer chains keep sessions routable")
    return result


# --------------------------------------------------------------------------
# Health-check aggregation levels, one at a time
# --------------------------------------------------------------------------

def ablation_health_aggregation_levels() -> ExperimentResult:
    """Contribution of each aggregation level across the Table 6 cases."""
    result = ExperimentResult(
        "ablation_health", "Health-check aggregation level contributions")
    table = Table("Probe RPS by enabled levels (Case aggregate)",
                  ["levels_enabled", "probe_rps", "reduction"])
    total_base = sum(case.plan().base_rps() for case in CASES)
    rows = [
        ("none", sum(case.plan().base_rps() for case in CASES)),
        ("service", sum(case.plan().service_level_rps() for case in CASES)),
        ("service+core", sum(case.plan().core_level_rps()
                             for case in CASES)),
        ("service+core+replica", sum(case.plan().replica_level_rps()
                                     for case in CASES)),
    ]
    for label, rps in rows:
        table.add_row(label, rps, 1 - rps / total_base)
    result.tables.append(table)
    result.findings["service_only_reduction"] = 1 - rows[1][1] / total_base
    result.findings["full_reduction"] = 1 - rows[3][1] / total_base
    result.notes.append(
        "the core and replica levels provide the bulk of the 99.6%+ "
        "reduction; service-level dedupe alone is modest")
    return result


# --------------------------------------------------------------------------
# eBPF Nagle on/off across message sizes
# --------------------------------------------------------------------------

def ablation_ebpf_nagle(rps: float = 4000.0) -> ExperimentResult:
    """The §4.1.2 fix quantified across message sizes."""
    result = ExperimentResult(
        "ablation_nagle", "eBPF Nagle re-implementation across sizes")
    sizes = [16, 64, 256, 1024, 4096]
    with_nagle = Series("ctx_per_s_nagle", x_label="bytes", y_label="ctx/s")
    without = Series("ctx_per_s_no_nagle", x_label="bytes", y_label="ctx/s")
    for size in sizes:
        on = EbpfRedirect(nagle_enabled=True).path_cost(size, rps)
        off = EbpfRedirect(nagle_enabled=False).path_cost(size, rps)
        with_nagle.add(size, on.context_switches)
        without.add(size, off.context_switches)
    result.series.extend([with_nagle, without])
    result.findings["small_packet_ctx_saving"] = (
        1 - with_nagle.ys[0] / without.ys[0])
    result.findings["large_packet_ctx_saving"] = (
        1 - with_nagle.ys[-1] / without.ys[-1])
    result.notes.append(
        "aggregation only matters below the MSS; large messages are "
        "unaffected — matching the Fig 29 observation")
    return result


# --------------------------------------------------------------------------
# Precise (RCA-driven) vs blind scaling
# --------------------------------------------------------------------------

def ablation_precise_vs_blind_scaling(seed: int = 95) -> ExperimentResult:
    """§4.3's motivation: scaling every service on a hot backend is
    slower and wastes operations vs pinpointing the one that grew."""
    result = ExperimentResult(
        "ablation_scaling", "Precise (RCA) vs blind scaling")

    def build(seed_offset: int):
        sim = Simulator(seed + seed_offset)
        config = GatewayConfig(
            replicas_per_backend=2, backends_per_service_per_az=2,
            azs_per_service=2,
            replica=ReplicaConfig(cores=8, request_cost_s=100e-6))
        gateway = MeshGateway(sim, config)
        gateway.deploy_initial(["az1", "az2"], 10)
        services = []
        for index in range(8):
            tenant = gateway.registry.add_tenant(f"t{index}")
            service = gateway.registry.add_service(
                tenant, "web", f"10.0.0.{index + 1}")
            gateway.register_service(service)
            gateway.set_service_load(service.service_id, 25_000.0)
            services.append(service)
        hot = max(gateway.all_backends,
                  key=lambda b: len(b.configured_services))
        grower = next(iter(hot.top_services(1)))
        gateway.set_service_load(grower, 400_000.0)
        return sim, gateway, hot, grower

    timings = ScalingTimings(reuse_median_s=25.0, reuse_sigma=0.0,
                             settle_median_s=0.1, settle_sigma=0.0)

    # Precise: scale only the RCA-identified grower.
    sim, gateway, hot, grower = build(0)
    engine = ScalingEngine(sim, gateway, timings=timings, target_water=0.5)
    process = sim.process(engine.scale_service(grower))
    sim.run()
    precise_ops = len(gateway.service_backends[grower]) - 4
    precise_time = process.value.finished_at - process.value.executed_at
    precise_water = hot.water_level()

    # Blind: scale every service configured on the hot backend.
    sim, gateway, hot, grower = build(1)
    engine = ScalingEngine(sim, gateway, timings=timings, target_water=0.5)
    victims = sorted(hot.configured_services)

    def blind():
        for service_id in victims:
            yield sim.process(engine.scale_service(service_id))

    start = sim.now
    sim.process(blind())
    sim.run()
    blind_time = sim.now - start
    blind_ops = sum(len(gateway.service_backends[sid]) - 4
                    for sid in victims)
    blind_water = hot.water_level()

    table = Table("Scaling strategy comparison",
                  ["strategy", "config_operations", "wall_time_s",
                   "hot_backend_water_after"])
    table.add_row("precise (RCA)", precise_ops, precise_time, precise_water)
    table.add_row("blind (all services)", blind_ops, blind_time, blind_water)
    result.tables.append(table)
    result.findings["precise_ops"] = float(precise_ops)
    result.findings["blind_ops"] = float(blind_ops)
    result.findings["precise_time_s"] = precise_time
    result.findings["blind_time_s"] = blind_time
    result.notes.append(
        "blind scaling spends several times the operations and delays "
        "the water-level drop (it scales innocents before the culprit)")
    return result


# --------------------------------------------------------------------------
# Tunnel count sweep
# --------------------------------------------------------------------------

def ablation_tunnel_count(user_sessions: int = 300_000) -> ExperimentResult:
    """Tunnels per core: enough for core balance, few enough to matter."""
    result = ExperimentResult(
        "ablation_tunnels", "Session-aggregation tunnel count")
    sim = Simulator(0)
    replica = Replica(sim, "r1", "az1", ReplicaConfig(cores=8))
    table = Table("Tunnels-per-core trade-off",
                  ["tunnels_per_core", "underlay_sessions",
                   "core_imbalance"])
    for tunnels_per_core in (1, 2, 5, 10, 50):
        aggregator = SessionAggregator("9.9.9.1", vni=1,
                                       tunnels_per_core=tunnels_per_core)
        sessions = aggregator.underlay_sessions(replica, user_sessions)
        spread = aggregator.core_spread(replica)
        imbalance = (max(spread) - min(spread)) / max(spread)
        table.add_row(tunnels_per_core, sessions, imbalance)
    result.tables.append(table)
    result.findings["sessions_at_10x"] = float(
        SessionAggregator("9.9.9.1", vni=1, tunnels_per_core=10)
        .underlay_sessions(replica, user_sessions))
    result.findings["session_reduction_at_10x"] = (
        1 - result.findings["sessions_at_10x"] / user_sessions)
    result.notes.append(
        "the paper's ~10 tunnels/core keeps cores balanced while "
        "collapsing underlay session state by ~3-4 orders of magnitude")
    return result


# --------------------------------------------------------------------------
# Incremental vs full-config push
# --------------------------------------------------------------------------

class _IncrementalIstioControlPlane(IstioControlPlane):
    """What Istio *could* do: push only the delta to each sidecar.

    §2.1: "while incremental update would be preferable, Istio currently
    lacks good support for it". The delta is one endpoint/rule entry
    plus the envelope, still delivered to every sidecar: O(N) instead of
    O(N²) bytes.
    """

    kind = "istio-incremental"

    def targets_for_update(self, kind: str = "routing"):
        delta = self.costs.envelope_bytes + self.costs.rule_bytes
        return [ConfigTarget(name=f"sidecar-{pod_name}", kind="sidecar",
                             config_bytes=delta,
                             apply_s=self.costs.sidecar_apply_s)
                for pod_name in self.cluster.pods]


def ablation_incremental_push(pod_counts=(100, 400, 1000),
                              seed: int = 97) -> ExperimentResult:
    """Southbound bytes: full-config vs incremental xDS."""
    from ..k8s import Cluster
    from ..netsim import Topology

    result = ExperimentResult(
        "ablation_incremental", "Full vs incremental config push")
    full_series = Series("full_push_bytes", x_label="pods", y_label="bytes")
    incremental_series = Series("incremental_push_bytes", x_label="pods",
                                y_label="bytes")
    for pods in pod_counts:
        for plane_cls, series in ((IstioControlPlane, full_series),
                                  (_IncrementalIstioControlPlane,
                                   incremental_series)):
            sim = Simulator(seed)
            topology = Topology.multi_az_region(
                azs=1, nodes_per_az=max(2, pods // 15))
            cluster = Cluster("cp", topology.all_nodes(),
                              node_cpu_millicores=10_000_000,
                              node_memory_mb=10_000_000)
            services = max(1, pods // 2)
            per_service = max(1, pods // services)
            for index in range(services):
                cluster.create_deployment(f"s{index}", replicas=per_service,
                                          labels={"app": f"s{index}"})
                cluster.create_service(f"s{index}",
                                       selector={"app": f"s{index}"})
            plane = plane_cls(sim, cluster)
            process = sim.process(plane.push_update())
            sim.run()
            series.add(pods, process.value.total_bytes)
    result.series.extend([full_series, incremental_series])
    ratios = [f / i for (_x, f), (_y, i)
              in zip(full_series.points, incremental_series.points)]
    result.findings["full_over_incremental_small"] = ratios[0]
    result.findings["full_over_incremental_large"] = ratios[-1]
    result.notes.append(
        "the full-config penalty grows with cluster size: the O(N^2) vs "
        "O(N) gap §2.1 complains about")
    return result


# --------------------------------------------------------------------------
# Consolidation peak shaving (§3.1's "efficient peak shaving")
# --------------------------------------------------------------------------

def ablation_peak_shaving(services: int = 12, seed: int = 99
                          ) -> ExperimentResult:
    """Capacity needed by per-service proxies vs one consolidated proxy.

    Per-service proxies (sidecars, waypoints) must each be provisioned
    for their own peak; a consolidated gateway provisions for the peak
    of the *sum*. With staggered diurnal phases the sum is much flatter
    — unless the services are in phase (Ambient's per-service waypoint
    problem, and why Canal's phase monitor scatters in-phase services).
    """
    from ..workloads import diurnal_profile

    result = ExperimentResult(
        "ablation_peaks", "Peak shaving from proxy consolidation")
    rng = random.Random(seed)
    table = Table("Provisioned capacity (RPS) by sharing strategy",
                  ["workload_phases", "per_service_sum_of_peaks",
                   "consolidated_peak_of_sum", "saving"])
    for label, positions in (
            ("staggered", [i / services for i in range(services)]),
            ("synchronized", [0.5] * services)):
        profiles = [diurnal_profile(rng, 400.0, 4000.0,
                                    peak_position=position)
                    for position in positions]
        sum_of_peaks = sum(profile.peak for profile in profiles)
        n = len(profiles[0].samples)
        peak_of_sum = max(sum(profile.samples[i] for profile in profiles)
                          for i in range(n))
        saving = 1 - peak_of_sum / sum_of_peaks
        table.add_row(label, sum_of_peaks, peak_of_sum, saving)
        result.findings[f"saving_{label}"] = saving
    result.tables.append(table)
    result.notes.append(
        "staggered workloads make consolidation cheap; synchronized "
        "peaks erase the benefit — the reduced peak-shaving the paper "
        "observes at Ambient's per-service waypoints (Fig 5), and the "
        "reason Canal scatters in-phase services (§6.3)")
    return result


ABLATIONS = {
    "ablation_sharding": ablation_shuffle_sharding,
    "ablation_peaks": ablation_peak_shaving,
    "ablation_chain": ablation_chain_length,
    "ablation_health": ablation_health_aggregation_levels,
    "ablation_nagle": ablation_ebpf_nagle,
    "ablation_scaling": ablation_precise_vs_blind_scaling,
    "ablation_tunnels": ablation_tunnel_count,
    "ablation_incremental": ablation_incremental_push,
}
