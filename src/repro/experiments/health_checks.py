"""§6.1 exhibits: Tables 6 and 7 — excessive health checks and their
multi-level aggregation.

Each case is a concrete placement (services → backends, with app
overlap) at production replica/core counts; the base probe volume and
the three aggregation stages are computed by
:class:`repro.core.HealthCheckPlan`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core import HealthCheckPlan, ServicePlacement
from .base import ExperimentResult, Table

__all__ = ["table6_health_check_excess", "table7_health_check_reduction",
           "CASES"]


@dataclass(frozen=True)
class _Case:
    """One production complaint case (Table 6's columns)."""

    name: str
    app_rps: float
    replicas: int
    cores: int
    #: (backends, apps) per service; apps overlap across services when
    #: they share elements.
    services: Tuple[Tuple[Tuple[str, ...], Tuple[str, ...]], ...]

    def plan(self) -> HealthCheckPlan:
        placements = [
            ServicePlacement(service_id=index + 1,
                             backend_names=backends,
                             app_endpoints=frozenset(apps))
            for index, (backends, apps) in enumerate(self.services)
        ]
        return HealthCheckPlan(placements,
                               replicas_per_backend=self.replicas,
                               cores_per_replica=self.cores,
                               probe_rate_per_target_s=1.0)


#: The five complaint cases, calibrated to the magnitudes of Tables 6/7
#: (e.g. Case 1: base ≈ 10.8 kRPS of probes against 21 RPS of app
#: traffic — the paper's 515× headline).
CASES: List[_Case] = [
    _Case("Case1", app_rps=21, replicas=32, cores=16, services=(
        (("b1", "b2", "b3"), ("app1", "app2", "app3")),
        (("b1", "b2"), ("app3", "app4")),
        (("b2", "b3"), ("app2", "app3", "app5")),
        (("b1", "b3"), ("app6",)),
    )),
    _Case("Case2", app_rps=4221, replicas=32, cores=16, services=(
        (("b1", "b2", "b3", "b4"), tuple(f"app{i}" for i in range(1, 13))),
        (("b1", "b2", "b3"), tuple(f"app{i}" for i in range(10, 22))),
        (("b2", "b4"), tuple(f"app{i}" for i in range(20, 29))),
    )),
    _Case("Case3", app_rps=385, replicas=32, cores=8, services=(
        (("b1", "b2", "b3"), tuple(f"app{i}" for i in range(1, 10))),
        (("b4", "b5", "b6"), tuple(f"app{i}" for i in range(10, 18))),
        (("b7", "b8"), tuple(f"app{i}" for i in range(18, 22))),
    )),
    _Case("Case4", app_rps=496, replicas=32, cores=16, services=(
        (("b1", "b2", "b3"), tuple(f"app{i}" for i in range(1, 8))),
        (("b1", "b2"), tuple(f"app{i}" for i in range(5, 17))),
        (("b3", "b4"), tuple(f"app{i}" for i in range(15, 20))),
    )),
    _Case("Case5", app_rps=9224, replicas=32, cores=16, services=(
        (("b1", "b2", "b3"), tuple(f"app{i}" for i in range(1, 9))),
        (("b2", "b4"), tuple(f"app{i}" for i in range(8, 19))),
        (("b5",), tuple(f"app{i}" for i in range(19, 23))),
    )),
]


def table6_health_check_excess() -> ExperimentResult:
    """Health-check probe RPS vs app traffic, per complaint case."""
    result = ExperimentResult(
        "table6", "Excessive health checks vs app traffic")
    table = Table("Probe volume against app traffic",
                  ["case", "app_rps", "health_check_rps", "ratio"])
    worst = 0.0
    for case in CASES:
        base = case.plan().base_rps()
        ratio = base / case.app_rps
        worst = max(worst, ratio)
        table.add_row(case.name, case.app_rps, base, ratio)
    result.tables.append(table)
    result.findings["max_ratio"] = worst
    result.notes.append(
        "paper: health-check traffic exceeds app traffic by up to 515x")
    return result


def table7_health_check_reduction() -> ExperimentResult:
    """Step-by-step reduction through the three aggregation levels."""
    result = ExperimentResult(
        "table7", "Health check reduction by aggregation")
    table = Table("Probe RPS after each aggregation level",
                  ["case", "base", "service_level", "core_level",
                   "replica_level", "reduction"])
    reductions = []
    for case in CASES:
        stages = case.plan().reduction()
        reductions.append(stages.reduction)
        table.add_row(case.name, stages.base, stages.service_level,
                      stages.core_level, stages.replica_level,
                      stages.reduction)
    result.tables.append(table)
    result.findings["min_reduction"] = min(reductions)
    result.findings["max_reduction"] = max(reductions)
    result.notes.append(
        "paper: the three levels together cut health checks by >= 99.6%")
    return result
