"""Resilience-policy chaos exhibit: containment vs the Fig 8 baseline.

``fig8_resilience`` runs the Fig 8 fault schedule twice per seed over
the production gateway — once unprotected (the ``fig8_recovery``
baseline) and once with :class:`~repro.resilience.ResiliencePolicies`
installed — and measures what the policies buy:

1. **Circuit breaker containing a query-of-death.** Unprotected, the
   poisoned query cascades through every backend of the victim
   service (4 with the default shard shape) and the service goes
   dark. Protected, each crash feeds the service's breaker as
   windowed dispatch failures; the breaker opens mid-cascade, the
   poison query stops being forwarded, and the victim keeps its
   remaining backends — blast radius contained *below* the
   shuffle-shard boundary.
2. **Backoff jitter de-synchronizing the retry storm.** The AZ crash
   disrupts every session in the zone; those clients all reconnect.
   With a synchronized schedule (``jitter=0``) the whole population
   lands in one bucket — the storm that re-crashes survivors. With
   full jitter the same population spreads over the backoff span.
   Measured with :func:`~repro.resilience.retry_storm_arrivals`, the
   O(sessions) aggregate analogue — the same function fleet-tier
   sweeps can call instead of simulating per-session retries.

Both halves are pure functions of (plan, seed): the jitter stream is
derived from the seed (never ``sim.rng``), every spec is a plain
picklable tuple through one ``sweep_map`` dispatcher, and output is
byte-identical at any ``--jobs`` level (the resilience-smoke CI job
diffs exactly that). The cross-check findings assert the aggregate
analogue (:func:`~repro.resilience.contained_cascade_depth`) agrees
with the simulated cascade, so fleet-tier runs can reuse the cheap
form with a clear conscience.

Tier: testbed (the fluid gateway at production shard shape; the
aggregate analogues above are the fleet-tier reuse surface).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from ..faults import Fault, FaultEngine, FaultPlan
from ..resilience import (
    BreakerConfig,
    ResilienceConfig,
    ResiliencePolicies,
    RetryConfig,
    contained_cascade_depth,
    retry_storm_arrivals,
)
from ..runtime.sweep import sweep_map
from ..simcore import Simulator
from .base import ExperimentResult, Series, Table
from .cloud_ops import build_production_gateway

__all__ = ["fig8_resilience", "resilience_plan"]

#: Virtual seconds of slack sampled after the last recovery.
_TAIL_S = 10.0

#: Breaker tuning for the chaos runs: with 3 windowed failures per
#: poisoned backend, the second crash reaches min_requests and trips.
_BREAKER = BreakerConfig(window_s=30.0, min_requests=4,
                         failure_threshold=0.5, open_duration_s=30.0,
                         close_after=2)

#: Retry shape for the storm analysis: first reconnect 10 s out, so a
#: synchronized population is one 10 s spike and a jittered one
#: spreads over the whole span.
_STORM_BASE = RetryConfig(max_attempts=3, base_backoff_s=10.0,
                          multiplier=2.0, max_backoff_s=60.0, jitter=0.0)


def resilience_plan() -> FaultPlan:
    """The Fig 8 schedule minus the CA window (gateway faults only).

    Same windows and symbolic targets as :func:`fig8_plan`, so the
    baseline half of this exhibit reproduces ``fig8_recovery``'s
    gateway-level behavior run for run.
    """
    return FaultPlan.of(
        Fault(kind="replica_crash", at=10.0,
              target="service:0/backend:0/replica:0", duration_s=15.0),
        Fault(kind="backend_crash", at=40.0,
              target="service:1/backend:0", duration_s=20.0),
        Fault(kind="az_crash", at=80.0, target="az1", duration_s=30.0),
        Fault(kind="query_of_death", at=130.0, target="service:2",
              duration_s=20.0),
    )


def _chaos_run(seed: int, plan_json: str,
               protected: bool) -> Dict[str, object]:
    """One chaos run → plain picklable samples.

    ``protected`` installs a breaker-bearing policy set on the gateway
    before arming the plan; the unprotected run is the baseline.
    """
    plan = FaultPlan.from_json(json.loads(plan_json))
    sim = Simulator(seed)
    gateway, services = build_production_gateway(
        sim, backends_per_az=6, services=6)
    if protected:
        policies = ResiliencePolicies(
            ResilienceConfig(breaker=_BREAKER, qod_failures_per_backend=3),
            seed=seed, name="fig8-resilience")
        gateway.install_resilience(policies)
    for service in services:
        gateway.set_service_sessions(service.service_id, 12_000)
        gateway.set_service_load(service.service_id, 20_000.0)
    engine = FaultEngine(sim, gateway=gateway)
    engine.arm(plan)

    service_ids = sorted(gateway.service_backends)
    qod_fault = next(f for f in plan.sim_faults()
                     if f.kind == "query_of_death")
    qod_victim = service_ids[2]
    horizon = int(plan.horizon() + _TAIL_S)
    availability: List[float] = []
    victim_up: List[int] = []
    peers_up: List[int] = []

    def sample():
        for _second in range(horizon + 1):
            up = {sid: 0 if gateway.service_outage(sid) else 1
                  for sid in service_ids}
            availability.append(sum(up.values()) / len(service_ids))
            victim_up.append(up[qod_victim])
            peers_up.append(min(bit for sid, bit in up.items()
                                if sid != qod_victim))
            yield sim.timeout(1.0)

    sim.process(sample(), name="sampler")
    sim.run(until=horizon + 1.5)

    crashed_in_qod = [event.target for event in engine.injector.events
                      if event.scope == "backend"
                      and event.failed_at == qod_fault.at]
    auditor = engine.auditor
    out: Dict[str, object] = {
        "availability": availability,
        "victim_up": victim_up,
        "peers_up": peers_up,
        "qod_backends_crashed": len(crashed_in_qod),
        "victim_backends": len(gateway.service_backends[qod_victim]),
        "checks": auditor.checks_run,
        "violations": len(auditor.violations),
        "disrupted": engine.injector.disrupted_by_scope(),
        "timeline": list(engine.timeline),
    }
    if protected:
        out["policy_stats"] = gateway.resilience.stats()
    return out


def _storm_run(seed: int, sessions: int,
               jitter: float) -> Dict[str, object]:
    """Reconnect-arrival histogram for one jitter setting."""
    config = RetryConfig(max_attempts=_STORM_BASE.max_attempts,
                         base_backoff_s=_STORM_BASE.base_backoff_s,
                         multiplier=_STORM_BASE.multiplier,
                         max_backoff_s=_STORM_BASE.max_backoff_s,
                         jitter=jitter)
    buckets = retry_storm_arrivals(sessions, config, seed=seed)
    return {"buckets": buckets, "peak": max(buckets) if buckets else 0,
            "total": sum(buckets)}


def _resilience_case(spec: Tuple) -> Dict[str, object]:
    """Sweep dispatcher: one worker fn so one pool call covers both
    halves (chaos runs and storm analyses) in parallel."""
    kind = spec[0]
    if kind == "chaos":
        _, seed, plan_json, protected = spec
        return _chaos_run(seed, plan_json, protected)
    if kind == "storm":
        _, seed, sessions, jitter = spec
        return _storm_run(seed, sessions, jitter)
    raise ValueError(f"unknown resilience case {kind!r}")


def _qod_window(plan: FaultPlan) -> Tuple[float, float]:
    fault = next(f for f in plan.sim_faults()
                 if f.kind == "query_of_death")
    return fault.at, fault.at + (fault.duration_s or 0.0)


def _in_window(bits: List[int], lo: float, hi: float) -> List[int]:
    return [bit for second, bit in enumerate(bits) if lo < second < hi]


def fig8_resilience(seed: int = 53,
                    seeds: Optional[List[int]] = None,
                    plan: Optional[FaultPlan] = None) -> ExperimentResult:
    """Breaker containment + retry de-synchronization vs the baseline."""
    result = ExperimentResult(
        "fig8_resilience",
        "Resilience policies under chaos: breaker containment and "
        "retry-storm de-synchronization")
    active_plan = plan if plan is not None else resilience_plan()
    plan_json = active_plan.canonical()
    seed_grid = list(seeds) if seeds else [seed, seed + 1]

    chaos_specs = [("chaos", one_seed, plan_json, protected)
                   for one_seed in seed_grid
                   for protected in (False, True)]
    chaos_runs = sweep_map(_resilience_case, chaos_specs)
    baselines = chaos_runs[0::2]
    protecteds = chaos_runs[1::2]

    # The storm population is the baseline AZ-crash disruption count —
    # deterministic per seed, so the second sweep stays reproducible.
    storm_sessions = int(baselines[0]["disrupted"].get("az", 0))
    storm_specs = [("storm", one_seed, storm_sessions, jitter)
                   for one_seed in seed_grid
                   for jitter in (0.0, 1.0)]
    storm_runs = sweep_map(_resilience_case, storm_specs)
    synchronized = storm_runs[0::2]
    jittered = storm_runs[1::2]

    # -- series (first seed) -------------------------------------------------
    for label, run in (("baseline", baselines[0]),
                       ("protected", protecteds[0])):
        series = Series(f"availability_{label}", x_label="seconds",
                        y_label="services up / total")
        for second, fraction in enumerate(run["availability"]):
            series.add(second, fraction)
        result.series.append(series)
    for label, run in (("synchronized", synchronized[0]),
                       ("jittered", jittered[0])):
        series = Series(f"retry_arrivals_{label}", x_label="seconds",
                        y_label="reconnects / s")
        for second, count in enumerate(run["buckets"]):
            series.add(second, count)
        result.series.append(series)

    # -- blast radius --------------------------------------------------------
    lo, hi = _qod_window(active_plan)
    radius = Table("Query-of-death blast radius",
                   ["mode", "backends crashed", "victim up in window",
                    "peers up in window"])
    for mode, runs in (("baseline", baselines), ("protected", protecteds)):
        radius.add_row(
            mode,
            max(run["qod_backends_crashed"] for run in runs),
            min(min(_in_window(run["victim_up"], lo, hi)) for run in runs),
            min(min(_in_window(run["peers_up"], lo, hi)) for run in runs))
    result.tables.append(radius)

    transitions = Table(f"Breaker transitions (seed {seed_grid[0]})",
                        ["service", "t", "from", "to", "reason"])
    stats = protecteds[0]["policy_stats"]
    for service_id, breaker in sorted(stats["breakers"].items()):
        for t, from_state, to_state, reason in breaker["transitions"]:
            transitions.add_row(service_id, t, from_state, to_state, reason)
    result.tables.append(transitions)

    # -- findings ------------------------------------------------------------
    result.findings["seeds_run"] = float(len(seed_grid))
    result.findings["qod_backends_crashed_baseline"] = float(
        max(run["qod_backends_crashed"] for run in baselines))
    result.findings["qod_backends_crashed_protected"] = float(
        max(run["qod_backends_crashed"] for run in protecteds))
    result.findings["qod_victim_up_baseline"] = float(
        min(min(_in_window(run["victim_up"], lo, hi))
            for run in baselines))
    result.findings["qod_victim_up_protected"] = float(
        min(min(_in_window(run["victim_up"], lo, hi))
            for run in protecteds))
    result.findings["min_availability_baseline"] = min(
        min(run["availability"]) for run in baselines)
    result.findings["min_availability_protected"] = min(
        min(run["availability"]) for run in protecteds)
    predicted = contained_cascade_depth(
        backends=int(protecteds[0]["victim_backends"]),
        failures_per_backend=3, config=_BREAKER)
    result.findings["containment_matches_analytic"] = float(
        all(run["qod_backends_crashed"] == predicted
            for run in protecteds))
    result.findings["storm_sessions"] = float(storm_sessions)
    result.findings["storm_peak_synchronized"] = float(
        max(run["peak"] for run in synchronized))
    result.findings["storm_peak_jittered"] = float(
        max(run["peak"] for run in jittered))
    peak_jittered = max(1, max(run["peak"] for run in jittered))
    result.findings["storm_peak_reduction"] = (
        min(run["peak"] for run in synchronized) / peak_jittered)
    result.findings["invariant_checks"] = float(
        sum(run["checks"] for run in chaos_runs))
    result.findings["invariant_violations"] = float(
        sum(run["violations"] for run in chaos_runs))

    result.notes.append(
        "breaker containment: the query-of-death cascade halts once the "
        "victim's breaker opens, so the victim keeps its remaining "
        "shuffle-shard backends instead of going dark")
    result.notes.append(
        "retry de-synchronization: full jitter spreads the post-AZ-crash "
        "reconnect population over the whole backoff span instead of one "
        "synchronized spike")
    result.notes.append(
        f"aggregate analogues (fleet-tier reuse): "
        f"contained_cascade_depth predicts {predicted} crashed backends; "
        f"retry_storm_arrivals prices the storm in O(sessions) without a "
        f"simulator")
    result.notes.append(
        f"invariant auditor: {int(result.findings['invariant_checks'])} "
        f"checks, {int(result.findings['invariant_violations'])} "
        f"violations across {len(chaos_runs)} chaos runs")
    return result
