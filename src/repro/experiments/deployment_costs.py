"""§5.6 exhibit: Table 5 — deployment cost reduction.

Four region demand profiles run through the economics model; the
redirector (LB disaggregation) and tunneling (session aggregation)
options are priced against the dedicated-LB baseline.
"""

from __future__ import annotations

from typing import Dict

from ..core import RegionDemand, cost_reduction, deployment_footprint
from .base import ExperimentResult, Table

__all__ = ["table5_cost_reduction", "REGION_DEMANDS"]

#: Region profiles: load, session intensity, and LB sizing differ by
#: region, which is what spreads the paper's ranges (32–48 %
#: redirector-only, 55–70 % combined). Session-heavy regions save more
#: from tunneling; LB-heavy regions save more from redirectors.
REGION_DEMANDS: Dict[str, RegionDemand] = {
    "Region1": RegionDemand(services=900, azs=3, rps_per_service=110_000.0,
                            sessions_per_service=400_000.0,
                            lb_vm_cost_ratio=1.5),
    "Region2": RegionDemand(services=700, azs=3, rps_per_service=150_000.0,
                            sessions_per_service=500_000.0,
                            lb_vm_cost_ratio=1.67),
    "Region3": RegionDemand(services=500, azs=3, rps_per_service=195_000.0,
                            sessions_per_service=720_000.0,
                            lb_vm_cost_ratio=1.25),
    "Region4": RegionDemand(services=650, azs=3, rps_per_service=150_000.0,
                            sessions_per_service=600_000.0,
                            lb_vm_cost_ratio=1.35),
}


def table5_cost_reduction() -> ExperimentResult:
    """Cost reduction by redirector, tunneling, and both, per region."""
    result = ExperimentResult(
        "table5", "Cost reduction by redirector and tunneling")
    table = Table("Fractional VM-cost reduction vs dedicated-LB baseline",
                  ["region", "redirector", "tunneling", "both"])
    for region, demand in REGION_DEMANDS.items():
        redirector = cost_reduction(demand, redirector=True, tunneling=False)
        tunneling = cost_reduction(demand, redirector=False, tunneling=True)
        both = cost_reduction(demand, redirector=True, tunneling=True)
        table.add_row(region, redirector, tunneling, both)
    result.tables.append(table)
    redirector_values = table.column("redirector")
    both_values = table.column("both")
    result.findings["redirector_min"] = min(redirector_values)
    result.findings["redirector_max"] = max(redirector_values)
    result.findings["both_min"] = min(both_values)
    result.findings["both_max"] = max(both_values)
    baseline = deployment_footprint(REGION_DEMANDS["Region1"],
                                    redirector=False, tunneling=False)
    result.findings["region1_baseline_vms"] = baseline.total
    result.notes.append(
        "paper: redirectors cut 32-48% of dedicated cloud resources; "
        "adding tunneling reaches 55-70%")
    return result
