"""§5.5 exhibits: Canal on cloud infrastructure at production scale.

Fig 16 (noisy-neighbor isolation), Fig 17 (Reuse/New completion CDF),
Table 4 (scaling timelines), Fig 18 (monthly scaling occurrences),
Fig 19 (shuffle-shard combinations), Fig 20 (daily operational data).

These run in the gateway's fluid mode: per-second (or per-minute) RPS
traces drive analytic water levels, while the control loops — monitor,
RCA, scaling, migration — execute as DES processes.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..core import (
    AnomalySignals,
    GatewayConfig,
    GatewayMonitor,
    MeshGateway,
    RapidResponder,
    SandboxManager,
    ScalingEngine,
    ScalingTimings,
    TenantService,
)
from ..core.replica import ReplicaConfig
from ..runtime.sweep import sweep_map
from ..simcore import Simulator, TimeSeries, cdf, percentile
from ..workloads import surge_trace
from .base import ExperimentResult, Series, Table

__all__ = [
    "build_production_gateway",
    "fig16_noisy_neighbor",
    "fig17_scaling_cdf",
    "table4_scaling_timelines",
    "fig18_scaling_occurrences",
    "fig19_shuffle_sharding",
    "fig20_daily_operations",
]


def build_production_gateway(sim: Simulator, azs: int = 2,
                             backends_per_az: int = 6, services: int = 8,
                             replica_cores: int = 8,
                             request_cost_s: float = 115e-6
                             ) -> Tuple[MeshGateway, List[TenantService]]:
    """A production-style regional gateway with registered services."""
    config = GatewayConfig(
        replicas_per_backend=2, backends_per_service_per_az=2,
        azs_per_service=min(2, azs),
        replica=ReplicaConfig(cores=replica_cores,
                              request_cost_s=request_cost_s))
    gateway = MeshGateway(sim, config)
    gateway.deploy_initial([f"az{i + 1}" for i in range(azs)],
                           backends_per_az)
    registry = gateway.registry
    tenant_services = []
    for index in range(services):
        tenant = registry.add_tenant(f"tenant{index + 1}")
        service = registry.add_service(
            tenant, name=f"svc{index + 1}",
            vpc_ip=f"10.0.{index // 250}.{index % 250 + 1}",
            https=(index % 3 == 0))
        gateway.register_service(service)
        tenant_services.append(service)
    return gateway, tenant_services


# --------------------------------------------------------------------------
# Fig 16 — noisy-neighbor isolation on a multi-tenant backend
# --------------------------------------------------------------------------

class _FillerPool:
    """Per-backend filler services that pin backend water levels.

    Fig 17/18 need to control the pool state (idle → Reuse is possible,
    busy → New is forced); a filler service on every backend makes the
    water level a directly settable experiment input.
    """

    def __init__(self, gateway: MeshGateway):
        self.gateway = gateway
        self.tenant = gateway.registry.add_tenant("filler")
        self._fillers: Dict[str, TenantService] = {}

    def _ensure(self, backend) -> TenantService:
        service = self._fillers.get(backend.name)
        if service is None:
            index = len(self._fillers)
            service = self.gateway.registry.add_service(
                self.tenant, name=f"filler-{backend.name}",
                vpc_ip=f"172.16.{index // 250}.{index % 250 + 1}")
            backend.install_service(service.service_id)
            self.gateway.service_backends[service.service_id] = [backend]
            self._fillers[backend.name] = service
        return service

    def set_water(self, level: float) -> None:
        for backend in self.gateway.all_backends:
            service = self._ensure(backend)
            backend.offer_load(service.service_id,
                               level * backend.capacity_rps())


def fig16_noisy_neighbor(seed: int = 31, duration_s: int = 90,
                         surge_start_s: int = 45) -> ExperimentResult:
    """One service's traffic surges; the backend alert fires, RCA
    pinpoints it, Reuse scaling drains the hot backend — while the
    co-located services' RPS/latency/error codes stay flat."""
    result = ExperimentResult(
        "fig16", "Noisy neighbor isolation in a multi-tenant backend")
    sim = Simulator(seed)
    gateway, services = build_production_gateway(sim, backends_per_az=10)
    rng = random.Random(seed)

    # Baseline loads put every backend well under threshold.
    base_rps = {service.service_id: 25_000.0 for service in services}
    for service in services:
        gateway.set_service_load(service.service_id,
                                 base_rps[service.service_id])
    # The noisy neighbor: the service on the most-loaded backend.
    hot_backend = max(gateway.all_backends,
                      key=lambda b: len(b.configured_services))
    noisy_id = next(iter(hot_backend.top_services(1)))
    peers_on_backend = [sid for sid in sorted(hot_backend.configured_services)
                        if sid != noisy_id]

    # Size the surge so the backend peaks around 80 % water. Water is
    # computed on weighted RPS (HTTPS requests count 3x), so both the
    # peers' contribution and the noisy service's own weight matter.
    capacity = hot_backend.capacity_rps()
    backend_count = len(gateway.service_backends[noisy_id])
    registry = gateway.registry

    def weight_of(sid: int) -> float:
        service = registry.services.get(sid)
        return service.request_weight if service else 1.0

    other_load = sum(hot_backend.service_rps(sid) * weight_of(sid)
                     for sid in peers_on_backend)
    surge_total = ((0.8 * capacity - other_load) / weight_of(noisy_id)
                   * backend_count)
    trace = surge_trace(rng, base_rps[noisy_id], surge_total,
                        duration_s=duration_s, surge_start_s=surge_start_s)

    monitor = GatewayMonitor(sim, gateway, interval_s=1.0)
    scaling = ScalingEngine(sim, gateway,
                            timings=ScalingTimings(reuse_median_s=8.0,
                                                   settle_median_s=5.0),
                            target_water=0.3)
    sandbox = SandboxManager(sim, gateway)
    responder = RapidResponder(
        sim, gateway, monitor, scaling, sandbox,
        signal_provider=lambda sid: AnomalySignals(
            rps_growth=3.0, session_growth=3.2, water_growth=2.5))
    monitor.start()

    water_series = Series("hot_backend_cpu", x_label="seconds",
                          y_label="utilization")
    noisy_series = Series("noisy_service_rps", x_label="seconds",
                          y_label="rps")
    peer_rps = Series("peer_services_rps", x_label="seconds", y_label="rps")
    peer_latency = Series("peer_services_latency_ms", x_label="seconds",
                          y_label="ms")
    errors = Series("http_error_codes", x_label="seconds", y_label="count")

    def drive():
        for second, rps in enumerate(trace):
            gateway.set_service_load(noisy_id, rps)
            water = hot_backend.water_level()
            water_series.add(second, water)
            noisy_series.add(second, rps)
            peers_total = sum(gateway.service_rps[sid]
                              for sid in peers_on_backend)
            peer_rps.add(second, peers_total)
            # Peer latency tracks the water level of the hottest backend
            # each peer actually uses (M/M/1-style inflation).
            worst = 0.0
            for sid in peers_on_backend:
                for backend in gateway.service_backends[sid]:
                    if backend.is_healthy:
                        worst = max(worst, backend.water_level())
            peer_latency.add(second, 2.0 / max(0.05, 1.0 - worst))
            # No outages, no throttling of peers → no error codes.
            error_count = sum(
                1 for sid in peers_on_backend
                if gateway.service_outage(sid))
            errors.add(second, error_count)
            yield sim.timeout(1.0)

    sim.process(drive(), name="trace")
    sim.run(until=duration_s + 1)

    result.series.extend([water_series, noisy_series, peer_rps,
                          peer_latency, errors])
    peak_water = max(water_series.ys)
    final_water = water_series.ys[-1]
    alert_times = [alert.time for alert in monitor.alerts
                   if alert.level == "backend"]
    result.findings["peak_backend_cpu"] = peak_water
    result.findings["final_backend_cpu"] = final_water
    result.findings["alert_time_s"] = alert_times[0] if alert_times else -1.0
    result.findings["max_error_codes"] = max(errors.ys)
    result.findings["recovery_seconds"] = (
        next((t for t, w in water_series.points
              if t > surge_start_s and w < 0.35), duration_s)
        - surge_start_s)
    result.notes.append(
        "paper: CPU drops from ~80% to ~30% within dozens of seconds; "
        "peer RPS/latency unaffected; error codes stay 0")
    return result


# --------------------------------------------------------------------------
# Fig 17 / Table 4 — Reuse vs New completion times
# --------------------------------------------------------------------------

def _fig17_seed_run(spec: Tuple[int, int, int]) -> Dict[str, Dict[str, list]]:
    """One scaling scenario at one seed → per-kind completion times and
    ``(triggered, executed, finished, below_threshold)`` milestones —
    plain picklable lists, so seed sweeps parallelize and results cache.
    """
    reuse_events, new_events, seed = spec
    sim = Simulator(seed)
    gateway, services = build_production_gateway(
        sim, backends_per_az=8, services=10)
    scaling = ScalingEngine(sim, gateway)
    pool = _FillerPool(gateway)
    set_pool_water = pool.set_water

    def scenario():
        rng = sim.rng
        for index in range(reuse_events + new_events):
            force_new = index >= reuse_events
            set_pool_water(0.5 if force_new else 0.05)
            service = services[index % len(services)]
            yield sim.process(scaling.scale_service(service.service_id))
            # Return the pool to idle and strip extensions so later
            # events see a fresh pool.
            backends = gateway.service_backends[service.service_id]
            while len(backends) > 4:
                gateway.shrink_service(service.service_id, backends[-1])
            yield sim.timeout(rng.uniform(30.0, 120.0))

    sim.process(scenario(), name="scenario")
    sim.run()
    return {kind: {
        "times": list(scaling.completion_times(kind)),
        "milestones": [(event.triggered_at, event.executed_at,
                        event.finished_at, event.below_threshold_at)
                       for event in scaling.events_of_kind(kind)],
    } for kind in ("reuse", "new")}


def fig17_scaling_cdf(reuse_events: int = 120, new_events: int = 25,
                      seed: int = 37,
                      seeds: Optional[List[int]] = None) -> ExperimentResult:
    """Completion-time CDFs of the two strategies.

    The pool state decides the strategy: Reuse events run against a
    pool with idle backends; New events run when every same-AZ backend
    is above the reuse threshold.

    ``seeds`` sweeps the whole scenario over several seeds (through the
    ambient sweep executor) and pools the completion times for a denser
    CDF; the default single ``seed`` reproduces the paper exhibit.
    """
    result = ExperimentResult("fig17", "CDF of completion time of "
                                       "Reuse and New")
    seed_grid = list(seeds) if seeds else [seed]
    runs = sweep_map(_fig17_seed_run,
                     [(reuse_events, new_events, one_seed)
                      for one_seed in seed_grid])
    milestones: Dict[str, list] = {}
    for kind in ("reuse", "new"):
        times = [t for run in runs for t in run[kind]["times"]]
        milestones[kind] = [m for run in runs
                            for m in run[kind]["milestones"]]
        series = Series(f"{kind}_completion_cdf", x_label="seconds",
                        y_label="fraction")
        for value, fraction in cdf(times):
            series.add(value, fraction)
        result.series.append(series)
        result.findings[f"{kind}_p50_s"] = percentile(times, 50)
        result.findings[f"{kind}_count"] = float(len(times))
    result.notes.append(
        "paper: P50 completion ~55 s for Reuse and ~17 min for New")
    result._scaling_milestones = milestones  # reused by table4
    return result


def table4_scaling_timelines(seed: int = 37) -> ExperimentResult:
    """One Reuse and one New timeline, milestone by milestone."""
    base = fig17_scaling_cdf(reuse_events=3, new_events=2, seed=seed)
    result = ExperimentResult("table4", "Reuse and New timelines")
    table = Table("Milestones (seconds relative to trigger)",
                  ["strategy", "execute", "finish", "below_threshold"])
    for kind in ("reuse", "new"):
        triggered, executed, finished, below = (
            base._scaling_milestones[kind][0])
        table.add_row(kind,
                      executed - triggered,
                      finished - triggered,
                      below - triggered)
        result.findings[f"{kind}_execute_to_finish_s"] = finished - executed
    result.tables.append(table)
    result.notes.append(
        "paper Table 4: Reuse executes in ~23 s and settles ~74 s after "
        "execution; New takes ~17.5 min of VM pipeline work")
    return result


# --------------------------------------------------------------------------
# Fig 18 — Reuse/New occurrences over a month
# --------------------------------------------------------------------------

def fig18_scaling_occurrences(days: int = 30, seed: int = 41
                              ) -> ExperimentResult:
    """Daily counts of the two strategies: Reuse dominates; New appears
    on capacity-crunch days (and is often executed proactively)."""
    result = ExperimentResult(
        "fig18", "Occurrences of Reuse and New in a cloud region")
    sim = Simulator(seed)
    gateway, services = build_production_gateway(
        sim, backends_per_az=8, services=10)
    scaling = ScalingEngine(sim, gateway)
    rng = random.Random(seed + 1)
    pool = _FillerPool(gateway)
    set_pool_water = pool.set_water

    reuse_daily: List[int] = []
    new_daily: List[int] = []

    def month():
        for _day in range(days):
            before_reuse = len(scaling.events_of_kind("reuse"))
            before_new = len(scaling.events_of_kind("new"))
            growth_events = rng.randint(3, 12)
            crunch_day = rng.random() < 0.25
            for index in range(growth_events):
                crunch_event = crunch_day and index == growth_events - 1
                set_pool_water(0.5 if crunch_event else 0.05)
                service = rng.choice(services)
                yield sim.process(
                    scaling.scale_service(service.service_id))
                backends = gateway.service_backends[service.service_id]
                while len(backends) > 4:
                    gateway.shrink_service(service.service_id, backends[-1])
            reuse_daily.append(
                len(scaling.events_of_kind("reuse")) - before_reuse)
            new_daily.append(
                len(scaling.events_of_kind("new")) - before_new)
            yield sim.timeout(3600.0)

    sim.process(month(), name="month")
    sim.run()

    reuse_series = Series("reuse_per_day", x_label="day", y_label="count")
    new_series = Series("new_per_day", x_label="day", y_label="count")
    for day, (reuse, new) in enumerate(zip(reuse_daily, new_daily)):
        reuse_series.add(day, reuse)
        new_series.add(day, new)
    result.series.extend([reuse_series, new_series])
    result.findings["total_reuse"] = float(sum(reuse_daily))
    result.findings["total_new"] = float(sum(new_daily))
    result.notes.append(
        "paper: New is invoked far less frequently than Reuse")
    return result


# --------------------------------------------------------------------------
# Fig 19 — backend combinations from shuffle sharding
# --------------------------------------------------------------------------

def fig19_shuffle_sharding(services: int = 20, seed: int = 43
                           ) -> ExperimentResult:
    """Backend combinations for top services: multiple backends per
    service, and no two services with identical combinations."""
    result = ExperimentResult(
        "fig19", "Backend combinations from shuffle sharding")
    sim = Simulator(seed)
    gateway, tenant_services = build_production_gateway(
        sim, azs=3, backends_per_az=6, services=services)
    table = Table("Service backend combinations",
                  ["service", "backends", "azs"])
    for service in tenant_services:
        backends = gateway.service_backends[service.service_id]
        table.add_row(service.qualified_name,
                      ",".join(sorted(b.name for b in backends)),
                      len({b.az for b in backends}))
    result.tables.append(table)
    sharder = gateway.sharder
    result.findings["fully_overlapping_pairs"] = float(
        sharder.fully_overlapping_pairs())
    result.findings["max_pairwise_overlap"] = float(
        sharder.max_pairwise_overlap())
    survivors = [min(sharder.survivors_if_combination_fails(
        s.service_id).values()) for s in tenant_services]
    result.findings["min_survivor_backends"] = float(min(survivors))
    result.notes.append(
        "paper: no complete overlap between any two services' backend "
        "combinations; every service keeps healthy backends if another "
        "service's whole combination fails")
    return result


# --------------------------------------------------------------------------
# Fig 20 — daily operational data
# --------------------------------------------------------------------------

def fig20_daily_operations(seed: int = 47) -> ExperimentResult:
    """A 24 h diurnal day with live operations (migration, version
    update, Reuse, New): error codes track RPS with no op-induced
    spikes."""
    result = ExperimentResult("fig20", "Daily operational data")
    sim = Simulator(seed)
    gateway, services = build_production_gateway(
        sim, backends_per_az=8, services=10)
    scaling = ScalingEngine(sim, gateway)
    sandbox = SandboxManager(sim, gateway)
    rng = random.Random(seed + 1)

    minutes = 24 * 60
    rps_series = Series("total_rps", x_label="minute", y_label="rps")
    error_series = Series("error_codes", x_label="minute", y_label="rps")
    op_log: List[Tuple[int, str]] = []
    # Sized so the full fleet rolls in ~4 hours (paper's update window).
    from ..core import RollingUpgrade
    replicas_total = sum(len(b.replicas) for b in gateway.all_backends)
    per_replica_s = 4 * 3600.0 / replicas_total
    roller = RollingUpgrade(sim, gateway,
                            drain_s=per_replica_s * 0.55,
                            swap_s=per_replica_s * 0.3,
                            rejoin_s=per_replica_s * 0.15)
    upgrade_process: List = []

    def diurnal_total(minute: int) -> float:
        import math
        phase = 2 * math.pi * (minute / minutes - 0.58)
        return 2.2e6 + 1.3e6 * (1 + math.cos(phase)) / 2

    def day():
        for minute in range(minutes):
            total = diurnal_total(minute) * (1 + rng.uniform(-0.02, 0.02))
            per_service = total / len(services)
            for service in services:
                gateway.set_service_load(service.service_id, per_service)
            # User-side error codes: a stable small fraction of traffic
            # (quota rejections, apps returning errors by design).
            outage_errors = sum(
                gateway.service_rps[s.service_id]
                for s in services
                if gateway.service_outage(s.service_id))
            errors = total * 0.004 * (1 + rng.uniform(-0.1, 0.1))
            rps_series.add(minute, total)
            error_series.add(minute, errors + outage_errors)
            # Scheduled operations.
            if minute == 10 * 60:
                op_log.append((minute, "service migration"))
                sim.process(sandbox.migrate_lossless(
                    services[0].service_id))
            if minute == 14 * 60:
                op_log.append((minute, "reuse scaling"))
                sim.process(scaling.scale_service(services[1].service_id))
            if minute == 2 * 60:
                # The ~4-hour rolling version update, scheduled at night.
                op_log.append((minute, "version update window (rolling)"))
                upgrade_process.append(sim.process(
                    roller.run("v2"), name="rolling-upgrade"))
            yield sim.timeout(60.0)

    sim.process(day(), name="day")
    sim.run(until=minutes * 60.0 + 1)

    result.series.extend([rps_series, error_series])
    from ..core.rca import pearson
    correlation = pearson(rps_series.ys, error_series.ys)
    result.findings["rps_error_correlation"] = correlation
    # Spike check: max error rate relative to the local RPS share.
    ratios = [e / r for r, e in zip(rps_series.ys, error_series.ys)]
    result.findings["max_error_ratio"] = max(ratios)
    result.findings["min_error_ratio"] = min(ratios)
    result.findings["operations_executed"] = float(len(op_log))
    if upgrade_process and upgrade_process[0].triggered:
        upgrade = upgrade_process[0].value
        result.findings["upgrade_duration_h"] = upgrade.duration_s / 3600.0
        result.findings["upgrade_outage_s"] = upgrade.outage_seconds
        result.findings["replicas_upgraded"] = float(
            upgrade.replicas_upgraded)
    result.notes.append(
        "paper: error codes follow RPS; migrations, version updates and "
        "scaling cause no error spikes")
    return result
