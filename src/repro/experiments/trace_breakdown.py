"""Trace-driven latency and RCA exhibit (§4.1.1 / Appendix A).

``trace_breakdown`` drives the §5.1 testbed under a fully-sampled
:class:`~repro.obs.trace.Tracer` for three architectures and decomposes
where each request's latency goes, straight from the causal traces:

* **sidecar (Istio)** — both sidecar L7 passes dominate; TLS handshake
  spans hang off the connection's first trace;
* **Canal** — split observability reassembled end to end: node L4
  segments + gateway L7 (with the replica execution nested inside) +
  app time + offloaded TLS sub-spans;
* **proxyless Canal** — the Appendix B trade-off made visible: only the
  gateway's L7 view exists, every trace is ``coverage == "partial"``.

The chaos variant overlays a Fig 8-style fault window on *trace-derived*
availability: a backend crash is annotated onto the trace stream by the
fault engine, per-second availability is computed from root-span status
annotations alone, and :func:`~repro.obs.trace.fault_detection_latency`
reports how long until the first degraded trace surfaced the fault —
the RCA loop a sidecar-free mesh must still close.

Every worker is a whole simulation, so the exhibit is byte-identical at
any ``--jobs`` level; the workers' spans are re-recorded (with offset
trace ids) into a collector registered for the ``--report`` exporters,
so the Chrome trace artifact shows all three architectures side by side
with the fault markers.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from ..faults import Fault, FaultEngine, FaultPlan
from ..k8s import Cluster
from ..mesh import HttpRequest
from ..netsim import Topology
from ..obs.trace import (
    Trace,
    TraceCollector,
    Tracer,
    critical_path,
    fault_detection_latency,
    layer_attribution,
    register_collector,
    set_tracer,
    span_from_dict,
    span_to_dict,
    take_collectors,
)
from ..runtime.sweep import sweep_map
from ..simcore import Simulator
from .base import ExperimentResult, Series, Table
from .testbed import (
    PODS_PER_SERVICE,
    SERVICES,
    TestbedRun,
    WORKER_NODES,
    build_testbed,
)

__all__ = ["trace_breakdown", "trace_breakdown_chaos"]

#: Architectures compared in the waterfall, in display order.
_MESHES = ("istio", "canal", "canal-proxyless")

#: Layers in waterfall display order (request = uninstrumented root
#: residue, i.e. network propagation and queueing between spans).
_LAYERS = ("tls", "l4", "l7", "app", "request", "unattributed")


def _build(mesh_name: str, seed: int) -> TestbedRun:
    """The §5.1 testbed, extended with the proxyless variant."""
    if mesh_name != "canal-proxyless":
        return build_testbed(mesh_name, seed=seed)
    from ..core.proxyless import ProxylessCanalMesh
    sim = Simulator(seed)
    topology = Topology.single_az_testbed(worker_nodes=WORKER_NODES)
    cluster = Cluster("testbed", topology.all_nodes())
    mesh = ProxylessCanalMesh(sim)
    mesh.attach(cluster)
    for index in range(SERVICES):
        name = f"svc{index}"
        cluster.create_deployment(name, replicas=PODS_PER_SERVICE,
                                  labels={"app": name})
        cluster.create_service(name, selector={"app": name})
    return TestbedRun(sim, cluster, mesh)


def _scoped_tracer(seed: int) -> Tuple[Tracer, object]:
    """An ambient full-sampling tracer whose collector is *not* left in
    the report-drain registry (the parent re-records the spans it gets
    back, so a leaked worker collector would double-count under serial
    sweeps)."""
    tracer = Tracer(sample_rate=1.0, seed=seed)
    previous = set_tracer(tracer)
    return tracer, previous


def _unscope_tracer(tracer: Tracer, previous) -> None:
    set_tracer(previous)
    for collector in take_collectors():
        if collector is not tracer.collector:
            register_collector(collector)


def _packed_traces(collector: TraceCollector) -> List[List[dict]]:
    return [[span_to_dict(span) for span in trace.spans]
            for trace in collector.traces()]


def _unpack_traces(packed: List[List[dict]], id_offset: int = 0
                   ) -> List[Trace]:
    traces = []
    for spans in packed:
        if not spans:
            continue
        spans = [span_from_dict(dict(data, trace_id=(int(data["trace_id"])
                                                     + id_offset)))
                 for data in spans]
        traces.append(Trace(trace_id=spans[0].trace_id,
                            spans=sorted(spans, key=lambda s: (s.start_s,
                                                               s.span_id))))
    return traces


def _waterfall_run(spec: Tuple[str, int, int]) -> Dict[str, object]:
    """One traced testbed run → plain picklable span dicts."""
    mesh_name, seed, requests = spec
    tracer, previous = _scoped_tracer(seed)
    latencies: List[float] = []
    try:
        run = _build(mesh_name, seed)

        def scenario():
            connection = yield run.sim.process(
                run.mesh.open_connection(run.client_pod, "svc1"))
            for _ in range(requests):
                response = yield run.sim.process(
                    run.mesh.request(connection, HttpRequest()))
                latencies.append(response.latency_s)
                yield run.sim.timeout(0.01)

        run.sim.process(scenario(), name="trace-client")
        run.sim.run()
    finally:
        _unscope_tracer(tracer, previous)
    return {
        "mesh": mesh_name,
        "latencies": latencies,
        "traces": _packed_traces(tracer.collector),
        "traces_sampled": tracer.traces_sampled,
    }


#: Chaos schedule: one backend crash against the driven service (svc1
#: is service index 1), injected mid-run and healed before the end.
_CHAOS_INJECT_AT = 8.0
_CHAOS_DURATION_S = 6.0
_CHAOS_HORIZON_S = 20


def _chaos_plan() -> FaultPlan:
    return FaultPlan.of(
        Fault(kind="backend_crash", at=_CHAOS_INJECT_AT,
              target="service:1/backend:0",
              duration_s=_CHAOS_DURATION_S))


def _chaos_run(spec: Tuple[int, str]) -> Dict[str, object]:
    """Canal under a fault plan, one request per virtual second."""
    seed, plan_json = spec
    plan = FaultPlan.from_json(json.loads(plan_json))
    tracer, previous = _scoped_tracer(seed)
    statuses: List[Tuple[float, int]] = []
    try:
        run = build_testbed("canal", seed=seed)
        engine = FaultEngine(run.sim, gateway=run.mesh.gateway)
        engine.arm(plan)

        def client():
            connection = yield run.sim.process(
                run.mesh.open_connection(run.client_pod, "svc1"))
            for _ in range(_CHAOS_HORIZON_S):
                response = yield run.sim.process(
                    run.mesh.request(connection, HttpRequest()))
                statuses.append((run.sim.now, response.status))
                yield run.sim.timeout(1.0)

        run.sim.process(client(), name="chaos-client")
        run.sim.run()
    finally:
        _unscope_tracer(tracer, previous)
    return {
        "statuses": statuses,
        "traces": _packed_traces(tracer.collector),
        "fault_marks": list(tracer.collector.fault_marks),
        "timeline": list(engine.timeline),
    }


def _mean_attribution(traces: List[Trace]) -> Dict[str, float]:
    """Per-layer latency attribution averaged over the traces."""
    totals: Dict[str, float] = {}
    for trace in traces:
        for layer, seconds in layer_attribution(trace).items():
            totals[layer] = totals.get(layer, 0.0) + seconds
    return {layer: seconds / len(traces)
            for layer, seconds in totals.items()} if traces else {}


def _is_e2e(trace: Trace) -> bool:
    """The acceptance predicate: gateway L7 + node L4 + app + TLS
    layers present under a causal root, with the replica execution
    correctly parented inside the gateway L7 span."""
    if not set(trace.layers()) >= {"l4", "l7", "app", "tls"}:
        return False
    root = trace.root()
    if root is None:
        return False
    replica = next((span for span in trace.spans
                    if span.name == "replica-exec"), None)
    if replica is None:
        return False
    parent = trace.span(replica.parent_id)
    return parent is not None and parent.name == "gateway-l7"


def trace_breakdown(seed: int = 11, requests: int = 24) -> ExperimentResult:
    """Per-layer latency waterfall for sidecar vs Canal vs proxyless."""
    result = ExperimentResult(
        "trace_breakdown",
        "Causal-trace latency waterfall: sidecar vs Canal vs proxyless")
    runs = sweep_map(_waterfall_run,
                     [(mesh, seed, requests) for mesh in _MESHES])

    # Re-record every worker's spans (offset ids, so the three meshes
    # coexist) into a collector the --report exporters drain.
    exhibit_collector = TraceCollector()
    register_collector(exhibit_collector)
    id_offset = 0
    traces_by_mesh: Dict[str, List[Trace]] = {}
    for run in runs:
        traces = _unpack_traces(run["traces"], id_offset=id_offset)
        traces_by_mesh[run["mesh"]] = traces
        for trace in traces:
            for span in trace.spans:
                exhibit_collector.record(span)
        id_offset += len(run["traces"]) + 1

    waterfall = Table("Per-layer latency attribution (mean ms/request)",
                      ["mesh"] + [f"{layer}_ms" for layer in _LAYERS]
                      + ["trace_ms", "coverage"])
    for run in runs:
        mesh = run["mesh"]
        traces = traces_by_mesh[mesh]
        attribution = _mean_attribution(traces)
        mean_duration = (sum(t.duration_s for t in traces) / len(traces)
                         if traces else 0.0)
        coverages = {t.coverage for t in traces}
        waterfall.add_row(
            mesh, *[round(attribution.get(layer, 0.0) * 1e3, 4)
                    for layer in _LAYERS],
            round(mean_duration * 1e3, 4),
            "/".join(sorted(coverages)))
    result.tables.append(waterfall)

    canal_traces = traces_by_mesh.get("canal", [])
    if canal_traces:
        path = Table("Critical path of the first Canal trace",
                     ["start_ms", "end_ms", "layer", "source"])
        for start, end, layer, source in critical_path(canal_traces[0]):
            path.add_row(round(start * 1e3, 4), round(end * 1e3, 4),
                         layer, source)
        result.tables.append(path)

    for run in runs:
        mesh = run["mesh"]
        latencies = run["latencies"]
        result.findings[f"{mesh}_mean_latency_ms"] = (
            sum(latencies) / len(latencies) * 1e3 if latencies else 0.0)
        result.findings[f"{mesh}_traces"] = float(len(traces_by_mesh[mesh]))

    result.findings["canal_e2e_traces"] = float(
        sum(1 for trace in canal_traces if _is_e2e(trace)))
    result.findings["proxyless_partial_traces"] = float(
        sum(1 for trace in traces_by_mesh.get("canal-proxyless", [])
            if trace.coverage == "partial"))
    result.findings["proxyless_nonpartial_traces"] = float(
        sum(1 for trace in traces_by_mesh.get("canal-proxyless", [])
            if trace.coverage != "partial"))
    result.findings["canal_mean_gap_ms"] = (
        sum(t.critical_path_gap_s() for t in canal_traces)
        / len(canal_traces) * 1e3 if canal_traces else 0.0)
    result.notes.append(
        "layers attribute exclusive critical-path time: the gateway L7 "
        "span only claims what its nested replica-exec span does not")
    result.notes.append(
        "proxyless traces are gateway-only (coverage=partial): the "
        "Appendix B observability trade-off")

    chaos = trace_breakdown_chaos(seed=seed, collector=exhibit_collector,
                                  id_offset=id_offset)
    result.tables.extend(chaos.tables)
    result.series.extend(chaos.series)
    result.findings.update(chaos.findings)
    result.notes.extend(chaos.notes)
    return result


def trace_breakdown_chaos(seed: int = 11,
                          collector: TraceCollector = None,
                          id_offset: int = 0) -> ExperimentResult:
    """Fault timeline overlaid on trace-derived availability.

    ``collector``, when given, receives the chaos run's spans and fault
    marks (with trace ids shifted by ``id_offset``) for the ``--report``
    exporters.
    """
    result = ExperimentResult(
        "trace_breakdown_chaos",
        "Trace-derived availability and fault-detection latency")
    plan = _chaos_plan()
    run = sweep_map(_chaos_run, [(seed, plan.canonical())])[0]
    traces = _unpack_traces(run["traces"], id_offset=id_offset)
    marks = run["fault_marks"]
    if collector is not None:
        for trace in traces:
            for span in trace.spans:
                collector.record(span)
        for mark in marks:
            collector.mark_fault(mark["t"], mark["action"], mark["kind"],
                                 mark["target"], mark.get("detail", ""))

    # Per-second availability from root-span status annotations only —
    # no side channel back into the simulator's truth.
    per_second: Dict[int, List[int]] = {}
    for trace in traces:
        root = trace.root()
        if root is None:
            continue
        ok = 1 if root.annotation("status") in ("200", "ok") else 0
        per_second.setdefault(int(trace.end_s), []).append(ok)
    availability = Series("trace_availability", x_label="seconds",
                          y_label="ok traces / traces")
    horizon = max(per_second, default=0)
    for second in range(horizon + 1):
        bits = per_second.get(second)
        availability.add(second, sum(bits) / len(bits) if bits else 1.0)
    result.series.append(availability)

    fault_table = Table("Fault marks on the trace stream",
                        ["t", "action", "kind", "target"])
    for mark in marks:
        fault_table.add_row(mark["t"], mark["action"], mark["kind"],
                            mark["target"])
    result.tables.append(fault_table)

    detections = fault_detection_latency(traces, marks)
    detected = [entry for entry in detections
                if entry["latency_s"] is not None]
    result.findings["chaos_faults_injected"] = float(len(detections))
    result.findings["chaos_faults_detected"] = float(len(detected))
    if detected:
        result.findings["chaos_detection_latency_s"] = detected[0][
            "latency_s"]
    degraded = sum(1 for trace in traces
                   if trace.root() is not None
                   and trace.root().annotation("status")
                   not in ("200", "ok"))
    result.findings["chaos_degraded_traces"] = float(degraded)
    result.findings["chaos_min_availability"] = min(
        point[1] for point in availability.points) if \
        availability.points else 1.0
    result.notes.append(
        "availability is computed from trace root status annotations "
        "alone; the fault window must show as degraded traces between "
        f"t={_CHAOS_INJECT_AT:g}s and "
        f"t={_CHAOS_INJECT_AT + _CHAOS_DURATION_S:g}s")
    return result
