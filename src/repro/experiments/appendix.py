"""Appendix exhibits: Figs 21–30.

Dataplane mechanics (iptables vs eBPF, Nagle), crypto offloading
micro-benchmarks (key server, AVX-512 batching), the redirector
session-consistency case, and the production latency distribution.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from ..core import DisaggregatedLB, KeyServer, KeyServerConfig, Replica, \
    RemoteKeyEngine
from ..core.replica import ReplicaConfig
from ..crypto import BatchedAccelerator, SoftwareAsymEngine
from ..kernel import EbpfRedirect, IptablesRedirect, KernelCosts
from ..mesh import DEFAULT_COSTS, MeshCostModel
from ..netsim import FiveTuple
from ..simcore import Simulator, Summary, percentile
from ..workloads import ShortFlowDriver, production_latency_samples
from .base import ExperimentResult, Series, Table
from .testbed import build_testbed

__all__ = [
    "fig21_iptables_path",
    "fig22_context_switch_frequency",
    "fig23_crypto_completion_time",
    "fig24_latency_distribution",
    "fig25_avx512_batching",
    "fig26_session_consistency",
    "fig27_28_offload_performance",
    "fig29_30_ebpf_performance",
]


# --------------------------------------------------------------------------
# Fig 21 — traffic redirection with iptables vs eBPF (path structure)
# --------------------------------------------------------------------------

def fig21_iptables_path(message_bytes: int = 1024) -> ExperimentResult:
    """Per-message redirect cost structure of the two mechanisms."""
    result = ExperimentResult(
        "fig21", "Traffic redirection: iptables vs eBPF path")
    iptables = IptablesRedirect()
    ebpf = EbpfRedirect()
    table = Table("Per-message redirection cost",
                  ["mechanism", "stack_passes", "context_switches",
                   "copies", "cpu_us"])
    for name, cost in (("iptables", iptables.message_cost(message_bytes)),
                       ("ebpf", ebpf.message_cost(message_bytes))):
        table.add_row(name, cost.stack_passes, cost.context_switches,
                      cost.copies, cost.cpu_s * 1e6)
    result.tables.append(table)
    ipt = iptables.message_cost(message_bytes)
    ebp = ebpf.message_cost(message_bytes)
    result.findings["iptables_extra_stack_passes"] = float(ipt.stack_passes)
    result.findings["cpu_ratio"] = ipt.cpu_s / ebp.cpu_s
    result.notes.append(
        "paper Fig 21: iptables redirection adds two kernel-stack passes "
        "and two context switches per hand-off; eBPF moves payloads "
        "socket-to-socket")
    return result


# --------------------------------------------------------------------------
# Fig 22 — eBPF small-packet context-switch blow-up
# --------------------------------------------------------------------------

def fig22_context_switch_frequency(message_bytes: int = 16,
                                   rps: float = 4000.0) -> ExperimentResult:
    """16-byte messages at 4 kRPS: eBPF without Nagle context-switches
    per message, while the kernel (and Canal's eBPF-Nagle) aggregate."""
    result = ExperimentResult(
        "fig22", "Context switch frequency (16B, 4kRPS)")
    variants = {
        "iptables_kernel_nagle": IptablesRedirect(),
        "ebpf_no_nagle": EbpfRedirect(nagle_enabled=False),
        "ebpf_with_nagle": EbpfRedirect(nagle_enabled=True),
    }
    table = Table("Redirection cost per second of traffic",
                  ["variant", "context_switches_per_s", "cpu_ms_per_s"])
    rates: Dict[str, float] = {}
    for name, redirect in variants.items():
        cost = redirect.path_cost(message_bytes, rps, duration_s=1.0)
        rates[name] = cost.context_switches
        table.add_row(name, cost.context_switches, cost.cpu_s * 1e3)
    result.tables.append(table)
    result.findings["ebpf_over_iptables_ctx"] = (
        rates["ebpf_no_nagle"] / rates["iptables_kernel_nagle"])
    result.findings["nagle_fix_ctx_reduction"] = (
        1 - rates["ebpf_with_nagle"] / rates["ebpf_no_nagle"])
    result.notes.append(
        "paper: kernel bypass loses Nagle, so eBPF shows a higher "
        "context-switch frequency on small packets until Nagle is "
        "re-implemented in eBPF")
    return result


# --------------------------------------------------------------------------
# Fig 23 — crypto completion time: remote / local / no offloading
# --------------------------------------------------------------------------

def fig23_crypto_completion_time(rates: Optional[List[float]] = None,
                                 ops_per_rate: int = 300,
                                 seed: int = 53) -> ExperimentResult:
    """Asymmetric-op completion under the three deployments.

    The shared key server also carries a large background load (it
    serves a massive number of services), so its batches are always
    full and completion stays flat ≈ 1.7 ms. Local AVX-512 sees only
    the local arrivals; plain software on old CPUs takes ≈ 2 ms.
    """
    result = ExperimentResult(
        "fig23", "Completion time of crypto with remote/local/no offload")
    workloads = rates or [200.0, 1000.0, 4000.0]
    series: Dict[str, Series] = {
        name: Series(f"{name}_completion_ms", x_label="ops_per_s",
                     y_label="ms")
        for name in ("remote", "local", "none")
    }
    for rate in workloads:
        # --- remote: key server with heavy background traffic ---------
        sim = Simulator(seed)
        server = KeyServer(sim, az="az1")
        server.store_private_key("tenant", "secret")
        engine = RemoteKeyEngine(sim, server, "requester", "tenant")
        tagged_running = [True]

        def background(sim=sim, server=server):
            # The shared key server carries the whole region's handshake
            # load, so batches fill in tens of microseconds; it keeps
            # flowing for as long as the measured requester is active.
            token = server.establish_channel("others")
            server.store_private_key("others", "secret2")
            while tagged_running[0]:
                yield sim.timeout(sim.rng.expovariate(50_000.0))
                server.serve("others", token, "others")

        completions = Summary("remote")

        def tagged(sim=sim, engine=engine, completions=completions):
            for _ in range(ops_per_rate):
                yield sim.timeout(sim.rng.expovariate(rate))
                start = sim.now
                done = engine.submit()
                yield done
                completions.add(sim.now - start)
            tagged_running[0] = False

        sim.process(background(), name="bg")
        sim.process(tagged(), name="tagged")
        sim.run()
        series["remote"].add(rate, completions.mean * 1e3)

        # --- local AVX-512: only local arrivals fill batches ----------
        sim = Simulator(seed)
        accelerator = BatchedAccelerator(sim)
        completions = Summary("local")

        def local(sim=sim, accelerator=accelerator, completions=completions):
            for _ in range(ops_per_rate):
                yield sim.timeout(sim.rng.expovariate(rate))
                start = sim.now
                done = accelerator.submit()
                yield done
                completions.add(sim.now - start)

        sim.process(local(), name="local")
        sim.run()
        series["local"].add(rate, completions.mean * 1e3)

        # --- no offloading: software on old CPU models -----------------
        sim = Simulator(seed)
        software = SoftwareAsymEngine(sim, new_cpu=False)
        completions = Summary("none")

        def none(sim=sim, software=software, completions=completions):
            for _ in range(ops_per_rate):
                yield sim.timeout(sim.rng.expovariate(rate))
                start = sim.now
                done = software.submit()
                yield done
                completions.add(sim.now - start)

        sim.process(none(), name="none")
        sim.run()
        series["none"].add(rate, completions.mean * 1e3)

    result.series.extend(series.values())
    remote_values = series["remote"].ys
    result.findings["remote_mean_ms"] = sum(remote_values) / len(remote_values)
    result.findings["remote_spread_ms"] = max(remote_values) - min(remote_values)
    result.findings["none_mean_ms"] = (
        sum(series["none"].ys) / len(series["none"].ys))
    result.notes.append(
        "paper: remote ~1.7 ms regardless of workload; local ~1 ms; "
        "no offloading ~2 ms")
    return result


# --------------------------------------------------------------------------
# Fig 24 — production end-to-end latency distribution
# --------------------------------------------------------------------------

def fig24_latency_distribution(samples: int = 20_000,
                               seed: int = 59) -> ExperimentResult:
    """The bimodal production latency histogram, and why the key
    server's 0.7 ms is negligible against it."""
    result = ExperimentResult(
        "fig24", "End-to-end latency distribution in production")
    rng = random.Random(seed)
    values = production_latency_samples(rng, count=samples)
    edges = [20e-3, 40e-3, 50e-3, 80e-3, 100e-3, 200e-3, 400e-3]
    summary = Summary("latency")
    summary.extend(values)
    counts = summary.histogram(edges)
    series = Series("latency_histogram", x_label="bucket_upper_s",
                    y_label="fraction")
    labels = edges + [float("inf")]
    for edge, count in zip(labels, counts):
        series.add(edge if edge != float("inf") else 1.0,
                   count / len(values))
    result.series.append(series)
    in_40_50 = sum(1 for v in values if 40e-3 <= v < 50e-3) / len(values)
    in_100_200 = sum(1 for v in values if 100e-3 <= v < 200e-3) / len(values)
    result.findings["share_40_50ms"] = in_40_50
    result.findings["share_100_200ms"] = in_100_200
    result.findings["key_server_delta_relative"] = 0.7e-3 / summary.mean
    result.notes.append(
        "paper: most latencies fall in 40-50 ms and 100-200 ms, so the "
        "key server's 0.7 ms addition is negligible")
    return result


# --------------------------------------------------------------------------
# Fig 25 — AVX-512 batch under-fill degradation
# --------------------------------------------------------------------------

def fig25_avx512_batching(max_connections: int = 16, ops_per_conn: int = 50,
                          seed: int = 61) -> ExperimentResult:
    """Performance vs #concurrent new connections: below the batch width
    (8), ops wait out the 1 ms flush timeout and lose to plain software
    on the same CPU."""
    result = ExperimentResult(
        "fig25", "AVX-512 performance vs concurrent new connections")
    completion_series = Series("avx512_completion_ms",
                               x_label="concurrent_connections",
                               y_label="ms")
    software_series = Series("software_completion_ms",
                             x_label="concurrent_connections", y_label="ms")
    software_cost = DEFAULT_COSTS.crypto.asym_software_new_cpu_s
    crossover = None
    for concurrency in range(1, max_connections + 1):
        sim = Simulator(seed)
        accelerator = BatchedAccelerator(sim)
        completions = Summary("avx")

        def connection(sim=sim, accelerator=accelerator,
                       completions=completions):
            for _ in range(ops_per_conn):
                start = sim.now
                done = accelerator.submit()
                yield done
                completions.add(sim.now - start)
                # Steady stream: next handshake follows immediately.

        for _ in range(concurrency):
            sim.process(connection(), name="conn")
        sim.run()
        mean_ms = completions.mean * 1e3
        completion_series.add(concurrency, mean_ms)
        software_series.add(concurrency, software_cost * 1e3)
        if crossover is None and completions.mean <= software_cost:
            crossover = concurrency
    result.series.extend([completion_series, software_series])
    result.findings["crossover_connections"] = float(crossover or -1)
    result.findings["completion_at_1_ms"] = completion_series.ys[0]
    result.findings["completion_at_8_ms"] = completion_series.ys[7]
    result.notes.append(
        "paper: significant degradation below 8 concurrent connections "
        "(the AVX-512 batch width), caused by the >=1 ms flush wait")
    return result


# --------------------------------------------------------------------------
# Fig 26 — session consistency through a replica change
# --------------------------------------------------------------------------

def fig26_session_consistency(established_flows: int = 200,
                              new_flows: int = 200,
                              seed: int = 67) -> ExperimentResult:
    """Drain one replica: established flows keep landing on it via the
    replica chain; new flows land on accepting replicas only."""
    result = ExperimentResult(
        "fig26", "Session consistency maintenance with the redirector")
    sim = Simulator(seed)
    rng = random.Random(seed)
    replicas = [Replica(sim, f"ip{i + 1}", az="az1",
                        config=ReplicaConfig())
                for i in range(3)]
    lb = DisaggregatedLB(service_id=1, replicas=replicas)

    def flow(index: int) -> FiveTuple:
        return FiveTuple(f"10.1.{index // 250}.{index % 250 + 1}",
                         10_000 + index, "10.9.9.9", 443)

    old_flows = [flow(i) for i in range(established_flows)]
    owners_before = {}
    for f in old_flows:
        owners_before[f] = lb.deliver(f, is_syn=True).replica.name

    victim = "ip2"
    lb.drain_replica(victim)

    sticky = sum(1 for f in old_flows
                 if lb.deliver(f, is_syn=False).replica.name
                 == owners_before[f])
    fresh = [flow(10_000 + i) for i in range(new_flows)]
    new_on_victim = sum(1 for f in fresh
                        if lb.deliver(f, is_syn=True).replica.name == victim)
    # Old flows age out; the victim can then retire cleanly.
    for f in old_flows:
        lb.close_flow(f)
    lb.retire_replica(victim)

    table = Table("Replica-drain outcome",
                  ["metric", "value"])
    table.add_row("established flows keeping their replica",
                  sticky / established_flows)
    table.add_row("new flows landed on draining replica",
                  new_on_victim)
    table.add_row("max chain length after drain",
                  lb.table.max_chain_length())
    result.tables.append(table)
    result.findings["sticky_fraction"] = sticky / established_flows
    result.findings["new_flows_on_draining"] = float(new_on_victim)
    result.notes.append(
        "paper Fig 26: a draining replica keeps serving its established "
        "sessions via the bucket chain but receives no new sessions")
    return result


# --------------------------------------------------------------------------
# Figs 27/28 — throughput/latency improvement with the key server
# --------------------------------------------------------------------------

def fig27_28_offload_performance(seed: int = 71,
                                 duration_s: float = 3.0
                                 ) -> ExperimentResult:
    """HTTPS short flows through Canal's on-node proxy: crypto offloaded
    to the key server vs software on the node."""
    result = ExperimentResult(
        "fig27_28", "Throughput and latency with key-server offloading")
    throughput = {
        "software": Series("software_throughput", x_label="cores",
                           y_label="rps"),
        "remote": Series("remote_throughput", x_label="cores",
                         y_label="rps"),
    }
    for cores in (1, 2):
        for mode, kwargs in (
                ("software", {"crypto_offload": "software"}),
                ("remote", {"crypto_offload": "remote"})):
            run = build_testbed(
                "canal", seed=seed,
                mesh_kwargs=dict(onnode_cores_per_node=cores, **kwargs))
            # Offer load beyond capacity; the run extends until the
            # backlog drains, so completions / actual duration measures
            # the proxy's short-flow capacity.
            offered = 5000.0 * cores
            driver = ShortFlowDriver(run.sim, run.mesh, run.client_pod,
                                     "svc1", rps=offered,
                                     duration_s=duration_s)
            report = run.run_driver(driver)
            throughput[mode].add(cores, report.throughput_rps)
    result.series.extend(throughput.values())
    ratios = [r / s for (_c, r), (_d, s) in zip(
        throughput["remote"].points, throughput["software"].points)]
    result.findings["throughput_ratio_min"] = min(ratios)
    result.findings["throughput_ratio_max"] = max(ratios)

    # Fig 28: P90 latency at rising RPS under 1 core. The software
    # baseline saturates near ~530 flows/s, so the sweep approaches it
    # from below — the reduction grows with RPS, as in the paper.
    latency = {
        "software": Series("software_p90_ms", x_label="rps", y_label="ms"),
        "remote": Series("remote_p90_ms", x_label="rps", y_label="ms"),
    }
    reductions = []
    for rps in (250.0, 350.0, 450.0):
        p90 = {}
        for mode in ("software", "remote"):
            run = build_testbed(
                "canal", seed=seed,
                mesh_kwargs=dict(onnode_cores_per_node=1,
                                 crypto_offload=mode))
            driver = ShortFlowDriver(run.sim, run.mesh, run.client_pod,
                                     "svc1", rps=rps, duration_s=duration_s)
            report = run.run_driver(driver)
            p90[mode] = report.latency.percentile(90)
            latency[mode].add(rps, p90[mode] * 1e3)
        reductions.append(1 - p90["remote"] / p90["software"])
    result.series.extend(latency.values())
    result.findings["latency_reduction_min"] = min(reductions)
    result.findings["latency_reduction_max"] = max(reductions)
    result.notes.append(
        "paper: offloading improves short-flow throughput by 1.6-1.8x "
        "and cuts latency by 53-60%")
    return result


# --------------------------------------------------------------------------
# Figs 29/30 — eBPF vs iptables by packet size
# --------------------------------------------------------------------------

def fig29_30_ebpf_performance(sizes: Optional[List[int]] = None,
                              costs: KernelCosts = KernelCosts()
                              ) -> ExperimentResult:
    """Netperf-style model: throughput and latency of proxy redirection
    with eBPF vs iptables across packet sizes (both with Nagle on)."""
    result = ExperimentResult(
        "fig29_30", "eBPF vs iptables redirection by packet size")
    packet_sizes = sizes or [500, 1000, 1500, 4000, 16000]
    mss = 1460
    #: Shared per-message work outside redirection: the proxy's own
    #: socket handling and onward transmission.
    proxy_base_s = 95e-6
    #: One-way base path latency of the loopback ping-pong.
    wire_base_s = 60e-6

    iptables = IptablesRedirect(costs)
    ebpf = EbpfRedirect(costs)
    throughput_series = Series("throughput_ratio_ebpf_over_iptables",
                               x_label="bytes", y_label="ratio")
    latency_series = Series("latency_ratio_iptables_over_ebpf",
                            x_label="bytes", y_label="ratio")
    for size in packet_sizes:
        segments = max(1, -(-size // mss))
        base = proxy_base_s + segments * costs.stack_pass_s
        ipt_extra = (2 * segments * costs.stack_pass_s
                     + 2 * costs.context_switch_s + costs.socket_op_s
                     + costs.copy_cost(size))
        ebpf_extra = (costs.context_switch_s + costs.socket_op_s
                      + costs.copy_cost(size))
        # Throughput is CPU-bound: messages/s ∝ 1 / per-message CPU.
        ratio_throughput = (base + ipt_extra) / (base + ebpf_extra)
        throughput_series.add(size, ratio_throughput)
        if size <= mss:
            ratio_latency = ((wire_base_s + ipt_extra)
                             / (wire_base_s + ebpf_extra))
            latency_series.add(size, ratio_latency)
    result.series.extend([throughput_series, latency_series])
    result.findings["throughput_ratio_small"] = throughput_series.ys[0]
    result.findings["throughput_ratio_large"] = throughput_series.ys[-1]
    result.findings["latency_ratio_mean"] = (
        sum(latency_series.ys) / len(latency_series.ys))
    result.notes.append(
        "paper: eBPF improves throughput ~1.3x for small packets and "
        "~2x beyond 1500B; iptables latency is 1.5-1.8x eBPF's, with "
        "little size sensitivity")
    return result
