"""§6.2's production incidents plus §2.1's cross-region case, scripted.

* **Case #1 — lossy migration**: a session flood (attack signature:
  #TCP sessions surge without matching RPS) saturates a backend's
  SmartNIC session table; the response resets the attacker's sessions
  into a sandbox within seconds, neighbors untouched.
* **Case #2 — lossless migration**: traffic rises slowly for hours;
  auto-scaling keeps firing; the unusual scaling cadence flags the
  service, and after confirmation it moves losslessly (no session
  resets, ~20 min to drain).
* **Case #3 — hotspot throttling**: a social-media traffic spike
  overwhelms one platform's cluster; its stranded users pile onto the
  others (the cross-platform query of death). Gateway throttling keeps
  partial availability on the hot platform and stops the cascade.
* **Cross-region VPN**: a controller on the cloud manages an on-prem
  cluster over a purchased VPN; at cluster scale, config pushes exceed
  100 Mbps and updates queue up — the 1 Gbps upgrade restores timely
  delivery (§2.1's customer incident).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..core import (
    AnomalySignals,
    GatewayMonitor,
    RapidResponder,
    SandboxManager,
    ScalingEngine,
    ScalingTimings,
)
from ..k8s import Cluster
from ..mesh import IstioControlPlane
from ..netsim import Link, Topology
from ..simcore import Simulator, percentile
from ..workloads import attack_trace
from .base import ExperimentResult, Series, Table
from .cloud_ops import build_production_gateway

__all__ = [
    "case1_lossy_migration",
    "case2_lossless_migration",
    "case3_hotspot_throttling",
    "case_cross_region_vpn",
    "case_phase_migration",
    "CASES_EXPERIMENTS",
]


# --------------------------------------------------------------------------
# Case #1 — attack → lossy migration
# --------------------------------------------------------------------------

def case1_lossy_migration(seed: int = 101, duration_s: int = 120,
                          attack_start_s: int = 40) -> ExperimentResult:
    result = ExperimentResult(
        "case1", "Lossy sandbox migration under a session flood")
    sim = Simulator(seed)
    gateway, services = build_production_gateway(sim, backends_per_az=8)
    rng = random.Random(seed)
    for service in services:
        gateway.set_service_load(service.service_id, 25_000.0)
    victim = services[1]  # HTTP service
    victim_backends = gateway.service_backends[victim.service_id]
    # Baseline sessions sized so the attack saturates ~85 % of each
    # backend's tables (2 replicas × capacity per backend, 4 backends).
    capacity = victim_backends[0].replicas[0].config.session_capacity
    per_backend_capacity = 2 * capacity
    base_sessions = int(0.14 * per_backend_capacity
                        * len(victim_backends))
    rps_trace, session_trace = attack_trace(
        rng, base_rps=25_000.0, base_sessions=float(base_sessions),
        duration_s=duration_s, attack_start_s=attack_start_s,
        session_multiplier=6.0)

    monitor = GatewayMonitor(sim, gateway, interval_s=1.0)
    scaling = ScalingEngine(sim, gateway, timings=ScalingTimings())
    sandbox = SandboxManager(sim, gateway)

    def trace_signals(service_id: int) -> AnomalySignals:
        """Genuine trace-derived growth ratios over the last 30 s."""
        second = min(int(sim.now), duration_s - 1)
        lookback = max(0, second - 30)
        rps_growth = rps_trace[second] / max(1.0, rps_trace[lookback])
        session_growth = (session_trace[second]
                          / max(1.0, session_trace[lookback]))
        return AnomalySignals(rps_growth=rps_growth,
                              session_growth=session_growth,
                              water_growth=1.1)

    responder = RapidResponder(sim, gateway, monitor, scaling, sandbox,
                               signal_provider=trace_signals)
    monitor.start()

    session_series = Series("backend_session_utilization",
                            x_label="seconds", y_label="fraction")

    def drive():
        for second in range(duration_s):
            gateway.set_service_load(victim.service_id, rps_trace[second])
            gateway.set_service_sessions(victim.service_id,
                                         int(session_trace[second]))
            session_series.add(second,
                               victim_backends[0].session_utilization())
            yield sim.timeout(1.0)

    sim.process(drive())
    sim.run(until=duration_s + 1)

    result.series.append(session_series)
    lossy = [r for r in sandbox.records if r.mode == "lossy"]
    result.findings["lossy_migrations"] = float(len(lossy))
    result.findings["classified_ddos"] = float(sum(
        1 for r in responder.responses if r.classification == "ddos"))
    if lossy:
        result.findings["migration_duration_s"] = lossy[0].duration_s
        result.findings["sessions_reset"] = float(lossy[0].sessions_reset)
    peers_ok = all(not gateway.service_outage(s.service_id)
                   for s in services if s is not victim)
    result.findings["peers_unaffected"] = float(peers_ok)
    result.notes.append(
        "paper Case #1: sessions surged to 80% without matching RPS; "
        "analysis showed an attack; lossy migration reset the sessions "
        "into a sandbox within seconds")
    return result


# --------------------------------------------------------------------------
# Case #2 — slow abnormal growth → lossless migration
# --------------------------------------------------------------------------

def case2_lossless_migration(seed: int = 103,
                             hours: float = 3.0) -> ExperimentResult:
    result = ExperimentResult(
        "case2", "Lossless migration after unusual auto-scaling cadence")
    sim = Simulator(seed)
    gateway, services = build_production_gateway(sim, backends_per_az=12)
    for service in services:
        gateway.set_service_load(service.service_id, 25_000.0)
    suspect = services[1]
    monitor = GatewayMonitor(sim, gateway, interval_s=10.0)
    scaling = ScalingEngine(sim, gateway, timings=ScalingTimings(
        reuse_median_s=25.0, settle_median_s=10.0), target_water=0.55)
    sandbox = SandboxManager(sim, gateway)
    responder = RapidResponder(
        sim, gateway, monitor, scaling, sandbox,
        signal_provider=lambda sid: AnomalySignals(
            rps_growth=1.4, session_growth=1.5, water_growth=1.3))
    monitor.start()

    scaling_times: List[float] = []
    migrated = []

    def cadence_watchdog():
        """Flag a service whose scaling fires unusually often (>3 ops
        in an hour differs from its history), then — after the user
        self-check confirms — migrate losslessly."""
        while True:
            yield sim.timeout(60.0)
            recent = [e for e in scaling.events
                      if e.service_id == suspect.service_id
                      and e.executed_at > sim.now - 3600.0]
            # This service historically never scales; two operations
            # inside an hour is already out of pattern.
            if len(recent) >= 2 and not migrated:
                migrated.append(sim.now)
                yield sim.timeout(120.0)  # confirm with the customer
                yield sim.process(
                    sandbox.migrate_lossless(suspect.service_id))
                return

    def slow_growth():
        # "User traffic slowly increased over hours" — but far enough
        # to keep exhausting the service's backends, so the purchased
        # auto-scaling fires again and again.
        seconds = int(hours * 3600)
        for tick in range(0, seconds, 60):
            growth = 1.0 + 21.0 * (tick / seconds)
            gateway.set_service_load(suspect.service_id, 25_000.0 * growth)
            yield sim.timeout(60.0)

    sim.process(slow_growth())
    sim.process(cadence_watchdog())
    sim.run(until=hours * 3600 + 1800)

    lossless = [r for r in sandbox.records if r.mode == "lossless"]
    result.findings["scaling_events"] = float(len(
        [e for e in scaling.events
         if e.service_id == suspect.service_id]))
    result.findings["lossless_migrations"] = float(len(lossless))
    if lossless:
        result.findings["sessions_reset"] = float(lossless[0].sessions_reset)
        result.findings["migration_duration_min"] = (
            lossless[0].duration_s / 60.0)
    result.notes.append(
        "paper Case #2: hours of slow growth kept auto-scaling busy; "
        "the unusual cadence prompted a check, the user found an "
        "attack, and a lossless migration (existing sessions keep "
        "serving; median ~20 min) moved the service")
    return result


# --------------------------------------------------------------------------
# Case #3 — hotspot event, cross-platform cascade, throttling
# --------------------------------------------------------------------------

def _run_hotspot(throttle: bool, seed: int = 107,
                 duration_min: int = 60) -> Dict[str, object]:
    """Three social platforms; a hotspot multiplies platform A's demand.

    Users who cannot load content migrate to the other platforms, which
    is how one platform's outage becomes everyone's (§6.2's observed
    phenomenon). Platform clusters auto-scale, but slowly.
    """
    rng = random.Random(seed)
    platforms = ["A", "B", "C"]
    capacity = {p: 120_000.0 for p in platforms}      # app cluster RPS
    demand = {p: 80_000.0 for p in platforms}
    scaling_rate = 1.02                               # capacity/min growth
    overload_kill = 1.25   # demand beyond this × capacity = query of death
    down: Dict[str, bool] = {p: False for p in platforms}
    served_series = {p: [] for p in platforms}
    quota = {p: None for p in platforms}

    for minute in range(duration_min):
        # Hotspot: platform A's demand quadruples over 10 minutes.
        hot_demand = dict(demand)
        if minute >= 5:
            ramp = min(1.0, (minute - 5) / 10.0)
            hot_demand["A"] = demand["A"] * (1 + 3.0 * ramp)
        # Users on dead platforms try the survivors.
        stranded = sum(hot_demand[p] for p in platforms if down[p])
        survivors = [p for p in platforms if not down[p]]
        for p in survivors:
            hot_demand[p] += stranded * 0.8 / max(1, len(survivors))
        for p in platforms:
            if down[p]:
                served_series[p].append(0.0)
                continue
            offered = hot_demand[p]
            if throttle and p == "A" and minute >= 7:
                # Gateway-side early drop at the current capacity, then
                # gradual relaxation as the platform scales.
                quota[p] = capacity[p] * 0.95
                offered = min(offered, quota[p])
            if offered > capacity[p] * overload_kill:
                down[p] = True          # query of death: global outage
                served_series[p].append(0.0)
                continue
            served_series[p].append(min(offered, capacity[p]))
            # Platform auto-scaling (bounded speed, §6.2: "elasticity is
            # limited by resource creation speed").
            if offered > capacity[p] * 0.9:
                capacity[p] *= scaling_rate
    return {
        "down": down,
        "served": served_series,
        "final_capacity_A": capacity["A"],
    }


def case3_hotspot_throttling(seed: int = 107) -> ExperimentResult:
    result = ExperimentResult(
        "case3", "Hotspot event: throttling prevents the cross-platform "
                 "cascade")
    without = _run_hotspot(throttle=False, seed=seed)
    with_throttle = _run_hotspot(throttle=True, seed=seed)

    table = Table("Hotspot outcome by strategy",
                  ["strategy", "platforms_down", "A_served_pct_of_demand"])
    for label, run in (("no throttling", without),
                       ("gateway throttling", with_throttle)):
        downs = sum(run["down"].values())
        served_a = sum(run["served"]["A"])
        demand_a = 80_000.0 * len(run["served"]["A"]) * 2.0  # rough mean
        table.add_row(label, downs, served_a / demand_a)
    result.tables.append(table)
    result.findings["platforms_down_without"] = float(
        sum(without["down"].values()))
    result.findings["platforms_down_with"] = float(
        sum(with_throttle["down"].values()))
    result.findings["a_survives_with_throttle"] = float(
        not with_throttle["down"]["A"])
    result.notes.append(
        "paper Case #3: without throttling, request pile-up kills the "
        "hot platform and its users' migration kills the rest; "
        "throttling serves a portion of users and buys scaling time "
        "for every platform")
    return result


# --------------------------------------------------------------------------
# §2.1 — cross-region VPN saturation
# --------------------------------------------------------------------------

def case_cross_region_vpn(pods: int = 1000, updates: int = 12,
                          update_interval_s: float = 10.0,
                          seed: int = 109) -> ExperimentResult:
    """Config updates from a cloud controller to an on-prem cluster.

    At ~1000 pods, one full Istio push is tens of MB; at the real
    update cadence the 100 Mbps VPN cannot drain the queue, so update
    delays grow without bound. The customer's fix — 1 Gbps — keeps
    delivery timely.
    """
    result = ExperimentResult(
        "case_vpn", "Cross-region VPN saturation by config updates")
    table = Table("Update completion delay by VPN bandwidth",
                  ["vpn_mbps", "p50_completion_s", "max_completion_s",
                   "update_bytes_mb"])
    delays_by_bw = {}
    for mbps in (100, 1000):
        sim = Simulator(seed)
        topology = Topology.multi_az_region(
            azs=1, nodes_per_az=max(2, pods // 15))
        cluster = Cluster("onprem", topology.all_nodes(),
                          node_cpu_millicores=10_000_000,
                          node_memory_mb=10_000_000)
        services = max(1, pods // 2)
        per_service = max(1, pods // services)
        for index in range(services):
            cluster.create_deployment(f"s{index}", replicas=per_service,
                                      labels={"app": f"s{index}"})
            cluster.create_service(f"s{index}",
                                   selector={"app": f"s{index}"})
        vpn = Link(sim, bandwidth_bps=mbps * 1e6, latency_s=30e-3,
                   name=f"vpn-{mbps}mbps")
        # An I/O-bound controller (ample build capacity, fast ACK loop):
        # the VPN is the only contended resource, as in the incident.
        from ..mesh import ControlPlaneCosts
        io_costs = ControlPlaneCosts(build_cpu_per_byte_s=1e-8,
                                     distribution_ack_s=1e-3)
        plane = IstioControlPlane(sim, cluster, southbound=vpn,
                                  controller_cores=64, costs=io_costs)
        completions: List[float] = []

        def updates_process():
            pushes = []
            for _ in range(updates):
                pushes.append(sim.process(plane.push_update()))
                yield sim.timeout(update_interval_s)
            for push in pushes:
                yield push
                completions.append(push.value.completion_s)

        sim.process(updates_process())
        sim.run()
        delays_by_bw[mbps] = completions
        table.add_row(mbps, percentile(completions, 50),
                      max(completions),
                      plane.bytes_pushed_total / updates / 1e6)
    result.tables.append(table)
    result.findings["p50_delay_100mbps"] = percentile(
        delays_by_bw[100], 50)
    result.findings["p50_delay_1gbps"] = percentile(
        delays_by_bw[1000], 50)
    result.findings["delay_ratio"] = (
        result.findings["p50_delay_100mbps"]
        / result.findings["p50_delay_1gbps"])
    result.findings["queue_growth_100mbps"] = (
        max(delays_by_bw[100]) / delays_by_bw[100][0])
    result.notes.append(
        "paper: peak update traffic hit 120 Mbps against a 100 Mbps "
        "VPN, risking delays/losses; the customer upgraded to 1 Gbps")
    return result


# --------------------------------------------------------------------------
# §6.3 — traffic migration for in-phase services
# --------------------------------------------------------------------------

def case_phase_migration(seed: int = 127) -> ExperimentResult:
    """The full §6.3 loop: detect phase-locked services sharing a
    backend, pick movers (RPS-weighted, long-session-penalized), pick
    complementary same-AZ targets via the HWHM G/G′ sampling, migrate —
    and show the backend's daily peak water level drop."""
    from ..core import PhaseMonitor
    from ..workloads import diurnal_profile

    result = ExperimentResult(
        "case_phase", "Scattering in-phase services (§6.3)")
    sim = Simulator(seed)
    gateway, services = build_production_gateway(
        sim, backends_per_az=8, services=10)
    rng = random.Random(seed)

    hot = max(gateway.all_backends,
              key=lambda b: len(b.configured_services))
    co_located = sorted(hot.configured_services)
    in_phase_group = co_located[:3]

    monitor = PhaseMonitor(gateway, top_services=len(co_located))
    profiles = {}
    for index, service in enumerate(services):
        sid = service.service_id
        if sid in in_phase_group:
            position = 0.5            # phase-locked at the same peak
        else:
            position = (index % 5) * 0.17
        profiles[sid] = diurnal_profile(rng, 15_000.0, 70_000.0,
                                        peak_position=position)
        monitor.service_profiles[sid] = profiles[sid]

    def daily_peak(backend) -> float:
        peak = 0.0
        n = len(next(iter(profiles.values())).samples)
        for i in range(n):
            for sid, profile in profiles.items():
                gateway.set_service_load(sid, profile.samples[i])
            peak = max(peak, backend.water_level())
        return peak

    peak_before = daily_peak(hot)
    # Backend profiles for target selection: each candidate's daily RPS.
    n = len(next(iter(profiles.values())).samples)
    from ..core.phase import DailyProfile
    for backend in gateway.all_backends:
        samples = []
        for i in range(n):
            total = 0.0
            for sid, profile in profiles.items():
                if backend.hosts_service(sid):
                    carriers = len(gateway.service_backends[sid])
                    total += profile.samples[i] / max(1, carriers)
            samples.append(total)
        monitor.backend_profiles[backend.name] = DailyProfile(
            tuple(samples))
    # Make the group visible as "top services" on the hot backend.
    for sid, profile in profiles.items():
        gateway.set_service_load(sid, profile.samples[profiles[
            in_phase_group[0]].peak_index])

    groups = monitor.in_phase_groups(hot)
    plans = monitor.plan_for_backend(hot)
    for plan in plans:
        monitor.execute(plan)
    peak_after = daily_peak(hot)

    result.findings["in_phase_groups"] = float(len(groups))
    result.findings["migrations_executed"] = float(len(plans))
    result.findings["peak_water_before"] = peak_before
    result.findings["peak_water_after"] = peak_after
    result.findings["peak_reduction"] = 1 - peak_after / peak_before
    result.notes.append(
        "paper §6.3: in-phase services on one backend risk sudden CPU "
        "surges; scattering them to complementary backends flattens the "
        "daily peak")
    return result


CASES_EXPERIMENTS = {
    "case1": case1_lossy_migration,
    "case2": case2_lossless_migration,
    "case3": case3_hotspot_throttling,
    "case_vpn": case_cross_region_vpn,
    "case_phase": case_phase_migration,
}
