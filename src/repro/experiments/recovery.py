"""§4.2 / Fig 8 chaos exhibit: the failure-recovery hierarchy under a
deterministic fault plan.

``fig8_recovery`` arms a :class:`~repro.faults.FaultPlan` over the
production gateway and samples per-service availability every virtual
second while the :class:`~repro.faults.InvariantAuditor` re-checks
conservation after each injection and recovery. The default plan walks
the paper's hierarchy bottom-up:

1. a replica crash — the victim service stays up on the backend's
   surviving replica;
2. a whole-backend crash — the victim stays up on its other
   shuffle-shard backends;
3. an AZ crash — every service stays up via cross-AZ DNS;
4. a query-of-death cascade — only the poisoned service goes dark,
   shuffle-sharding contains the blast radius;
5. a cert-rotation failure — in-flight certs stop verifying until the
   CA reissues.

The plan compiles onto the simulator agenda, so the whole exhibit is a
pure function of (plan, seed): output is byte-identical at any
``--jobs`` level (the chaos-smoke CI job diffs exactly that). An
ambient plan installed via :func:`repro.faults.use_fault_plan` (e.g.
from a serve job's ``faults`` field) replaces the default schedule.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from ..crypto import CertificateAuthority
from ..faults import Fault, FaultEngine, FaultPlan, get_fault_plan
from ..k8s import Cluster
from ..kernel.redirection import EbpfRedirect
from ..mesh import IstioControlPlane
from ..netsim import Topology
from ..runtime.sweep import sweep_map
from ..simcore import Simulator
from .base import ExperimentResult, Series, Table
from .cloud_ops import build_production_gateway

__all__ = ["fig8_plan", "fig8_recovery"]

#: Virtual seconds of slack sampled after the last recovery.
_TAIL_S = 10.0

#: The sampled SPIFFE identity for the cert-rotation fault.
_SPIFFE_ID = "spiffe://tenant1/svc1"


def fig8_plan() -> FaultPlan:
    """The default Fig 8 schedule, one fault class per window.

    Targets are symbolic (``service:i/backend:j/replica:k``), so the
    plan names the same *roles* under every seed even though
    shuffle-sharding assigns different concrete backends.
    """
    return FaultPlan.of(
        Fault(kind="replica_crash", at=10.0,
              target="service:0/backend:0/replica:0", duration_s=15.0),
        Fault(kind="backend_crash", at=40.0,
              target="service:1/backend:0", duration_s=20.0),
        Fault(kind="az_crash", at=80.0, target="az1", duration_s=30.0),
        Fault(kind="query_of_death", at=130.0, target="service:2",
              duration_s=20.0),
        Fault(kind="cert_rotation_failure", at=170.0, duration_s=15.0),
    )


def _fig8_seed_run(spec: Tuple[int, str]) -> Dict[str, object]:
    """One chaos run at one seed → plain picklable samples.

    The plan travels as its canonical JSON string (not an ambient
    global), so pooled sweep workers see exactly the plan the parent
    resolved.
    """
    seed, plan_json = spec
    plan = FaultPlan.from_json(json.loads(plan_json))
    sim = Simulator(seed)
    gateway, services = build_production_gateway(
        sim, backends_per_az=6, services=6)
    for service in services:
        gateway.set_service_sessions(service.service_id, 12_000)
        gateway.set_service_load(service.service_id, 20_000.0)
    ca = CertificateAuthority("fig8-ca")
    cert = ca.issue(_SPIFFE_ID, "tenant1", not_after=1e9)
    topo = Topology.single_az_testbed(worker_nodes=2)
    cluster = Cluster("fig8", topo.all_nodes())
    cluster.create_deployment("svc0", replicas=4, labels={"app": "svc0"})
    cluster.create_service("svc0", selector={"app": "svc0"})
    controlplane = IstioControlPlane(sim, cluster)
    engine = FaultEngine(sim, gateway=gateway, controlplane=controlplane,
                         ca=ca, redirector=EbpfRedirect())
    engine.arm(plan)

    service_ids = sorted(gateway.service_backends)
    horizon = int(plan.horizon() + _TAIL_S)
    availability: List[float] = []
    up_bits: Dict[int, List[int]] = {sid: [] for sid in service_ids}
    cert_ok: List[int] = []

    def sample():
        for _second in range(horizon + 1):
            up_count = 0
            for sid in service_ids:
                up = 0 if gateway.service_outage(sid) else 1
                up_bits[sid].append(up)
                up_count += up
            availability.append(up_count / len(service_ids))
            current = ca.issued_for(_SPIFFE_ID) or cert
            cert_ok.append(1 if ca.verify(current, now=sim.now) else 0)
            yield sim.timeout(1.0)

    sim.process(sample(), name="sampler")
    sim.run(until=horizon + 1.5)

    auditor = engine.auditor
    return {
        "availability": availability,
        "up_bits": up_bits,
        "cert_ok": cert_ok,
        "timeline": list(engine.timeline),
        "checks": auditor.checks_run,
        "violations": len(auditor.violations),
        "disrupted": engine.injector.disrupted_by_scope(),
        "victims": {
            "replica": service_ids[0],
            "backend": service_ids[1],
            "qod": service_ids[2],
        },
    }


def _window(run: Dict[str, object], plan: FaultPlan, kind: str,
            sid: Optional[int] = None) -> List[int]:
    """Up-bits strictly inside ``kind``'s fault window.

    ``sid=None`` pools every service's bits (for the AZ window, where
    the claim is fleet-wide).
    """
    fault = next(f for f in plan.sim_faults() if f.kind == kind)
    lo, hi = fault.at, fault.at + (fault.duration_s or 0.0)
    up_bits: Dict[int, List[int]] = run["up_bits"]
    targets = [sid] if sid is not None else sorted(up_bits)
    return [bits[second]
            for target in targets
            for bits in [up_bits[target]]
            for second in range(len(bits))
            if lo < second < hi]


def fig8_recovery(seed: int = 53,
                  seeds: Optional[List[int]] = None,
                  plan: Optional[FaultPlan] = None) -> ExperimentResult:
    """Availability through the recovery hierarchy under a fault plan.

    ``plan`` (or the ambient :func:`~repro.faults.get_fault_plan`)
    replaces the default schedule; hierarchy findings are only computed
    for the default plan, whose windows they describe.
    """
    result = ExperimentResult(
        "fig8_recovery", "Recovery hierarchy under a deterministic "
                         "fault plan")
    ambient = get_fault_plan()
    custom = plan if plan is not None else ambient
    active_plan = custom if custom is not None else fig8_plan()
    plan_json = active_plan.canonical()
    seed_grid = list(seeds) if seeds else [seed, seed + 1, seed + 2]
    runs = sweep_map(_fig8_seed_run,
                     [(one_seed, plan_json) for one_seed in seed_grid])

    first = runs[0]
    availability = Series("availability_fraction", x_label="seconds",
                          y_label="services up / total")
    for second, fraction in enumerate(first["availability"]):
        availability.add(second, fraction)
    cert_series = Series("cert_verifies", x_label="seconds",
                         y_label="0/1")
    for second, ok in enumerate(first["cert_ok"]):
        cert_series.add(second, ok)
    result.series.extend([availability, cert_series])

    timeline_table = Table(f"Fault timeline (seed {seed_grid[0]})",
                           ["t", "action", "kind", "target", "detail"])
    for entry in first["timeline"]:
        timeline_table.add_row(entry["t"], entry["action"], entry["kind"],
                               entry["target"], entry["detail"])
    result.tables.append(timeline_table)

    result.findings["seeds_run"] = float(len(runs))
    result.findings["faults_per_run"] = float(len(first["timeline"]))
    result.findings["invariant_checks"] = float(
        sum(run["checks"] for run in runs))
    result.findings["invariant_violations"] = float(
        sum(run["violations"] for run in runs))
    result.findings["min_availability"] = min(
        min(run["availability"]) for run in runs)
    for scope in ("replica", "backend", "az"):
        result.findings[f"sessions_disrupted_{scope}"] = float(
            sum(run["disrupted"].get(scope, 0) for run in runs))

    if custom is None:
        # Hierarchy claims, each the min over every seed (a single
        # counter-example run falsifies the claim).
        result.findings["replica_fault_victim_up"] = float(min(
            min(_window(run, active_plan, "replica_crash",
                        run["victims"]["replica"])) for run in runs))
        result.findings["backend_fault_victim_up"] = float(min(
            min(_window(run, active_plan, "backend_crash",
                        run["victims"]["backend"])) for run in runs))
        result.findings["az_fault_all_up"] = float(min(
            min(_window(run, active_plan, "az_crash")) for run in runs))
        result.findings["qod_victim_up"] = float(max(
            max(_window(run, active_plan, "query_of_death",
                        run["victims"]["qod"])) for run in runs))
        result.findings["qod_peers_up"] = float(min(
            min(bit for sid, bits in run["up_bits"].items()
                if sid != run["victims"]["qod"]
                for bit in _window(run, active_plan, "query_of_death", sid))
            for run in runs))
        result.findings["cert_rejected_during_fault"] = float(min(
            1 - min(_window_series(run, active_plan,
                                   "cert_rotation_failure"))
            for run in runs))
        result.findings["cert_ok_after_recovery"] = float(min(
            run["cert_ok"][-1] for run in runs))
        result.notes.append(
            "paper Fig 8: replica failure disrupts only its own sessions; "
            "backend failure survives via shuffle-shard siblings; AZ "
            "failure survives via cross-AZ DNS; a query-of-death takes "
            "down only the poisoned service")
    else:
        result.notes.append("custom fault plan supplied; hierarchy "
                            "findings skipped")
    result.notes.append(
        f"invariant auditor: {int(result.findings['invariant_checks'])} "
        f"checks, {int(result.findings['invariant_violations'])} "
        f"violations across {len(runs)} seeds")
    return result


def _window_series(run: Dict[str, object], plan: FaultPlan,
                   kind: str) -> List[int]:
    """``cert_ok`` samples strictly inside ``kind``'s fault window."""
    fault = next(f for f in plan.sim_faults() if f.kind == kind)
    lo, hi = fault.at, fault.at + (fault.duration_s or 0.0)
    samples: List[int] = run["cert_ok"]
    return [value for second, value in enumerate(samples) if lo < second < hi]
