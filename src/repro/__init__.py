"""Canal Mesh reproduction (SIGCOMM 2024).

A discrete-event-simulation reproduction of "Canal Mesh: A Cloud-Scale
Sidecar-Free Multi-Tenant Service Mesh Architecture". Subpackages:

* ``repro.simcore`` — the DES engine;
* ``repro.netsim`` — topology, packets, ECMP, vSwitch, DNS;
* ``repro.kernel`` — iptables/eBPF/Nagle dataplane cost models;
* ``repro.crypto`` — mTLS, certificates, crypto accelerators;
* ``repro.k8s`` — the Kubernetes-like cluster substrate;
* ``repro.mesh`` — the shared mesh layer and Istio/Ambient baselines;
* ``repro.core`` — Canal itself (gateway, key server, control loops);
* ``repro.workloads`` — load drivers and synthetic traces;
* ``repro.experiments`` — one experiment per paper table/figure.
"""

from .core import CanalMesh, MeshGateway
from .k8s import Cluster
from .mesh import AmbientMesh, IstioMesh, ServiceMesh
from .simcore import Simulator

__version__ = "1.0.0"

__all__ = [
    "AmbientMesh",
    "CanalMesh",
    "Cluster",
    "IstioMesh",
    "MeshGateway",
    "ServiceMesh",
    "Simulator",
    "__version__",
]
