#!/usr/bin/env python
"""Failure drill: hierarchical recovery + shuffle-shard isolation +
Beamer-style session consistency (Fig 8, Fig 26, §4.2/§4.4).

Walks the gateway through the three failure levels — replica, backend,
whole AZ — then a full "query of death" against one service, and ends
with a replica-drain showing the redirector keeping established
sessions pinned while steering new ones away.

Run:  python examples/failure_drill.py
"""

from repro.core import (
    DisaggregatedLB,
    FailureInjector,
    Replica,
    availability_report,
)
from repro.core.replica import ReplicaConfig
from repro.experiments.cloud_ops import build_production_gateway
from repro.netsim import FiveTuple
from repro.simcore import Simulator


def summarize(gateway, label):
    report = availability_report(gateway)
    down = [sid for sid, up in report.items() if not up]
    print(f"  [{label}] services up: {sum(report.values())}/{len(report)}"
          + (f"  DOWN: {down}" if down else ""))


def hierarchy_drill() -> None:
    print("=== hierarchical failure recovery (Fig 8) ===")
    sim = Simulator(seed=43)
    gateway, services = build_production_gateway(
        sim, azs=3, backends_per_az=6, services=10)
    for service in services:
        gateway.set_service_load(service.service_id, 20_000.0)
    injector = FailureInjector(sim, gateway)
    victim_service = services[0]
    victim_backends = gateway.service_backends[victim_service.service_id]
    print(f"service under test: {victim_service.qualified_name} on "
          f"{[b.name for b in victim_backends]}")

    replica = victim_backends[0].replicas[0]
    replica.add_sessions(5_000)
    event = injector.fail_replica(victim_backends[0].name, replica.name)
    print(f"\nlevel 1 — replica {replica.name} fails "
          f"({event.sessions_disrupted} sessions briefly disrupted, "
          f"re-established on siblings)")
    summarize(gateway, "replica down")

    injector.fail_backend(victim_backends[0].name)
    print(f"\nlevel 2 — backend {victim_backends[0].name} fails entirely")
    summarize(gateway, "backend down")

    injector.fail_az("az1")
    print("\nlevel 3 — all of az1 goes dark (power outage)")
    summarize(gateway, "az1 down")
    record = gateway.dns.resolve(
        f"svc-{victim_service.service_id}.mesh.gateway", client_az="az1")
    print(f"  DNS for an az1 client now resolves to: {record.az}")
    injector.recover_az("az1")
    injector.recover_backend(victim_backends[0].name)

    print("\nquery of death — every backend of the victim service dies:")
    injector.query_of_death(victim_service.service_id)
    summarize(gateway, "query of death")
    report = availability_report(gateway)
    survivors = sum(1 for sid, up in report.items()
                    if up and sid != victim_service.service_id)
    print(f"  shuffle sharding kept {survivors} of {len(report) - 1} "
          f"other services fully available")


def drain_drill() -> None:
    print("\n=== redirector session consistency (Fig 26) ===")
    sim = Simulator(seed=67)
    replicas = [Replica(sim, f"ip{i + 1}", "az1", ReplicaConfig())
                for i in range(3)]
    lb = DisaggregatedLB(service_id=1, replicas=replicas)

    flows = [FiveTuple(f"10.1.0.{i + 1}", 40_000 + i, "10.9.9.9", 443)
             for i in range(60)]
    owners = {f: lb.deliver(f, is_syn=True).replica.name for f in flows}
    on_ip2 = [f for f, owner in owners.items() if owner == "ip2"]
    print(f"established 60 flows; {len(on_ip2)} landed on ip2")

    lb.drain_replica("ip2")
    print("draining ip2: router stops hashing to it; bucket chains "
          "prepended with replacements")
    sticky = sum(1 for f in flows
                 if lb.deliver(f, is_syn=False).replica.name == owners[f])
    hops = [lb.deliver(f, is_syn=False).redirection_hops for f in on_ip2]
    print(f"  established flows still reaching their replica: {sticky}/60")
    print(f"  chained deliveries to ip2 take "
          f"{max(hops) if hops else 0} redirection hop(s)")

    fresh = [FiveTuple(f"10.2.0.{i + 1}", 50_000 + i, "10.9.9.9", 443)
             for i in range(40)]
    landed_ip2 = sum(1 for f in fresh
                     if lb.deliver(f, is_syn=True).replica.name == "ip2")
    print(f"  new flows landed on draining ip2: {landed_ip2} (expected 0)")

    for f in flows + fresh:
        lb.close_flow(f)
    lb.retire_replica("ip2")
    print("  all flows aged out → ip2 retired cleanly; replicas now: "
          f"{lb.replica_names()}")


def main() -> None:
    hierarchy_drill()
    drain_drill()


if __name__ == "__main__":
    main()
