#!/usr/bin/env python
"""Serve quickstart: the harness as a service, end to end.

Boots ``python -m repro.serve`` as a subprocess on an ephemeral port,
then drives the full client-side story:

1. submit an exhibit job over HTTP and stream its SSE progress events;
2. poll it to completion and print the headline findings;
3. resubmit the same spec and watch the result-cache fast path answer
   it instantly (``cache_hit`` straight in the POST response);
4. scrape ``/metrics`` (Prometheus text from ``repro.obs``);
5. send SIGTERM and verify the server drains gracefully and exits 0.

This is also CI's ``serve-smoke`` scenario — the script exits non-zero
if any step misbehaves.

Run:  python examples/serve_quickstart.py [exhibit_id]
"""

import os
import signal
import subprocess
import sys
import tempfile
import time

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")
sys.path.insert(0, REPO_SRC)

from repro.serve.client import ServeClient  # noqa: E402


def wait_for_port(port_file: str, process: subprocess.Popen,
                  timeout_s: float = 60.0) -> int:
    # simlint: ignore[DET001] subprocess boot wait, not simulation time
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:  # simlint: ignore[DET001] boot wait
        if os.path.exists(port_file):
            with open(port_file) as handle:
                text = handle.read().strip()
            if text:
                return int(text)
        if process.poll() is not None:
            raise RuntimeError(
                f"server exited early with code {process.returncode}")
        time.sleep(0.1)
    raise RuntimeError("server never wrote its port file")


def main() -> int:
    exhibit = sys.argv[1] if len(sys.argv) > 1 else "fig17"
    workdir = os.environ.get("SERVE_QUICKSTART_WORKDIR")  # CI uploads it
    if workdir:
        os.makedirs(workdir, exist_ok=True)
    else:
        workdir = tempfile.mkdtemp(prefix="serve-quickstart-")
    port_file = os.path.join(workdir, "port")
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--port", "0",
         "--port-file", port_file, "--workers", "2",
         "--cache-dir", os.path.join(workdir, "cache"),
         "--artifacts-dir", os.path.join(workdir, "artifacts")],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=env,
        text=True)
    try:
        port = wait_for_port(port_file, server)
        client = ServeClient("127.0.0.1", port)
        print(f"server up on port {port}; health: {client.health()}")

        print(f"\n-- submitting {exhibit} and streaming events " + "-" * 20)
        job = client.submit({"kind": "exhibit", "exhibit": exhibit,
                             "report": True})
        print(f"accepted as {job['id']} (state={job['state']})")
        for event in client.events(job["id"]):
            print(f"  [{event['name']}] {event['data']}")
        done = client.wait(job["id"], timeout=300)
        assert done["state"] == "done", f"job failed: {done['error']}"
        for run in done["result"]:
            print(f"finished {run['exp_id']} in {run['elapsed_s']:.2f}s; "
                  f"findings: {run['findings']}")
        report_path = done["artifacts"][f"{exhibit}.report"]
        report = client.artifact(report_path)
        assert report, "report artifact came back empty"
        print(f"artifacts: {sorted(done['artifacts'])} "
              f"({report_path}: {len(report)} bytes)")

        print("\n-- resubmitting: cache fast path " + "-" * 28)
        again = client.submit({"kind": "exhibit", "exhibit": exhibit})
        assert again["cache_hit"], "expected a cache-hit fast path"
        print(f"{again['id']} answered from cache at admission "
              f"(state={again['state']}, attempts={again['attempts']})")

        print("\n-- /metrics " + "-" * 49)
        metrics = client.metrics()
        for needle in ("serve_queue_depth", "serve_jobs_running",
                       "serve_jobs_total", "serve_job_wall_seconds"):
            assert needle in metrics, f"missing {needle} in /metrics"
        wanted = ("serve_queue_depth", "serve_jobs_total",
                  "serve_jobs_running")
        for line in metrics.splitlines():
            if line.startswith(wanted):
                print(f"  {line}")

        print("\n-- SIGTERM: graceful drain " + "-" * 34)
        server.send_signal(signal.SIGTERM)
        output, _ = server.communicate(timeout=120)
        assert server.returncode == 0, \
            f"server exited {server.returncode}, expected 0"
        assert "drain complete" in output, "no drain-complete line"
        print(output.strip())
        print("\nclean drain, exit 0 — all good")
        return 0
    finally:
        if server.poll() is None:
            server.kill()
            server.communicate(timeout=30)


if __name__ == "__main__":
    sys.exit(main())
