#!/usr/bin/env python
"""Keyless mTLS for a high-security tenant (Appendix B) + offload modes.

Part 1 compares the three asymmetric-crypto deployments for the on-node
proxy under HTTPS short flows — software on the node, local AVX-512,
remote key server — reproducing the Fig 12/23 trade-offs.

Part 2 onboards a "bank" tenant that refuses to hand its private keys
to the cloud: it hosts a key server on premises (keyless TLS). The
shared in-AZ key server never sees the key; handshakes pay the extra
cross-site round trip and still complete.

Run:  python examples/keyless_bank.py
"""

from repro.core import KeyServerFleet
from repro.experiments.testbed import build_testbed
from repro.simcore import Simulator, Summary
from repro.workloads import ShortFlowDriver


def offload_comparison() -> None:
    print("=== crypto offload modes (on-node proxy, HTTPS short flows) ===")
    duration = 2.0
    baseline_cores = None
    for mode, kwargs, label in (
            ("software", {"crypto_offload": "software",
                          "software_new_cpu": False},
             "software (old CPU, 'no offloading')"),
            ("local", {"crypto_offload": "local"},
             "local AVX-512 batch engine"),
            ("remote", {"crypto_offload": "remote"},
             "remote key server (Canal default)")):
        run = build_testbed("canal", seed=7, mesh_kwargs=kwargs)
        driver = ShortFlowDriver(run.sim, run.mesh, run.client_pod, "svc1",
                                 rps=400.0, duration_s=duration)
        report = run.run_driver(driver)
        cores = run.mesh.user_cpu_seconds() / duration
        if baseline_cores is None:
            baseline_cores = cores
            saving = ""
        else:
            saving = f"  (saves {1 - cores / baseline_cores:.0%} CPU)"
        print(f"  {label:<38} {cores:5.2f} on-node cores, "
              f"p90 latency {report.latency.percentile(90) * 1e3:6.2f} ms"
              f"{saving}")
    print("  paper: local offloading saves 43-70% of on-node CPU, "
          "remote 62-70%")


def keyless_tenant() -> None:
    print("\n=== keyless TLS for a high-security tenant (Appendix B) ===")
    sim = Simulator(seed=11)
    fleet = KeyServerFleet(sim)
    shared = fleet.deploy("az1")
    onprem = fleet.deploy_keyless("bank", extra_rtt_s=5e-3)
    onprem.store_private_key("spiffe://bank/payments", "bank-private-key")
    print("bank's private key stored ONLY at its on-prem key server:")
    print(f"  shared in-AZ server holds it: "
          f"{shared.has_key('spiffe://bank/payments')}")
    print(f"  bank's on-prem server holds it: "
          f"{onprem.has_key('spiffe://bank/payments')}")

    regular = fleet.deploy("az2")
    regular.store_private_key("spiffe://shop/web", "shop-key")
    latencies = {}
    for label, engine in (
            ("regular tenant, in-AZ key server",
             fleet.engine_for("node-a", "spiffe://shop/web", "az2")),
            ("bank, keyless via on-prem server",
             fleet.engine_for("node-b", "spiffe://bank/payments", "az1",
                              tenant="bank", keyless=True))):
        summary = Summary(label)

        def burst(engine=engine, summary=summary):
            for _ in range(64):
                start = sim.now
                done = engine.submit()
                yield done
                summary.add(sim.now - start)

        sim.process(burst())
        sim.run()
        latencies[label] = summary.mean
        print(f"  {label:<38} asym op completes in "
              f"{summary.mean * 1e3:.2f} ms")
    overhead = (latencies["bank, keyless via on-prem server"]
                - latencies["regular tenant, in-AZ key server"])
    print(f"  keyless overhead ≈ {overhead * 1e3:.1f} ms per handshake — "
          "paid only at connection setup, never on the data path")

    print("\nsecurity checks:")
    try:
        shared.serve("mallory", "forged-token", "spiffe://bank/payments")
    except Exception as exc:  # AccessDenied
        print(f"  forged channel token rejected: {type(exc).__name__}")
    onprem.restart()
    print(f"  after a (simulated) machine theft + power cycle, the key "
          f"survives in memory: {onprem.has_key('spiffe://bank/payments')}")


def main() -> None:
    offload_comparison()
    keyless_tenant()


if __name__ == "__main__":
    main()
