#!/usr/bin/env python
"""Canary release through the remote gateway (§4.1.1's traffic control).

The functional-equivalence argument: route-control inputs travel in the
packets and the forwarding tables can be configured remotely, so
percentage-based traffic splitting works from the centralized gateway —
no sidecar needed. This example rolls a canary from 0 % to 100 % while
live traffic flows, plus a header-pinned route for internal testers.

Run:  python examples/canary_release.py
"""

from collections import Counter

from repro.experiments.testbed import build_testbed
from repro.mesh import (
    HttpMatch,
    HttpRequest,
    RouteRule,
    RouteTable,
    WeightedDestination,
)
from repro.workloads import ClosedLoopDriver


def route_table(canary_weight: int) -> RouteTable:
    return RouteTable("svc1", [
        # Internal testers are pinned to the canary regardless of weight.
        RouteRule(HttpMatch(headers=(("x-internal-tester", "true"),)),
                  destinations=(WeightedDestination("canary", 100),),
                  name="testers"),
        RouteRule(HttpMatch(),
                  destinations=(
                      WeightedDestination("canary", canary_weight),
                      WeightedDestination("", 100 - canary_weight)),
                  name="percentage-split"),
    ])


def observed_split(run, request: HttpRequest, samples: int = 2000) -> Counter:
    return Counter(
        run.mesh.pick_endpoint("svc1", request).labels.get("version",
                                                           "stable")
        for _ in range(samples))


def main() -> None:
    run = build_testbed("canal", seed=7)
    # Ship v2 as a labeled subset of svc1.
    run.cluster.create_deployment("svc1-canary", replicas=3,
                                  labels={"app": "svc1",
                                          "version": "canary"})
    print("svc1: 10 stable pods + 3 canary pods behind one service\n")

    print("progressive rollout (percentage-based splitting):")
    for weight in (0, 10, 50, 100):
        run.mesh.set_route_table(route_table(weight))
        picks = observed_split(run, HttpRequest())
        share = picks.get("canary", 0) / sum(picks.values())
        print(f"  canary weight {weight:3d}% → observed share "
              f"{share:6.1%}   {dict(picks)}")

    print("\nheader-pinned testers always hit the canary (L7 match):")
    run.mesh.set_route_table(route_table(10))
    tester_request = HttpRequest(headers={"x-internal-tester": "true"})
    picks = observed_split(run, tester_request, samples=200)
    print(f"  tester requests → {dict(picks)}")

    print("\nlive traffic through the full Canal path at weight 50%:")
    run.mesh.set_route_table(route_table(50))
    driver = ClosedLoopDriver(run.sim, run.mesh, run.client_pod, "svc1",
                              connections=4, requests_per_connection=50)
    report = run.run_driver(driver)
    print(f"  200 requests, errors: {report.error_count}, "
          f"mean latency {report.latency.mean * 1e3:.2f} ms")
    print("\nThe route table lives at the gateway — updating the split "
          "touched one config\ntarget, not 30 sidecars (Fig 15's point).")


if __name__ == "__main__":
    main()
