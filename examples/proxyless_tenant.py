#!/usr/bin/env python
"""Proxyless mode: a tenant whose nodes are off limits (Appendix B).

The customer blocks all third-party software on their nodes — even
Canal's minimal on-node proxy. The proxyless variant serves them via
DNS redirection to the gateway, authenticates workloads through
per-container virtual network interfaces (ENIs), and accepts the
trade-offs: partial observability and the ENI-per-container limits.

Run:  python examples/proxyless_tenant.py
"""

from repro.core import EniLimitExceeded, EniRegistry, ProxylessCanalMesh
from repro.core.canal import CanalMesh
from repro.core.observability import TraceCollector
from repro.experiments.testbed import build_testbed
from repro.k8s import Cluster
from repro.mesh import HttpRequest
from repro.netsim import Topology
from repro.simcore import Simulator
from repro.workloads import ClosedLoopDriver


def build_proxyless():
    sim = Simulator(seed=7)
    cluster = Cluster("locked-down",
                      Topology.single_az_testbed(2).all_nodes())
    mesh = ProxylessCanalMesh(sim, eni_registry=EniRegistry(
        max_per_node=20, memory_mb_per_eni=16))
    mesh.attach(cluster)
    for index in range(3):
        cluster.create_deployment(f"svc{index}", replicas=5,
                                  labels={"app": f"svc{index}"})
        cluster.create_service(f"svc{index}",
                               selector={"app": f"svc{index}"})
    return sim, cluster, mesh


def main() -> None:
    print("=== proxyless Canal: nothing of ours on the user's nodes ===")
    sim, cluster, mesh = build_proxyless()

    print("\nDNS redirection installed for the tenant's services:")
    for name, target in mesh.dns_redirections.items():
        print(f"  {name} → {target}")

    client = cluster.pods["svc0-1"]
    eni = mesh.enis.eni_of(client.name)
    print(f"\nworkload identity via ENI: {client.name} ↔ {eni.eni_id} "
          f"(node memory for ENIs on {client.node_name}: "
          f"{mesh.enis.node_memory_mb(client.node_name)} MB)")
    print(f"  spoofed token accepted? "
          f"{mesh.enis.authenticate(client.name, 'forged-token')}")

    driver = ClosedLoopDriver(sim, mesh, client, "svc1", connections=1,
                              requests_per_connection=50, think_time_s=0.1)
    process = sim.process(driver.run())
    sim.run()
    report = process.value
    print(f"\n50 requests: mean latency {report.latency.mean * 1e3:.2f} ms, "
          f"errors {report.error_count}")
    print(f"user-cluster proxy CPU consumed: {mesh.user_cpu_seconds():.3f} "
          f"core-seconds (there are no proxies to consume any)")
    print(f"gateway-side CPU: {mesh.infra_cpu_seconds() * 1e3:.1f} ms")

    print("\n--- the trade-off: observability coverage ---")
    collector = TraceCollector()
    full = build_testbed("canal", mesh_kwargs={"tracing": collector})

    def one_traced():
        connection = yield full.sim.process(
            full.mesh.open_connection(full.client_pod, "svc1"))
        yield full.sim.process(full.mesh.request(connection, HttpRequest()))

    full.sim.process(one_traced())
    full.sim.run()
    trace = collector.traces()[0]
    print(f"  full Canal trace layers: {trace.layers()} → coverage "
          f"{trace.coverage!r}")
    print(f"  proxyless coverage: {mesh.observability_coverage!r} "
          f"(only the gateway can instrument)")

    print("\n--- the other trade-off: the per-node ENI limit ---")
    tight_sim = Simulator(0)
    tight_cluster = Cluster("tight",
                            Topology.single_az_testbed(1).all_nodes())
    tight = ProxylessCanalMesh(tight_sim,
                               eni_registry=EniRegistry(max_per_node=3))
    tight.attach(tight_cluster)
    created = 0
    try:
        for index in range(10):
            tight_cluster.create_pod(f"p{index}")
            created += 1
    except EniLimitExceeded as exc:
        print(f"  created {created} pods, then: {exc}")


if __name__ == "__main__":
    main()
