#!/usr/bin/env python
"""Noisy-neighbor drill: the paper's Fig 16 scenario, narrated live.

A multi-tenant gateway carries eight tenant services. One of them
surges ~15x at t=45 s. Watch the control loop do its job:

  backend water-level alert → root-cause analysis pinpoints the surging
  service → precise Reuse scaling extends it onto idle backends → the
  hot backend drains below 35 % — while every co-located service keeps
  its RPS, latency, and a clean error count.

Run:  python examples/noisy_neighbor.py
"""

import random

from repro.core import (
    AnomalySignals,
    GatewayMonitor,
    RapidResponder,
    SandboxManager,
    ScalingEngine,
    ScalingTimings,
)
from repro.experiments.cloud_ops import build_production_gateway
from repro.simcore import Simulator
from repro.workloads import surge_trace


def main() -> None:
    sim = Simulator(seed=31)
    gateway, services = build_production_gateway(sim, backends_per_az=10)
    rng = random.Random(31)

    for service in services:
        gateway.set_service_load(service.service_id, 25_000.0)

    hot_backend = max(gateway.all_backends,
                      key=lambda b: len(b.configured_services))
    noisy_id = next(iter(hot_backend.top_services(1)))
    noisy = gateway.registry.services[noisy_id]
    peers = sorted(sid for sid in hot_backend.configured_services
                   if sid != noisy_id)
    print(f"hot backend: {hot_backend.name} "
          f"(services: {sorted(hot_backend.configured_services)})")
    print(f"noisy neighbor: {noisy.qualified_name} "
          f"({'HTTPS' if noisy.https else 'HTTP'})")

    # Size the surge to peak the backend at ~80 % water.
    weight = noisy.request_weight
    others = sum(hot_backend.service_rps(sid)
                 * gateway.registry.services[sid].request_weight
                 for sid in peers)
    surge_total = ((0.8 * hot_backend.capacity_rps() - others) / weight
                   * len(gateway.service_backends[noisy_id]))
    trace = surge_trace(rng, 25_000.0, surge_total, duration_s=100,
                        surge_start_s=45)

    monitor = GatewayMonitor(sim, gateway, interval_s=1.0)
    scaling = ScalingEngine(sim, gateway,
                            timings=ScalingTimings(reuse_median_s=8.0,
                                                   settle_median_s=5.0),
                            target_water=0.3)
    sandbox = SandboxManager(sim, gateway)
    responder = RapidResponder(
        sim, gateway, monitor, scaling, sandbox,
        signal_provider=lambda sid: AnomalySignals(
            rps_growth=3.0, session_growth=3.2, water_growth=2.5))
    monitor.subscribe(lambda alert: print(
        f"  t={alert.time:5.1f}s  ALERT[{alert.level}] {alert.subject}: "
        f"{alert.message}"))
    monitor.start()

    def drive():
        for second, rps in enumerate(trace):
            gateway.set_service_load(noisy_id, rps)
            if second % 10 == 0:
                peers_rps = sum(gateway.service_rps[sid] for sid in peers)
                print(f"  t={second:5.1f}s  backend CPU "
                      f"{hot_backend.water_level():5.1%}   noisy "
                      f"{rps / 1e3:6.1f} kRPS   peers {peers_rps / 1e3:5.1f} "
                      f"kRPS   backends(noisy)="
                      f"{len(gateway.service_backends[noisy_id])}")
            yield sim.timeout(1.0)

    print("\ntimeline:")
    sim.process(drive())
    sim.run(until=101.0)

    print("\noutcome:")
    for response in responder.responses:
        print(f"  {response.alert.subject}: classified "
              f"{response.classification!r} → action {response.action!r} "
              f"(RCA via {response.rca.method if response.rca else '-'})")
    for event in scaling.events:
        print(f"  scaling[{event.kind}] service {event.service_id} onto "
              f"{event.backend_name}: execute→below-threshold "
              f"{event.completion_s:.1f}s")
    print(f"  final hot-backend CPU: {hot_backend.water_level():.1%} "
          f"(paper: 80% → ~30% within dozens of seconds)")
    outages = [sid for sid in peers if gateway.service_outage(sid)]
    print(f"  peer outages / error codes: {len(outages)} (expected 0)")


if __name__ == "__main__":
    main()
