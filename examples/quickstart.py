#!/usr/bin/env python
"""Quickstart: run the same workload through Istio, Ambient, and Canal.

Builds the paper's §5.1 testbed (2 worker nodes, 30 pods, 3 services)
for each architecture, drives a light closed-loop workload plus a
moderate open-loop one, and prints the latency / user-CPU comparison
that Figs 10 and 13 report.

Run:  python examples/quickstart.py
"""

from repro.experiments.testbed import build_testbed
from repro.workloads import ClosedLoopDriver, OpenLoopDriver


def light_load(mesh_name: str):
    """Fig 10's probe: one connection, one request per second."""
    run = build_testbed(mesh_name, seed=7)
    driver = ClosedLoopDriver(run.sim, run.mesh, run.client_pod, "svc1",
                              connections=1, requests_per_connection=100,
                              think_time_s=1.0)
    report = run.run_driver(driver)
    return report.latency.mean, run.mesh


def moderate_load(mesh_name: str, rps: float = 800.0, duration: float = 3.0):
    """Fig 13's probe: sustained open-loop load over 50 connections."""
    run = build_testbed(mesh_name, seed=7)
    driver = OpenLoopDriver(run.sim, run.mesh, run.client_pod, "svc1",
                            rps=rps, duration_s=duration, connections=50)
    report = run.run_driver(driver)
    user_cores = run.mesh.user_cpu_seconds() / duration
    infra_cores = run.mesh.infra_cpu_seconds() / duration
    return report, user_cores, infra_cores


def main() -> None:
    print("=" * 72)
    print("Canal Mesh quickstart — three architectures, one workload")
    print("=" * 72)

    print("\n--- Light load (1 conn, 1 rps x 100): mean end-to-end latency")
    latencies = {}
    for mesh_name in ("no-mesh", "canal", "ambient", "istio"):
        latency, _mesh = light_load(mesh_name)
        latencies[mesh_name] = latency
        print(f"  {mesh_name:<8}  {latency * 1e3:7.3f} ms")
    print(f"  → Istio/Canal = {latencies['istio'] / latencies['canal']:.2f}x"
          f"  (paper: 1.7x),  Ambient/Canal = "
          f"{latencies['ambient'] / latencies['canal']:.2f}x  (paper: 1.3x)")

    print("\n--- Moderate load (800 rps x 3 s): proxy CPU cores consumed")
    user = {}
    for mesh_name in ("istio", "ambient", "canal"):
        report, user_cores, infra_cores = moderate_load(mesh_name)
        user[mesh_name] = user_cores
        extra = f" + {infra_cores:.2f} gateway-side" if infra_cores else ""
        print(f"  {mesh_name:<8}  user-cluster {user_cores:5.2f} cores{extra}"
              f"   (p99 latency {report.latency.percentile(99) * 1e3:.2f} ms)")
    print(f"  → Istio/Canal = {user['istio'] / user['canal']:.1f}x"
          f"  (paper: 12-19x),  Ambient/Canal = "
          f"{user['ambient'] / user['canal']:.1f}x  (paper: 4.6-7.2x)")

    print("\nThe Canal user-cluster numbers are the two on-node proxies;")
    print("its L7 processing runs on gateway replicas the provider owns.")


if __name__ == "__main__":
    main()
