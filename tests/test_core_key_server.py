"""Tests for the remote key server and its security properties."""

import pytest

from repro.core import (
    AccessDenied,
    FallbackEngine,
    KeyServer,
    KeyServerConfig,
    KeyServerFleet,
    RemoteKeyEngine,
)
from repro.crypto import SoftwareAsymEngine
from repro.simcore import Simulator


@pytest.fixture
def sim():
    return Simulator(0)


def serve_one(sim, server, requester="node1", identity="tenant1"):
    server.store_private_key(identity, "secret")
    token = server.establish_channel(requester)
    done = server.serve(requester, token, identity)
    sim.run()
    return done


class TestKeyServerSecurity:
    def test_unverified_requester_denied(self, sim):
        server = KeyServer(sim, "az1")
        server.store_private_key("id", "secret")
        with pytest.raises(AccessDenied):
            server.serve("stranger", "bogus-token", "id")
        assert server.requests_denied == 1

    def test_wrong_token_denied(self, sim):
        server = KeyServer(sim, "az1")
        server.store_private_key("id", "secret")
        server.establish_channel("node1")
        with pytest.raises(AccessDenied):
            server.serve("node1", "forged", "id")

    def test_missing_key_denied(self, sim):
        server = KeyServer(sim, "az1")
        token = server.establish_channel("node1")
        with pytest.raises(AccessDenied):
            server.serve("node1", token, "unknown-identity")

    def test_keys_never_stored_plaintext(self, sim):
        server = KeyServer(sim, "az1")
        server.store_private_key("id", "super-secret-hex")
        blobs = list(server._vault.values())
        assert all(b"super-secret-hex" not in blob for blob in blobs)

    def test_restart_flushes_keys(self, sim):
        """Anti-theft property: keys are memory-only (§4.1.3)."""
        server = KeyServer(sim, "az1")
        server.store_private_key("id", "secret")
        server.restart()
        assert not server.has_key("id")

    def test_restart_invalidates_channels(self, sim):
        server = KeyServer(sim, "az1")
        token = server.establish_channel("node1")
        server.store_private_key("id", "s")
        server.restart()
        server.store_private_key("id", "s")
        with pytest.raises(AccessDenied):
            server.serve("node1", token, "id")

    def test_valid_request_served(self, sim):
        server = KeyServer(sim, "az1")
        done = serve_one(sim, server)
        assert done.triggered
        assert server.requests_served == 1


class TestRemoteKeyEngine:
    def test_completion_includes_rtt_and_rpc(self, sim):
        config = KeyServerConfig()
        server = KeyServer(sim, "az1", config=config)
        server.store_private_key("id", "secret")
        engine = RemoteKeyEngine(sim, server, "node1", "id")
        done = engine.submit()
        sim.run()
        minimum = config.network_rtt_s + config.rpc_overhead_s
        assert done.value > minimum

    def test_extra_rtt_for_keyless(self, sim):
        server = KeyServer(sim, "az1")
        server.store_private_key("id", "secret")
        near = RemoteKeyEngine(sim, server, "n", "id")
        server2 = KeyServer(sim, "az1", name="ks2")
        server2.store_private_key("id", "secret")
        far = RemoteKeyEngine(sim, server2, "n", "id", extra_rtt_s=4e-3)
        done_near = near.submit()
        done_far = far.submit()
        sim.run()
        assert done_far.value - done_near.value == pytest.approx(
            4e-3, rel=0.2)

    def test_channel_established_on_creation(self, sim):
        server = KeyServer(sim, "az1")
        server.store_private_key("id", "secret")
        engine = RemoteKeyEngine(sim, server, "node1", "id")
        assert server.verify_channel("node1", engine.token)


class TestFallbackEngine:
    def test_uses_primary_when_healthy(self, sim):
        server = KeyServer(sim, "az1")
        server.store_private_key("id", "secret")
        primary = RemoteKeyEngine(sim, server, "n", "id")
        fallback = SoftwareAsymEngine(sim, new_cpu=False)
        engine = FallbackEngine(primary, fallback)
        engine.submit()
        sim.run()
        assert engine.fallbacks_used == 0
        assert primary.operations == 1

    def test_falls_back_when_server_down(self, sim):
        """Appendix A: key-server failure falls back to local software
        crypto so handshakes keep completing."""
        server = KeyServer(sim, "az1")
        server.store_private_key("id", "secret")
        primary = RemoteKeyEngine(sim, server, "n", "id")
        fallback = SoftwareAsymEngine(sim, new_cpu=False)
        engine = FallbackEngine(primary, fallback)
        server.healthy = False
        done = engine.submit()
        sim.run()
        assert engine.fallbacks_used == 1
        assert done.triggered


class TestKeyServerFleet:
    def test_per_az_deployment(self, sim):
        fleet = KeyServerFleet(sim)
        fleet.deploy("az1")
        fleet.deploy("az2", hardware_accelerated=False)
        assert fleet.server_in("az1").hardware_accelerated
        assert not fleet.server_in("az2").hardware_accelerated

    def test_duplicate_az_rejected(self, sim):
        fleet = KeyServerFleet(sim)
        fleet.deploy("az1")
        with pytest.raises(ValueError):
            fleet.deploy("az1")

    def test_engine_for_local_az(self, sim):
        fleet = KeyServerFleet(sim)
        server = fleet.deploy("az1")
        server.store_private_key("id", "secret")
        engine = fleet.engine_for("node1", "id", "az1")
        assert engine.server is server

    def test_engine_for_unknown_az_raises(self, sim):
        with pytest.raises(KeyError):
            KeyServerFleet(sim).engine_for("n", "id", "az9")

    def test_keyless_tenant_uses_own_server(self, sim):
        """Appendix B: financial customers host the key server
        themselves; the cloud never holds the private key."""
        fleet = KeyServerFleet(sim)
        fleet.deploy("az1")
        onprem = fleet.deploy_keyless("bank", extra_rtt_s=6e-3)
        onprem.store_private_key("id", "secret")
        engine = fleet.engine_for("n", "id", "az1", tenant="bank",
                                  keyless=True)
        assert engine.server is onprem
        assert engine.extra_rtt_s == 6e-3
        # The shared in-AZ server never saw the key.
        assert not fleet.server_in("az1").has_key("id")

    def test_keyless_unknown_tenant_raises(self, sim):
        fleet = KeyServerFleet(sim)
        with pytest.raises(KeyError):
            fleet.engine_for("n", "id", "az1", tenant="ghost", keyless=True)

    def test_software_az_still_serves(self, sim):
        """<5% of AZs lack acceleration; they serve via software (§4.1.3)."""
        fleet = KeyServerFleet(sim)
        server = fleet.deploy("az-old", hardware_accelerated=False)
        done = serve_one(sim, server)
        assert done.triggered
