"""Tests for the experiment harness and the fast exhibits.

Heavy exhibits (Figs 11–14, 27/28) run in the benchmark suite; here we
run the fast ones and assert their paper-facing findings.
"""

import pytest

from repro.experiments import EXPERIMENTS, run
from repro.experiments.base import ExperimentResult, Series, Table


class TestHarness:
    def test_registry_covers_every_exhibit(self):
        expected = {
            "table1", "fig2", "fig3", "fig4", "fig5", "table2", "table3",
            "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
            "fig17", "table4", "fig18", "fig19", "fig20", "table5",
            "table6", "table7", "fig21", "fig22", "fig23", "fig24",
            "fig25", "fig26", "fig27_28", "fig29_30",
        }
        assert expected <= set(EXPERIMENTS)
        # Everything beyond the paper exhibits is an ablation study, a
        # scripted production case, a robustness study, the chaos /
        # causal-tracing exhibits, or the fleet-scale family.
        from repro.experiments import (ABLATIONS, CASES_EXPERIMENTS,
                                       FLEET_EXPERIMENTS, SENSITIVITY)
        assert (set(EXPERIMENTS) - expected
                == set(ABLATIONS) | set(CASES_EXPERIMENTS)
                | set(SENSITIVITY) | set(FLEET_EXPERIMENTS)
                | {"fig8_recovery", "fig8_resilience", "trace_breakdown"})

    def test_exhibit_tiers(self):
        from repro.experiments import (FLEET_EXPERIMENTS, TIERS,
                                       exhibit_tier)
        assert TIERS == ("testbed", "fleet")
        assert exhibit_tier("fig2") == "testbed"
        for exp_id in FLEET_EXPERIMENTS:
            assert exhibit_tier(exp_id) == "fleet"
        with pytest.raises(KeyError):
            exhibit_tier("fig99")

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run("fig99")

    def test_table_row_arity_checked(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_table_column_access(self):
        table = Table("t", ["a", "b"])
        table.add_row(1, 2)
        table.add_row(3, 4)
        assert table.column("b") == [2, 4]

    def test_table_formatting(self):
        table = Table("Title", ["col"])
        table.add_row(0.123456)
        text = table.formatted()
        assert "Title" in text and "col" in text

    def test_series_accessors(self):
        series = Series("s")
        series.add(1.0, 2.0)
        assert series.xs == [1.0] and series.ys == [2.0]

    def test_result_lookup(self):
        result = ExperimentResult("x", "t")
        result.series.append(Series("a"))
        assert result.series_named("a").name == "a"
        with pytest.raises(KeyError):
            result.series_named("b")
        with pytest.raises(KeyError):
            result.table_named("nope")

    def test_result_formatting(self):
        result = run("table5")
        text = result.formatted()
        assert "table5" in text and "Region1" in text


class TestSidecarProblemExhibits:
    def test_table1_shares_in_band(self):
        result = run("table1")
        assert 0.03 <= result.findings["min_cpu_share"]
        assert result.findings["max_cpu_share"] <= 0.32

    def test_fig2_latency_knee(self):
        result = run("fig2")
        assert 1.3 < result.findings["mean_multiplier_at_45pct"] < 2.5
        assert result.findings["p99_multiplier_at_92pct"] > 20.0

    def test_fig3_growth_doubles(self):
        result = run("fig3")
        assert 1.7 < result.findings["growth_ratio"] < 2.3

    def test_table2_bands(self):
        result = run("table2")
        assert 1.0 <= result.findings["small_cluster_per_min"] <= 5.0
        assert 40.0 <= result.findings["large_cluster_per_min"] <= 70.0

    def test_table3_adoption_band(self):
        result = run("table3")
        assert 0.75 <= result.findings["min_l7_share"]
        assert result.findings["max_l7_share"] <= 0.97


class TestComparisonExhibits:
    def test_fig10_ratios(self):
        result = run("fig10")
        assert 1.4 < result.findings["istio_over_canal"] < 2.2
        assert 1.1 < result.findings["ambient_over_canal"] < 1.6

    def test_fig15_exact_paper_ratios(self):
        result = run("fig15")
        assert result.findings["istio_over_canal_bytes"] == pytest.approx(
            9.8, rel=0.01)
        assert result.findings["ambient_over_canal_bytes"] == pytest.approx(
            4.6, rel=0.01)


class TestCloudOpsExhibits:
    def test_fig16_isolation(self):
        result = run("fig16")
        assert 0.7 <= result.findings["peak_backend_cpu"] <= 0.9
        assert result.findings["final_backend_cpu"] <= 0.4
        assert result.findings["max_error_codes"] == 0
        assert result.findings["recovery_seconds"] <= 60

    def test_fig19_sharding_guarantees(self):
        result = run("fig19")
        assert result.findings["fully_overlapping_pairs"] == 0
        assert result.findings["min_survivor_backends"] >= 1

    def test_table5_bands(self):
        result = run("table5")
        assert 0.30 <= result.findings["redirector_min"]
        assert result.findings["redirector_max"] <= 0.50
        assert 0.50 <= result.findings["both_min"]
        assert result.findings["both_max"] <= 0.72


class TestHealthCheckExhibits:
    def test_table6_excess(self):
        result = run("table6")
        assert result.findings["max_ratio"] > 400

    def test_table7_reduction(self):
        result = run("table7")
        assert result.findings["min_reduction"] >= 0.996


class TestAppendixExhibits:
    def test_fig21_structure(self):
        result = run("fig21")
        assert result.findings["iptables_extra_stack_passes"] == 2

    def test_fig22_ebpf_ctx_blowup(self):
        result = run("fig22")
        assert result.findings["ebpf_over_iptables_ctx"] > 1.5
        assert result.findings["nagle_fix_ctx_reduction"] > 0.5

    def test_fig23_completion_anchors(self):
        result = run("fig23")
        assert 1.4 < result.findings["remote_mean_ms"] < 2.0
        assert result.findings["remote_spread_ms"] < 0.2
        assert result.findings["none_mean_ms"] == pytest.approx(2.0)

    def test_fig24_bimodal(self):
        result = run("fig24")
        assert result.findings["share_40_50ms"] > 0.25
        assert result.findings["share_100_200ms"] > 0.25
        assert result.findings["key_server_delta_relative"] < 0.02

    def test_fig25_crossover_at_batch_width(self):
        result = run("fig25")
        assert result.findings["crossover_connections"] == 8
        assert result.findings["completion_at_1_ms"] == pytest.approx(
            1.25, rel=0.05)

    def test_fig26_session_consistency(self):
        result = run("fig26")
        assert result.findings["sticky_fraction"] == 1.0
        assert result.findings["new_flows_on_draining"] == 0

    def test_fig29_30_bands(self):
        result = run("fig29_30")
        assert 1.2 < result.findings["throughput_ratio_small"] < 1.5
        assert 1.9 < result.findings["throughput_ratio_large"] < 2.6
        assert 1.3 < result.findings["latency_ratio_mean"] < 1.9
