"""Tests for trace collection and rolling upgrades."""

import pytest

from repro.core import RollingUpgrade, Span, TraceCollector
from repro.experiments.cloud_ops import build_production_gateway
from repro.experiments.testbed import build_testbed
from repro.mesh import HttpRequest
from repro.simcore import Simulator


class TestTraceCollector:
    def _span(self, trace_id=1, source="onnode@w1", layer="l4",
              start=0.0, end=1.0, pod="", **kw):
        return Span(trace_id=trace_id, source=source, layer=layer,
                    start_s=start, end_s=end, pod=pod, **kw)

    def test_record_and_assemble(self):
        collector = TraceCollector()
        collector.record(self._span(start=0.0, end=1.0))
        collector.record(self._span(source="gateway/r1", layer="l7",
                                    start=1.0, end=2.0))
        trace = collector.trace(1)
        assert trace.duration_s == pytest.approx(2.0)
        assert trace.layers() == ["l4", "l7"]

    def test_coverage_levels(self):
        collector = TraceCollector()
        collector.record(self._span(trace_id=1, layer="l4"))
        collector.record(self._span(trace_id=1, layer="l7"))
        collector.record(self._span(trace_id=2, layer="l7"))
        assert collector.trace(1).coverage == "full"
        assert collector.trace(2).coverage == "partial"
        report = collector.coverage_report()
        assert report["full"] == 1 and report["partial"] == 1

    def test_unknown_trace_raises(self):
        with pytest.raises(KeyError):
            TraceCollector().trace(99)

    def test_pod_bytes_accumulate(self):
        collector = TraceCollector()
        collector.record(self._span(pod="p1", bytes_out=100, bytes_in=50))
        collector.record(self._span(trace_id=2, pod="p1", bytes_out=10,
                                    bytes_in=0))
        assert collector.pod_traffic_report() == {"p1": 160}

    def test_critical_path_gap(self):
        collector = TraceCollector()
        collector.record(self._span(start=0.0, end=1.0))
        collector.record(self._span(source="b", start=3.0, end=4.0))
        trace = collector.trace(1)
        assert trace.critical_path_gap_s() == pytest.approx(2.0)

    def test_critical_path_gap_merges_overlapping_spans(self):
        """An enclosing L7 span must not double-count the L4 span time:
        coverage is the union of intervals, not the sum of durations."""
        collector = TraceCollector()
        collector.record(self._span(source="gateway/r1", layer="l7",
                                    start=0.0, end=4.0))
        collector.record(self._span(source="onnode@w1", layer="l4",
                                    start=1.0, end=2.0))
        collector.record(self._span(source="onnode@w2", layer="l4",
                                    start=5.0, end=6.0))
        trace = collector.trace(1)
        # Covered: [0,4] ∪ [5,6] = 5s of the 6s end to end -> 1s gap
        # (a duration sum would claim 6s covered and report 0 gap).
        assert trace.critical_path_gap_s() == pytest.approx(1.0)

    def test_critical_path_gap_identical_spans(self):
        collector = TraceCollector()
        collector.record(self._span(start=0.0, end=2.0))
        collector.record(self._span(source="b", start=0.0, end=2.0))
        assert collector.trace(1).critical_path_gap_s() == pytest.approx(0.0)


class TestCanalTracing:
    def test_full_coverage_on_canal_path(self):
        """Canal's split observability reassembles end to end: node L4
        spans + gateway L7 span + app span."""
        collector = TraceCollector()
        run = build_testbed("canal", mesh_kwargs={"tracing": collector})

        def scenario():
            connection = yield run.sim.process(
                run.mesh.open_connection(run.client_pod, "svc1"))
            response = yield run.sim.process(
                run.mesh.request(connection, HttpRequest()))
            return response

        process = run.sim.process(scenario())
        run.sim.run()
        assert process.value.ok
        traces = collector.traces()
        assert len(traces) == 1
        trace = traces[0]
        assert trace.coverage == "full"
        # Causal model: a "request" root covering everything, TLS
        # handshake spans adopted from connection setup, the data-path
        # L4/L7/app segments underneath.
        assert set(trace.layers()) >= {"l4", "l7", "app", "tls", "request"}
        root = trace.root()
        assert root is not None and root.layer == "request"
        assert root.annotation("status") == "200"
        for span in trace.spans:
            if span is root:
                continue
            assert root.start_s <= span.start_s
            assert span.end_s <= root.end_s
            # Every span is causally reachable from the root.
            assert trace.depth(span) >= 1
        # The replica-exec span nests under the gateway L7 span.
        replica_spans = [s for s in trace.spans
                         if s.name == "replica-exec"]
        assert replica_spans
        parent = trace.span(replica_spans[0].parent_id)
        assert parent.name == "gateway-l7"
        # The root covers connection setup too, so it is longer than
        # the request latency alone; the critical path stays bounded.
        assert trace.critical_path_gap_s() < trace.duration_s

    def test_per_pod_metrics_from_spans(self):
        collector = TraceCollector()
        run = build_testbed("canal", mesh_kwargs={"tracing": collector})

        def scenario():
            connection = yield run.sim.process(
                run.mesh.open_connection(run.client_pod, "svc1"))
            for _ in range(3):
                yield run.sim.process(
                    run.mesh.request(connection, HttpRequest()))

        run.sim.process(scenario())
        run.sim.run()
        report = collector.pod_traffic_report()
        assert report[run.client_pod.name] == 3 * (128 + 1024)

    def test_tracing_off_by_default(self):
        run = build_testbed("canal")
        assert run.mesh.tracing is None


class TestRollingUpgrade:
    def _stack(self, seed=61):
        sim = Simulator(seed)
        gateway, services = build_production_gateway(
            sim, backends_per_az=4, services=6)
        for service in services:
            gateway.set_service_load(service.service_id, 20_000.0)
        return sim, gateway, services

    def test_all_replicas_upgraded(self):
        sim, gateway, services = self._stack()
        roller = RollingUpgrade(sim, gateway)
        process = sim.process(roller.run("v2"))
        sim.run()
        report = process.value
        total = sum(len(b.replicas) for b in gateway.all_backends)
        assert report.replicas_upgraded == total
        assert set(roller.replica_versions().values()) == {"v2"}

    def test_zero_outage_during_upgrade(self):
        """Fig 20's property: version updates cause no service outage."""
        sim, gateway, services = self._stack()
        roller = RollingUpgrade(sim, gateway)
        process = sim.process(roller.run("v2"))
        sim.run()
        assert process.value.outage_seconds == 0.0

    def test_duration_scales_with_fleet(self):
        """Rolling a large fleet takes hours (paper: ~4h)."""
        sim, gateway, services = self._stack()
        roller = RollingUpgrade(sim, gateway, drain_s=120.0, swap_s=90.0,
                                rejoin_s=30.0)
        process = sim.process(roller.run("v2"))
        sim.run()
        replicas = sum(len(b.replicas) for b in gateway.all_backends)
        assert process.value.duration_s == pytest.approx(240.0 * replicas)

    def test_single_replica_backend_skipped(self):
        sim = Simulator(0)
        from repro.core import GatewayConfig, MeshGateway
        from repro.core.replica import ReplicaConfig
        gateway = MeshGateway(sim, GatewayConfig(
            replicas_per_backend=1, backends_per_service_per_az=1,
            azs_per_service=1, replica=ReplicaConfig(cores=2)))
        gateway.deploy_backend("az1")
        roller = RollingUpgrade(sim, gateway)
        process = sim.process(roller.run("v2"))
        sim.run()
        report = process.value
        assert report.replicas_upgraded == 0
        assert report.skipped_backends == ["backend-1"]

    def test_healthy_state_restored(self):
        sim, gateway, services = self._stack()
        roller = RollingUpgrade(sim, gateway)
        sim.process(roller.run("v2"))
        sim.run()
        for backend in gateway.all_backends:
            assert backend.is_healthy
            assert all(not r.draining for r in backend.replicas)
