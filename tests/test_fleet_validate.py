"""Fluid-vs-DES validation harness: agreement, trip wires, reporting.

The issue's acceptance floor: agreement on >= 3 overlapping-scale
scenarios (one chaos) must hold, AND a deliberately mis-parameterized
fluid model must FAIL — a validation gate that cannot fail would be
vacuous.
"""

import json

import pytest

from repro.fleet import (
    DEFAULT_SCENARIOS,
    ValidationScenario,
    compare_tiers,
    run_validation,
)


#: One compact scenario for the trip-wire tests (the full default
#: suite runs once below; no need to pay for it per trip).
STEADY = DEFAULT_SCENARIOS[0]


class TestAgreement:
    def test_default_suite_shape(self):
        assert len(DEFAULT_SCENARIOS) >= 3
        assert any(s.plan is not None for s in DEFAULT_SCENARIOS)
        names = [s.name for s in DEFAULT_SCENARIOS]
        assert len(names) == len(set(names))

    def test_all_default_scenarios_agree(self):
        ok, reports = run_validation()
        for report in reports:
            failing = [c.metric for c in report.checks if not c.ok]
            assert report.ok, (report.scenario, failing)
        assert ok

    def test_report_serializes(self):
        report = compare_tiers(STEADY)
        payload = json.loads(json.dumps(report.to_json()))
        assert payload["scenario"] == STEADY.name
        assert payload["ok"] is True
        metrics = {c["metric"] for c in payload["checks"]}
        assert {"availability", "steady_sessions",
                "latency_mean_ms", "latency_p99_ms"} <= metrics

    def test_chaos_scenario_compares_disruption(self):
        chaos = next(s for s in DEFAULT_SCENARIOS if s.plan is not None)
        report = compare_tiers(chaos)
        assert report.ok
        disrupted = [c for c in report.checks if c.metric == "disrupted"]
        assert len(disrupted) == 1
        # The chaos plan must actually disrupt sessions in both tiers,
        # or the agreement check compares zero against zero.
        assert disrupted[0].fluid > 0.0
        assert disrupted[0].reference > 0.0


class TestMisparameterizationTrips:
    """A wrong fluid model must fail validation — both knobs."""

    def test_doubled_arrival_rate_fails(self):
        report = compare_tiers(
            STEADY, fluid_overrides={"arrival_rate_factor": 2.0})
        assert not report.ok
        failing = {c.metric for c in report.checks if not c.ok}
        assert "steady_sessions" in failing

    def test_halved_session_duration_fails(self):
        report = compare_tiers(
            STEADY, fluid_overrides={"session_duration_factor": 0.5})
        assert not report.ok
        failing = {c.metric for c in report.checks if not c.ok}
        assert "steady_sessions" in failing

    def test_unknown_override_key_rejected(self):
        with pytest.raises(ValueError):
            compare_tiers(STEADY, fluid_overrides={"gravity_factor": 2.0})


class TestDeterminism:
    def test_same_scenario_same_report(self):
        first = compare_tiers(STEADY)
        second = compare_tiers(STEADY)
        assert first.to_json() == second.to_json()

    def test_seed_changes_reference_not_verdict(self):
        reseeded = ValidationScenario(
            name=STEADY.name, mean_sessions=STEADY.mean_sessions,
            session_rps=STEADY.session_rps, seed=STEADY.seed + 1)
        report = compare_tiers(reseeded)
        assert report.ok
