"""Tests for the unified telemetry layer (repro.obs)."""

import json

import pytest

from repro.core import Span, TraceCollector
from repro.experiments.base import ExperimentResult, Series, Table
from repro.experiments.testbed import build_testbed
from repro.mesh import HttpRequest
from repro.obs import (
    SimProfiler,
    Telemetry,
    chrome_trace,
    disable_profiling,
    enable_profiling,
    get_telemetry,
    prometheus_text,
    run_report,
    take_profilers,
    use_telemetry,
    write_run_artifacts,
)
from repro.simcore import Simulator


class TestTelemetryRegistry:
    def test_counter_labels_are_distinct(self):
        telemetry = Telemetry()
        telemetry.inc("requests_total", mesh="canal", result="ok")
        telemetry.inc("requests_total", mesh="canal", result="ok")
        telemetry.inc("requests_total", mesh="canal", result="503")
        assert telemetry.value("requests_total",
                               mesh="canal", result="ok") == 2
        assert telemetry.value("requests_total",
                               mesh="canal", result="503") == 1
        assert telemetry.total("requests_total") == 3

    def test_label_order_is_irrelevant(self):
        telemetry = Telemetry()
        telemetry.inc("c", a="1", b="2")
        telemetry.inc("c", b="2", a="1")
        assert telemetry.value("c", a="1", b="2") == 2

    def test_counter_amount_and_negative_rejected(self):
        telemetry = Telemetry()
        telemetry.inc("bytes_total", amount=512, node="w1")
        assert telemetry.value("bytes_total", node="w1") == 512
        with pytest.raises(ValueError):
            telemetry.inc("bytes_total", amount=-1, node="w1")

    def test_gauge_set(self):
        telemetry = Telemetry()
        telemetry.set("water_level", 0.4, backend="b1")
        telemetry.set("water_level", 0.7, backend="b1")
        assert telemetry.value("water_level", backend="b1") == 0.7

    def test_histogram_bucketing(self):
        telemetry = Telemetry()
        for value in (0.5, 1.5, 2.5, 99.0):
            telemetry.observe("latency", value, buckets=(1.0, 2.0, 3.0))
        histogram = telemetry.get("latency")
        assert histogram.counts == [1, 1, 1, 1]
        assert histogram.cumulative_counts() == [1, 2, 3, 4]
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(103.5)

    def test_histogram_boundary_goes_to_le_bucket(self):
        telemetry = Telemetry()
        telemetry.observe("h", 1.0, buckets=(1.0, 2.0))
        assert telemetry.get("h").counts == [1, 0, 0]

    def test_kind_conflict_raises(self):
        telemetry = Telemetry()
        telemetry.inc("thing")
        with pytest.raises(ValueError):
            telemetry.set("thing", 1.0)

    def test_disabled_is_a_noop(self):
        telemetry = Telemetry(enabled=False)
        telemetry.inc("requests_total")
        telemetry.set("gauge", 1.0)
        telemetry.observe("histogram", 1.0)
        assert len(telemetry) == 0
        assert telemetry.value("requests_total") == 0.0
        assert telemetry.snapshot() == {}

    def test_snapshot_shape(self):
        telemetry = Telemetry()
        telemetry.inc("requests_total", mesh="canal")
        telemetry.observe("latency", 0.5)
        snapshot = telemetry.snapshot()
        assert snapshot["requests_total"]["kind"] == "counter"
        sample = snapshot["requests_total"]["samples"][0]
        assert sample == {"labels": {"mesh": "canal"}, "value": 1.0}
        assert snapshot["latency"]["samples"][0]["count"] == 1

    def test_ambient_registry_swap(self):
        before = get_telemetry()
        with use_telemetry() as telemetry:
            assert get_telemetry() is telemetry
            get_telemetry().inc("x")
            assert telemetry.value("x") == 1
        assert get_telemetry() is before


class TestPrometheusExport:
    def test_counter_and_gauge_lines(self):
        telemetry = Telemetry()
        telemetry.inc("requests_total", mesh="canal", result="ok")
        telemetry.set("water_level", 0.25, backend="b1")
        text = prometheus_text(telemetry)
        assert "# TYPE requests_total counter" in text
        assert 'requests_total{mesh="canal",result="ok"} 1' in text
        assert '# TYPE water_level gauge' in text
        assert 'water_level{backend="b1"} 0.25' in text

    def test_histogram_exposition(self):
        telemetry = Telemetry()
        telemetry.observe("lat", 0.5, buckets=(1.0, 2.0), mesh="canal")
        telemetry.observe("lat", 5.0, mesh="canal")
        text = prometheus_text(telemetry)
        assert 'lat_bucket{mesh="canal",le="1.0"} 1' in text
        assert 'lat_bucket{mesh="canal",le="+Inf"} 2' in text
        assert 'lat_sum{mesh="canal"} 5.5' in text
        assert 'lat_count{mesh="canal"} 2' in text

    def test_label_escaping(self):
        telemetry = Telemetry()
        telemetry.inc("c", path='say "hi"\\n')
        text = prometheus_text(telemetry)
        assert r'path="say \"hi\"\\n"' in text

    def test_unlabeled_metric_has_no_braces(self):
        telemetry = Telemetry()
        telemetry.inc("plain_total")
        assert "plain_total 1\n" in prometheus_text(telemetry)

    def test_empty_registry(self):
        assert prometheus_text(Telemetry()) == ""


class TestChromeTrace:
    def _traces(self):
        collector = TraceCollector()
        collector.record(Span(trace_id=1, source="onnode@w1", layer="l4",
                              start_s=0.0, end_s=0.001, pod="p1",
                              service="svc1", bytes_out=10, bytes_in=20))
        collector.record(Span(trace_id=1, source="gateway/r1", layer="l7",
                              start_s=0.001, end_s=0.002, service="svc1"))
        return collector.traces()

    def test_span_events_round_trip(self):
        trace = chrome_trace(traces=self._traces())
        data = json.loads(json.dumps(trace))
        events = data["traceEvents"]
        assert len(events) == 2
        first = events[0]
        assert first["ph"] == "X"
        assert first["ts"] == pytest.approx(0.0)
        assert first["dur"] == pytest.approx(1000.0)  # 1 ms in µs
        assert first["args"]["trace_id"] == 1
        # Distinct sources get distinct thread rows.
        assert events[0]["tid"] != events[1]["tid"]

    def test_profiler_events_included(self):
        profiler = SimProfiler(keep_timeline=True)
        profiler._add("process:req", 0.5, 0.001, 0.0)
        trace = chrome_trace(profilers=[profiler])
        events = json.loads(json.dumps(trace))["traceEvents"]
        names = {event["name"] for event in events}
        assert "process:req" in names


class TestSimProfiler:
    def _toy_run(self):
        enable_profiling(keep_timeline=True)
        try:
            sim = Simulator(seed=1)

            def worker():
                for _ in range(10):
                    yield sim.timeout(1.0)

            def ticker():
                for _ in range(5):
                    yield sim.timeout(4.0)

            sim.process(worker(), name="worker-1")
            sim.process(ticker(), name="ticker-1")
            sim.run()
            return sim
        finally:
            disable_profiling()
            take_profilers()

    def test_profiler_attached_and_attributes_sim_time(self):
        sim = self._toy_run()
        assert sim.profiler is not None
        records = sim.profiler.records
        # Trailing digits are normalized away.
        assert "process:worker" in records
        assert "process:ticker" in records
        total_sim = sim.profiler.sim_total_s()
        assert total_sim == pytest.approx(sim.now)
        assert sim.profiler.wall_total_s() >= 0.0
        assert sim.profiler.steps > 0
        assert sim.profiler.timeline  # keep_timeline=True

    def test_summary_sorted_by_wall(self):
        sim = self._toy_run()
        rows = sim.profiler.summary()
        walls = [row["wall_s"] for row in rows]
        assert walls == sorted(walls, reverse=True)
        assert sim.profiler.formatted()

    def test_no_profiler_by_default(self):
        assert Simulator().profiler is None

    def test_key_cap_folds_into_other(self):
        profiler = SimProfiler(max_keys=2)
        for index in range(5):
            profiler._add(f"key-a{index}x", 0.0, 0.0, None)
        assert set(profiler.records) <= {"key-a0x", "key-a1x", "(other)"}
        assert "(other)" in profiler.records


class TestMeshWiring:
    def _run_canal_request(self, telemetry):
        with use_telemetry(telemetry):
            run = build_testbed("canal")

            def scenario():
                connection = yield run.sim.process(
                    run.mesh.open_connection(run.client_pod, "svc1"))
                response = yield run.sim.process(
                    run.mesh.request(connection, HttpRequest()))
                return response

            process = run.sim.process(scenario())
            run.sim.run()
            assert process.value.ok

    def test_canal_request_emits_across_layers(self):
        telemetry = Telemetry(enabled=True)
        self._run_canal_request(telemetry)
        assert telemetry.value("mesh_requests_total", mesh="canal",
                               result="ok", service="svc1") == 1
        # On-node proxies, gateway, and crypto all emitted.
        assert telemetry.total("onnode_messages_total") == 2
        assert telemetry.total("gateway_requests_total") == 1
        assert telemetry.total("crypto_asym_ops_total") >= 2
        assert telemetry.total("proxy_requests_total") >= 2
        latency = telemetry.get("mesh_request_latency_seconds", mesh="canal")
        assert latency.count == 1

    def test_disabled_registry_collects_nothing(self):
        telemetry = Telemetry(enabled=False)
        self._run_canal_request(telemetry)
        assert len(telemetry) == 0

    def test_controlplane_push_emits(self):
        from repro.k8s import Cluster
        from repro.mesh import IstioControlPlane
        from repro.netsim import Topology
        with use_telemetry() as telemetry:
            sim = Simulator(0)
            topo = Topology.single_az_testbed(worker_nodes=2)
            cluster = Cluster("cp-obs", topo.all_nodes())
            cluster.create_deployment("svc0", replicas=4,
                                      labels={"app": "svc0"})
            cluster.create_service("svc0", selector={"app": "svc0"})
            plane = IstioControlPlane(sim, cluster)
            process = sim.process(plane.push_update())
            sim.run()
            assert process.value.targets > 0
            assert telemetry.total("config_pushes_total") == 1
            assert telemetry.total("config_target_acks_total") \
                == process.value.targets
            assert telemetry.total("config_push_bytes_total") \
                == process.value.total_bytes


class TestRunReportArtifacts:
    def _result(self):
        table = Table(title="t", columns=["a", "b"])
        table.add_row(1, 2.5)
        series = Series(name="s", x_label="x", y_label="y")
        series.add(1.0, 2.0)
        return ExperimentResult(exp_id="figX", title="demo",
                                tables=[table], series=[series],
                                findings={"k": 1.0}, notes=["n"])

    def test_run_report_shape(self):
        telemetry = Telemetry()
        telemetry.inc("requests_total")
        report = run_report(self._result(), telemetry, [SimProfiler()],
                            meta={"exp_id": "figX"})
        assert report["result"]["exp_id"] == "figX"
        assert report["result"]["tables"][0]["rows"] == [[1, 2.5]]
        assert report["telemetry"]["requests_total"]["kind"] == "counter"
        assert report["profilers"][0]["steps"] == 0
        json.dumps(report)  # must be JSON-serializable

    def test_write_run_artifacts(self, tmp_path):
        telemetry = Telemetry()
        telemetry.observe("latency", 0.5)
        paths = write_run_artifacts(str(tmp_path), "figX",
                                    result=self._result(),
                                    telemetry=telemetry)
        report = json.loads((tmp_path / "figX.report.json").read_text())
        assert report["result"]["findings"] == {"k": 1.0}
        trace = json.loads((tmp_path / "figX.trace.json").read_text())
        assert "traceEvents" in trace
        prom = (tmp_path / "figX.prom").read_text()
        assert "latency_count 1" in prom
        assert set(paths) == {"report", "metrics", "trace"}

    def test_cli_report_flag(self, tmp_path, capsys):
        from repro.experiments.__main__ import main
        code = main(["prog", "--report", str(tmp_path), "table1"])
        assert code == 0
        report = json.loads((tmp_path / "table1.report.json").read_text())
        assert report["meta"]["exp_id"] == "table1"
        json.loads((tmp_path / "table1.trace.json").read_text())
        assert (tmp_path / "table1.prom").exists()
        assert "table1" in capsys.readouterr().out

    def test_cli_report_flag_missing_dir_errors(self, capsys):
        from repro.experiments.__main__ import main
        assert main(["prog", "--report"]) == 1
