"""Tests for the measurement primitives."""

import pytest

from repro.simcore import Counter, Summary, TimeSeries, cdf, percentile


class TestPercentile:
    def test_single_value(self):
        assert percentile([5.0], 50) == 5.0

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)

    def test_extremes(self):
        values = [3.0, 1.0, 2.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 3.0

    def test_p99_matches_numpy(self):
        import numpy as np
        values = [float(i) for i in range(1, 101)]
        assert percentile(values, 99) == pytest.approx(
            float(np.percentile(values, 99)))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestCdf:
    def test_shape(self):
        points = cdf([3.0, 1.0, 2.0])
        assert points == [(1.0, pytest.approx(1 / 3)),
                          (2.0, pytest.approx(2 / 3)),
                          (3.0, pytest.approx(1.0))]

    def test_last_point_is_one(self):
        assert cdf([7.0, 7.0])[-1][1] == 1.0


class TestSummary:
    def test_mean(self):
        summary = Summary()
        summary.extend([1.0, 2.0, 3.0])
        assert summary.mean == 2.0

    def test_empty_mean_raises(self):
        with pytest.raises(ValueError):
            Summary().mean

    def test_min_max_count(self):
        summary = Summary()
        summary.extend([5.0, 1.0, 3.0])
        assert summary.minimum == 1.0
        assert summary.maximum == 5.0
        assert summary.count == 3

    def test_histogram_buckets(self):
        summary = Summary()
        summary.extend([0.5, 1.5, 2.5, 3.5])
        counts = summary.histogram([1.0, 2.0, 3.0])
        assert counts == [1, 1, 1, 1]

    def test_histogram_right_open(self):
        summary = Summary()
        summary.extend([1.0, 1.0])
        assert summary.histogram([1.0, 2.0]) == [2, 0, 0]


class TestTimeSeries:
    def test_record_and_window(self):
        series = TimeSeries()
        for t in range(5):
            series.record(float(t), t * 10.0)
        assert series.window(1.0, 3.0) == [(1.0, 10.0), (2.0, 20.0)]

    def test_out_of_order_rejected(self):
        series = TimeSeries()
        series.record(1.0, 0.0)
        with pytest.raises(ValueError):
            series.record(0.5, 0.0)

    def test_last(self):
        series = TimeSeries()
        series.record(1.0, 5.0)
        series.record(2.0, 6.0)
        assert series.last() == (2.0, 6.0)

    def test_empty_last_raises(self):
        with pytest.raises(ValueError):
            TimeSeries().last()

    def test_bucketed_mean(self):
        series = TimeSeries()
        for t, v in [(0.0, 1.0), (0.5, 3.0), (1.0, 10.0)]:
            series.record(t, v)
        buckets = series.bucketed(1.0, agg="mean")
        assert buckets[0][1] == pytest.approx(2.0)
        assert buckets[1][1] == pytest.approx(10.0)

    def test_bucketed_rate(self):
        series = TimeSeries()
        for t in (0.0, 0.1, 0.2, 1.5):
            series.record(t, 1.0)
        buckets = series.bucketed(1.0, agg="rate")
        assert buckets[0][1] == pytest.approx(3.0)
        # The final bucket only covers [1.0, 1.5]: one event over half a
        # second is 2/s, not 1/s (the old full-width division).
        assert buckets[1][1] == pytest.approx(2.0)

    def test_bucketed_rate_clamps_partial_bucket_with_end(self):
        series = TimeSeries()
        for t in (0.0, 0.5, 1.0, 1.1):
            series.record(t, 1.0)
        buckets = series.bucketed(1.0, agg="rate", start=0.0, end=1.25)
        assert buckets[0][1] == pytest.approx(2.0)
        # Bucket 1 covers [1.0, 1.25): 2 events / 0.25 s.
        assert buckets[1][1] == pytest.approx(8.0)

    def test_bucketed_rate_sample_on_final_boundary(self):
        series = TimeSeries()
        series.record(0.0, 1.0)
        series.record(1.0, 1.0)
        buckets = series.bucketed(1.0, agg="rate")
        # The boundary sample lands in a zero-extent final bucket; the
        # rate falls back to the full bucket width instead of dividing
        # by zero.
        assert buckets[1][1] == pytest.approx(1.0)

    def test_bucketed_unknown_agg(self):
        series = TimeSeries()
        series.record(0.0, 1.0)
        with pytest.raises(ValueError):
            series.bucketed(1.0, agg="wat")

    def test_bucketed_empty(self):
        assert TimeSeries().bucketed(1.0) == []

    def test_bucketed_sum_max_min_count(self):
        series = TimeSeries()
        for t, v in [(0.0, 1.0), (0.5, 3.0), (1.2, -2.0), (1.8, 7.0)]:
            series.record(t, v)
        assert series.bucketed(1.0, agg="sum")[0][1] == pytest.approx(4.0)
        assert series.bucketed(1.0, agg="max")[1][1] == pytest.approx(7.0)
        assert series.bucketed(1.0, agg="min")[1][1] == pytest.approx(-2.0)
        assert series.bucketed(1.0, agg="count")[0][1] == pytest.approx(2.0)

    def test_bucketed_respects_start_end_window(self):
        series = TimeSeries()
        for t in range(5):
            series.record(float(t), 1.0)
        buckets = series.bucketed(1.0, agg="count", start=1.0, end=3.0)
        # end is exclusive (same right-open convention as window()):
        # only the samples at t=1.0 and t=2.0 count.
        assert sum(count for _, count in buckets) == 2

    def test_bucketed_adjacent_windows_never_double_count(self):
        series = TimeSeries()
        for t in range(5):
            series.record(float(t), 1.0)
        first = series.bucketed(1.0, agg="count", start=0.0, end=2.0)
        second = series.bucketed(1.0, agg="count", start=2.0, end=4.0)
        # The sample at t=2.0 belongs to exactly one of the two calls.
        total = sum(c for _, c in first) + sum(c for _, c in second)
        assert total == 4

    def test_bucketed_default_end_includes_last_sample(self):
        series = TimeSeries()
        for t in (0.0, 1.0, 2.0):
            series.record(t, 1.0)
        buckets = series.bucketed(1.0, agg="count")
        assert sum(count for _, count in buckets) == 3

    def test_bucketed_midpoints(self):
        series = TimeSeries()
        series.record(0.0, 1.0)
        series.record(2.5, 1.0)
        buckets = series.bucketed(1.0, agg="count")
        assert buckets[0][0] == pytest.approx(0.5)
        assert buckets[1][0] == pytest.approx(2.5)

    def test_bucketed_nonpositive_width_raises(self):
        series = TimeSeries()
        series.record(0.0, 1.0)
        with pytest.raises(ValueError):
            series.bucketed(0.0)
        with pytest.raises(ValueError):
            series.bucketed(-1.0)


class TestCounter:
    def test_total(self):
        counter = Counter()
        counter.increment(0.0)
        counter.increment(1.0, amount=3)
        assert counter.total == 4

    def test_rate_window(self):
        counter = Counter()
        for t in (0.1, 0.2, 0.9, 1.5):
            counter.increment(t)
        assert counter.rate(0.0, 1.0) == pytest.approx(3.0)

    def test_bad_window_raises(self):
        with pytest.raises(ValueError):
            Counter().rate(1.0, 1.0)

    def test_bulk_increment_is_compact(self):
        """A big amount stores one (time, amount) pair, not N copies."""
        counter = Counter()
        counter.increment(0.5, amount=10_000_000)
        assert counter.total == 10_000_000
        assert len(counter._events) == 1
        assert counter.rate(0.0, 1.0) == pytest.approx(10_000_000)

    def test_rate_window_half_open(self):
        counter = Counter()
        counter.increment(0.0, amount=2)
        counter.increment(1.0, amount=5)  # at `end`, excluded
        assert counter.rate(0.0, 1.0) == pytest.approx(2.0)

    def test_zero_amount_records_nothing(self):
        counter = Counter()
        counter.increment(0.5, amount=0)
        assert counter.total == 0
        assert counter._events == []

    def test_negative_amount_rejected(self):
        with pytest.raises(ValueError):
            Counter().increment(0.0, amount=-1)


class TestSummaryEdgeCases:
    def test_empty_percentile_raises(self):
        with pytest.raises(ValueError):
            Summary().percentile(50)

    def test_empty_min_max_raise(self):
        with pytest.raises(ValueError):
            Summary().minimum
        with pytest.raises(ValueError):
            Summary().maximum

    def test_empty_errors_are_consistently_named(self):
        # Every empty-summary access names the summary instead of
        # leaking a bare builtin message like "min() arg is an empty
        # sequence".
        summary = Summary("rtt")
        for access in (lambda: summary.mean, lambda: summary.minimum,
                       lambda: summary.maximum,
                       lambda: summary.percentile(99),
                       lambda: summary.cdf()):
            with pytest.raises(ValueError, match=r"summary 'rtt' is empty"):
                access()
