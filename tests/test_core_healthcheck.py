"""Tests for health-check multi-level aggregation (§6.1)."""

import pytest

from repro.core import HealthCheckPlan, ServicePlacement


def placement(service_id, backends, apps):
    return ServicePlacement(service_id=service_id,
                            backend_names=tuple(backends),
                            app_endpoints=frozenset(apps))


def simple_plan(replicas=4, cores=8):
    placements = [
        placement(1, ["b1", "b2"], ["app1", "app2"]),
        placement(2, ["b1"], ["app2", "app3"]),
    ]
    return HealthCheckPlan(placements, replicas_per_backend=replicas,
                           cores_per_replica=cores)


class TestBaseVolume:
    def test_base_counts_every_prober(self):
        plan = simple_plan(replicas=4, cores=8)
        # svc1: 2 backends x 4 x 8 x 2 apps = 128; svc2: 1 x 4 x 8 x 2 = 64.
        assert plan.base_rps() == 128 + 64

    def test_probe_rate_scales(self):
        placements = [placement(1, ["b1"], ["a"])]
        plan = HealthCheckPlan(placements, replicas_per_backend=1,
                               cores_per_replica=1,
                               probe_rate_per_target_s=5.0)
        assert plan.base_rps() == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            HealthCheckPlan([], replicas_per_backend=0)
        with pytest.raises(ValueError):
            placement(1, [], ["a"])
        with pytest.raises(ValueError):
            placement(1, ["b1"], [])


class TestAggregationLevels:
    def test_service_level_dedupes_overlap(self):
        plan = simple_plan(replicas=4, cores=8)
        # b1 probes union {app1,app2,app3}=3 targets; b2 probes 2.
        assert plan.service_level_rps() == (3 + 2) * 4 * 8

    def test_no_overlap_no_service_saving(self):
        """Table 7 Case 3: disjoint app sets → Base == Service-level."""
        placements = [
            placement(1, ["b1"], ["a1", "a2"]),
            placement(2, ["b2"], ["a3", "a4"]),
        ]
        plan = HealthCheckPlan(placements, replicas_per_backend=2,
                               cores_per_replica=2)
        assert plan.base_rps() == plan.service_level_rps()

    def test_core_level_divides_by_cores(self):
        plan = simple_plan(replicas=4, cores=8)
        assert plan.core_level_rps() == plan.service_level_rps() / 8

    def test_replica_level_divides_by_replicas(self):
        plan = simple_plan(replicas=4, cores=8)
        assert plan.replica_level_rps() == plan.core_level_rps() / 4

    def test_stages_monotonically_decrease(self):
        stages = simple_plan().reduction()
        assert (stages.base >= stages.service_level
                >= stages.core_level >= stages.replica_level)

    def test_paper_scale_reduction(self):
        """At production replica/core counts the three levels cut
        >= 99.6 % of probes (Table 7)."""
        placements = [
            placement(1, ["b1", "b2", "b3"], [f"a{i}" for i in range(6)]),
            placement(2, ["b1", "b2"], [f"a{i}" for i in range(4, 9)]),
        ]
        plan = HealthCheckPlan(placements, replicas_per_backend=32,
                               cores_per_replica=16)
        assert plan.reduction().reduction >= 0.996


class TestPerAppView:
    def test_app_receives_from_every_prober(self):
        plan = simple_plan(replicas=4, cores=8)
        # app2 is probed by svc1 (b1,b2) and svc2 (b1): (2+1) x 32.
        assert plan.probes_received_by_app("app2") == 3 * 32

    def test_aggregated_app_receives_once_per_backend(self):
        plan = simple_plan(replicas=4, cores=8)
        # app2's backends: {b1, b2} → 2 probes/s.
        assert plan.probes_received_by_app("app2", aggregated=True) == 2

    def test_unknown_app_receives_nothing(self):
        assert simple_plan().probes_received_by_app("ghost") == 0

    def test_excess_ratio_shape(self):
        """Table 6: probe volume can exceed app traffic by hundreds x."""
        plan = HealthCheckPlan(
            [placement(1, ["b1", "b2", "b3"], ["app1"])],
            replicas_per_backend=32, cores_per_replica=16)
        app_rps = 21.0
        assert plan.base_rps() / app_rps > 50
