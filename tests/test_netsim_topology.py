"""Tests for regions/AZs/nodes and the latency model."""

import pytest

from repro.netsim import LatencyModel, NetLocation, Topology


class TestNetLocation:
    def test_same_node(self):
        a = NetLocation("r1", "az1", "n1")
        assert a.same_node(NetLocation("r1", "az1", "n1"))
        assert not a.same_node(NetLocation("r1", "az1", "n2"))

    def test_same_az_and_region(self):
        a = NetLocation("r1", "az1", "n1")
        assert a.same_az(NetLocation("r1", "az1", "n2"))
        assert not a.same_az(NetLocation("r1", "az2", "n2"))
        assert a.same_region(NetLocation("r1", "az2", "n3"))


class TestLatencyModel:
    def setup_method(self):
        self.model = LatencyModel()
        self.a = NetLocation("r1", "az1", "n1")

    def test_ordering_of_distances(self):
        same_node = self.model.one_way(self.a, self.a)
        same_az = self.model.one_way(self.a, NetLocation("r1", "az1", "n2"))
        cross_az = self.model.one_way(self.a, NetLocation("r1", "az2", "n9"))
        cross_region = self.model.one_way(
            self.a, NetLocation("r2", "az1", "n1"))
        assert same_node < same_az < cross_az < cross_region

    def test_intra_az_rtt_below_1ms(self):
        """The paper's anchor: RTT within an AZ is less than 1 ms."""
        rtt = self.model.rtt(self.a, NetLocation("r1", "az1", "n2"))
        assert rtt < 1e-3

    def test_rtt_is_twice_one_way(self):
        b = NetLocation("r1", "az2", "n2")
        assert self.model.rtt(self.a, b) == 2 * self.model.one_way(self.a, b)


class TestTopology:
    def test_single_az_testbed_layout(self):
        topo = Topology.single_az_testbed(worker_nodes=2)
        nodes = topo.all_nodes()
        assert len(nodes) == 3  # master + 2 workers
        assert nodes[0].name == "master"
        assert len(topo.all_azs()) == 1

    def test_multi_az_region_layout(self):
        topo = Topology.multi_az_region(azs=3, nodes_per_az=4)
        assert len(topo.all_azs()) == 3
        assert len(topo.all_nodes()) == 12

    def test_duplicate_region_rejected(self):
        topo = Topology()
        topo.add_region("r1")
        with pytest.raises(ValueError):
            topo.add_region("r1")

    def test_node_location(self):
        topo = Topology.multi_az_region(azs=1, nodes_per_az=1)
        node = topo.all_nodes()[0]
        location = node.location
        assert location.region == "region1"
        assert location.az == "az1"

    def test_az_crypto_acceleration_flag(self):
        topo = Topology()
        region = topo.add_region("r1")
        az = region.add_az("az-old", has_crypto_acceleration=False)
        assert not az.has_crypto_acceleration
