"""Tests for ``repro.serve``: the full job lifecycle over real HTTP.

Every test here drives a real asyncio server on an ephemeral port via
the blocking ``repro.serve.client`` — the same path CI's smoke job and
the examples use. Failure-path tests (worker death, timeouts) use
probe jobs, a test-only job kind the server must opt into with
``allow_probes``.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.runtime import cached_run
from repro.serve import (
    JobSpec,
    JobSpecError,
    JobStore,
    Scheduler,
    ServeAPI,
    ServeClient,
    ServeError,
    ServeMetrics,
    ServerBusy,
    background_server,
)


class _Server:
    """One live server + client, torn down with its scheduler."""

    def __init__(self, tmp_path, **scheduler_kwargs):
        scheduler_kwargs.setdefault("workers", 1)
        scheduler_kwargs.setdefault("queue_depth", 4)
        scheduler_kwargs.setdefault("default_timeout_s", 60.0)
        scheduler_kwargs.setdefault("allow_probes", True)
        scheduler_kwargs.setdefault("cache_dir",
                                    str(tmp_path / "serve-cache"))
        scheduler_kwargs.setdefault("artifacts_root",
                                    str(tmp_path / "artifacts"))
        self.store = JobStore()
        self.metrics = ServeMetrics()
        self.scheduler = Scheduler(self.store, self.metrics,
                                   **scheduler_kwargs)
        self.scheduler.start()
        self._ctx = background_server(
            ServeAPI(self.scheduler, self.store, self.metrics))
        host, port = self._ctx.__enter__()
        self.client = ServeClient(host, port)

    def close(self):
        self._ctx.__exit__(None, None, None)
        self.scheduler.stop(force=True)


@pytest.fixture
def server(tmp_path):
    handle = _Server(tmp_path)
    yield handle
    handle.close()


def _sleep_spec(seconds, **extra):
    spec = {"kind": "probe", "probe": "sleep", "probe_arg": seconds}
    spec.update(extra)
    return spec


def _wait_for_state(client, job_id, state, timeout=10.0):
    deadline = time.monotonic()  # simlint: ignore[DET001] test sequencing
    deadline += timeout
    while True:
        job = client.job(job_id)
        if job["state"] == state:
            return job
        if job["state"] in ("done", "failed"):
            raise AssertionError(
                f"job {job_id} reached {job['state']!r} before {state!r}")
        # simlint: ignore[DET001] test sequencing
        if time.monotonic() >= deadline:
            raise AssertionError(f"job {job_id} never reached {state!r}")
        time.sleep(0.02)


class TestJobSpec:
    def test_exhibit_spec_roundtrip(self):
        spec = JobSpec.from_payload({"kind": "exhibit", "exhibit": "fig17",
                                     "priority": 3})
        assert spec.exhibits == ("fig17",)
        assert spec.priority == 3

    def test_unknown_exhibit_lists_catalog(self):
        with pytest.raises(JobSpecError) as excinfo:
            JobSpec.from_payload({"kind": "exhibit", "exhibit": "bogus"})
        assert "bogus" in str(excinfo.value)
        assert "fig17" in str(excinfo.value)  # shares the --list catalog

    def test_unknown_field_and_kind_rejected(self):
        with pytest.raises(JobSpecError):
            JobSpec.from_payload({"kind": "exhibit", "exhibit": "fig17",
                                  "bogus_field": 1})
        with pytest.raises(JobSpecError):
            JobSpec.from_payload({"kind": "banana"})

    def test_dedupe_key_ignores_priority(self):
        low = JobSpec.from_payload({"kind": "exhibit", "exhibit": "fig17"})
        high = JobSpec.from_payload({"kind": "exhibit", "exhibit": "fig17",
                                     "priority": 9})
        assert low.dedupe_key() == high.dedupe_key()

    def test_faults_field_canonicalized_and_in_dedupe_key(self):
        chaos = JobSpec.from_payload({
            "kind": "exhibit", "exhibit": "fig17",
            "faults": [{"param": 2, "kind": "serve_worker_death"}]})
        plan = chaos.fault_plan()
        assert [f.kind for f in plan.faults] == ["serve_worker_death"]
        assert plan.faults[0].param == 2
        # Key order in the payload must not matter: the spec stores the
        # plan's canonical JSON, so equivalent payloads dedupe together.
        reordered = JobSpec.from_payload({
            "kind": "exhibit", "exhibit": "fig17",
            "faults": [{"kind": "serve_worker_death", "param": 2}]})
        assert chaos.faults == reordered.faults
        assert chaos.dedupe_key() == reordered.dedupe_key()
        clean = JobSpec.from_payload({"kind": "exhibit",
                                      "exhibit": "fig17"})
        assert clean.fault_plan() is None
        assert chaos.dedupe_key() != clean.dedupe_key()

    def test_faults_field_rejects_junk_and_probes(self):
        with pytest.raises(JobSpecError, match="not valid JSON"):
            JobSpec.from_payload({"kind": "exhibit", "exhibit": "fig17",
                                  "faults": "{nope"})
        with pytest.raises(JobSpecError, match="invalid fault plan"):
            JobSpec.from_payload({"kind": "exhibit", "exhibit": "fig17",
                                  "faults": [{"kind": "meteor_strike"}]})
        with pytest.raises(JobSpecError,
                           match="probe jobs cannot carry a fault plan"):
            JobSpec.from_payload({
                "kind": "probe", "probe": "ok",
                "faults": [{"kind": "serve_worker_death"}]})


class TestLifecycle:
    def test_submit_to_done_with_artifacts(self, server):
        job = server.client.submit({"kind": "exhibit", "exhibit": "fig17",
                                    "report": True})
        assert job["state"] in ("queued", "running")
        done = server.client.wait(job["id"], timeout=120)
        assert done["state"] == "done"
        assert done["attempts"] == 1
        assert done["result"][0]["exp_id"] == "fig17"
        # report jobs must write + index artifacts
        assert "fig17.report" in done["artifacts"]
        report = json.loads(server.client.artifact(
            done["artifacts"]["fig17.report"]))
        assert report["result"]["exp_id"] == "fig17"
        # full event log replayed over SSE, in lifecycle order
        names = [e["name"] for e in server.client.events(job["id"])]
        assert names[0] == "queued"
        assert "started" in names
        assert names[-1] == "done"
        assert names.index("queued") < names.index("started") \
            < names.index("done")

    def test_job_listing_and_unknown_job_404(self, server):
        job = server.client.submit(_sleep_spec(0.01))
        server.client.wait(job["id"], timeout=30)
        listed = [j["id"] for j in server.client.jobs()]
        assert job["id"] in listed
        with pytest.raises(ServeError) as excinfo:
            server.client.job("job-999999")
        assert excinfo.value.status == 404

    def test_cache_hit_fast_path(self, server, tmp_path):
        # Warm the cache out-of-band, as a prior run would have.
        cached_run("fig17", cache_dir=str(tmp_path / "serve-cache"))
        job = server.client.submit({"kind": "exhibit", "exhibit": "fig17"})
        # Satisfied at admission: already terminal in the POST response.
        assert job["cache_hit"] is True
        assert job["state"] == "done"
        assert job["attempts"] == 0  # never occupied a worker
        assert job["result"][0]["cache_hit"] is True
        assert server.metrics.value("serve_jobs_total", outcome="cache_hit",
                                    kind="exhibit") == 1

    def test_sweep_streams_progress_per_point(self, server):
        job = server.client.submit({
            "kind": "sweep", "exhibits": ["fig17", "fig3"],
            "use_cache": False})
        events = list(server.client.events(job["id"]))
        progress = [e for e in events if e["name"] == "progress"]
        assert [p["data"]["completed"] for p in progress] == [1, 2]
        assert progress[0]["data"]["total"] == 2
        # per-job-scoped telemetry snapshot travels with progress
        assert "telemetry" in progress[0]["data"]
        done = server.client.wait(job["id"], timeout=120)
        assert [r["exp_id"] for r in done["result"]] == ["fig17", "fig3"]

    def test_dedupe_coalesces_inflight(self, server):
        first = server.client.submit(_sleep_spec(0.5))
        second = server.client.submit(_sleep_spec(0.5))
        assert second["deduped"] is True
        assert second["id"] == first["id"]
        third = server.client.submit(_sleep_spec(0.5, dedupe=False))
        assert third["id"] != first["id"]
        server.client.wait(first["id"], timeout=30)
        server.client.wait(third["id"], timeout=30)

    def test_priority_orders_queued_jobs(self, server):
        # Worker busy; then queue low before high priority.
        busy = server.client.submit(_sleep_spec(0.4))
        _wait_for_state(server.client, busy["id"], "running")
        low = server.client.submit(_sleep_spec(0.05, priority=0,
                                               dedupe=False))
        high = server.client.submit(_sleep_spec(0.05, priority=5,
                                                dedupe=False))
        done_low = server.client.wait(low["id"], timeout=30)
        done_high = server.client.wait(high["id"], timeout=30)
        server.client.wait(busy["id"], timeout=30)
        assert done_high["started_unix"] < done_low["started_unix"]


class TestRobustness:
    def test_backpressure_429_with_retry_after(self, tmp_path):
        server = _Server(tmp_path, workers=1, queue_depth=1)
        try:
            busy = server.client.submit(_sleep_spec(1.0, dedupe=False))
            # Only once the worker holds the first job does the second
            # occupy the queue's single slot.
            _wait_for_state(server.client, busy["id"], "running")
            server.client.submit(_sleep_spec(1.0, dedupe=False))
            with pytest.raises(ServerBusy) as excinfo:
                server.client.submit(_sleep_spec(1.0, dedupe=False))
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after_s >= 1.0
            assert server.metrics.value("serve_jobs_total",
                                        outcome="rejected",
                                        kind="probe") == 1
        finally:
            server.close()

    def test_retry_after_header_rounds_up(self, tmp_path):
        """The advertised delay must never be shorter than the real one:
        a 1.2 s backpressure window must say Retry-After: 2, not 1."""
        from repro.serve.scheduler import QueueFullError
        server = _Server(tmp_path)
        try:
            def full(_spec):
                raise QueueFullError(depth=1, retry_after_s=1.2)
            server.scheduler.submit = full
            with pytest.raises(ServerBusy) as excinfo:
                server.client.submit(_sleep_spec(0.1, dedupe=False))
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after_s == 2.0
        finally:
            server.close()

    def test_retry_after_header_clamped(self):
        clamp = ServeClient._retry_after_delay
        assert clamp("2.5") == 2.5
        assert clamp("0") == 0.0
        # Missing, non-numeric (incl. HTTP-date), nan, and negative
        # values collapse to the default…
        assert clamp(None) == ServeClient.DEFAULT_RETRY_AFTER_S
        assert clamp("soon") == ServeClient.DEFAULT_RETRY_AFTER_S
        assert clamp("Wed, 21 Oct 2026 07:28:00 GMT") == \
            ServeClient.DEFAULT_RETRY_AFTER_S
        assert clamp("nan") == ServeClient.DEFAULT_RETRY_AFTER_S
        assert clamp("-5") == ServeClient.DEFAULT_RETRY_AFTER_S
        # …and huge or infinite delays hit the ceiling.
        assert clamp("inf") == ServeClient.MAX_RETRY_AFTER_S
        assert clamp("86400") == ServeClient.MAX_RETRY_AFTER_S

    def test_worker_death_fault_retries_then_succeeds(self, tmp_path):
        server = _Server(tmp_path, max_retries=2)
        try:
            job = server.client.submit({
                "kind": "exhibit", "exhibit": "fig19",
                "use_cache": False,
                "faults": [{"kind": "serve_worker_death", "param": 1}]})
            done = server.client.wait(job["id"], timeout=120)
            assert done["state"] == "done"
            assert done["attempts"] == 2  # attempt 1 killed by the plan
            assert done["result"][0]["exp_id"] == "fig19"
            names = [e["name"] for e in server.client.events(job["id"])]
            assert "retry" in names
            assert names.count("started") == 2
        finally:
            server.close()

    def test_retry_then_fail_on_crashing_worker(self, tmp_path):
        server = _Server(tmp_path, max_retries=1)
        try:
            job = server.client.submit({"kind": "probe", "probe": "crash"})
            done = server.client.wait(job["id"], timeout=60)
            assert done["state"] == "failed"
            assert done["attempts"] == 2  # first try + one retry
            assert "worker died" in done["error"]
            names = [e["name"] for e in server.client.events(job["id"])]
            assert names.count("started") == 2
            assert "retry" in names
            assert names[-1] == "failed"
            assert server.metrics.value("serve_retries_total") == 1
        finally:
            server.close()

    def test_job_exception_fails_without_retry(self, server):
        job = server.client.submit({"kind": "probe", "probe": "fail"})
        done = server.client.wait(job["id"], timeout=60)
        assert done["state"] == "failed"
        assert done["attempts"] == 1  # deterministic failure: no retry
        assert "RuntimeError" in done["error"]

    def test_per_job_timeout_kills_attempt(self, server):
        job = server.client.submit(_sleep_spec(30.0, timeout_s=0.3))
        done = server.client.wait(job["id"], timeout=60)
        assert done["state"] == "failed"
        assert "timed out" in done["error"]

    def test_probes_rejected_unless_enabled(self, tmp_path):
        server = _Server(tmp_path, allow_probes=False)
        try:
            with pytest.raises(ServeError) as excinfo:
                server.client.submit({"kind": "probe", "probe": "ok"})
            assert excinfo.value.status == 400
        finally:
            server.close()

    def test_graceful_drain_finishes_inflight(self, server):
        job = server.client.submit(_sleep_spec(0.5))
        _wait_for_state(server.client, job["id"], "running")
        server.scheduler.begin_drain()
        # New work is refused while draining...
        with pytest.raises(ServerBusy) as excinfo:
            server.client.submit(_sleep_spec(0.1, dedupe=False))
        assert excinfo.value.status == 503
        assert excinfo.value.retry_after_s > 0
        assert server.client.health()["state"] == "draining"
        # ...and drain blocks until the in-flight job finished cleanly.
        assert server.scheduler.drain(timeout=30) is True
        assert server.client.job(job["id"])["state"] == "done"


class TestObservability:
    def test_metrics_expose_queue_and_job_families(self, server):
        job = server.client.submit(_sleep_spec(0.01))
        server.client.wait(job["id"], timeout=30)
        text = server.client.metrics()
        assert "# TYPE serve_queue_depth gauge" in text
        assert "# TYPE serve_jobs_running gauge" in text
        assert 'serve_jobs_total{kind="probe",outcome="done"} 1' in text
        assert "serve_job_wall_seconds_bucket" in text
        assert "serve_http_requests_total" in text

    def test_healthz_counts_jobs(self, server):
        job = server.client.submit(_sleep_spec(0.01))
        server.client.wait(job["id"], timeout=30)
        health = server.client.health()
        assert health["status"] == "ok"
        assert health["state"] == "serving"
        assert health["jobs"]["done"] == 1

    def test_trace_endpoint_serves_collected_traces(self, server):
        job = server.client.submit({"kind": "exhibit",
                                    "exhibit": "trace_breakdown",
                                    "report": True})
        done = server.client.wait(job["id"], timeout=120)
        assert done["state"] == "done"
        assert "trace_breakdown.traces" in done["artifacts"]
        payload = server.client.trace(job["id"])
        assert payload["job_id"] == job["id"]
        traces = payload["traces"]["trace_breakdown"]["traces"]
        assert traces and all(t["spans"] for t in traces)
        coverages = {t["coverage"] for t in traces}
        assert "full" in coverages  # at least one e2e canal trace
        assert payload["traces"]["trace_breakdown"]["fault_marks"]

    def test_trace_endpoint_404s_without_traces(self, server):
        with pytest.raises(ServeError) as err:
            server.client.trace("nope")
        assert err.value.status == 404
        # A report job whose exhibit never traces also 404s.
        job = server.client.submit({"kind": "exhibit", "exhibit": "table1",
                                    "report": True})
        server.client.wait(job["id"], timeout=120)
        with pytest.raises(ServeError) as err:
            server.client.trace(job["id"])
        assert err.value.status == 404

    def test_artifact_traversal_is_blocked(self, server):
        os.makedirs(server.scheduler.artifacts_root(), exist_ok=True)
        with pytest.raises(ServeError) as excinfo:
            server.client.artifact("/artifacts/../../etc/passwd")
        assert excinfo.value.status == 404


class TestServeCLI:
    def test_boot_submit_sigterm_drain(self, tmp_path):
        """The CI smoke scenario: ephemeral port, real job, clean drain."""
        src_root = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + os.pathsep + \
            env.get("PYTHONPATH", "")
        port_file = tmp_path / "port"
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.serve", "--port", "0",
             "--port-file", str(port_file), "--workers", "1",
             "--cache-dir", str(tmp_path / "cache")],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            env=env, text=True)
        try:
            client = None
            deadline_attempts = 300  # ~30s of 0.1s polls for slow imports
            for _attempt in range(deadline_attempts):
                if port_file.exists() and port_file.read_text():
                    client = ServeClient("127.0.0.1",
                                         int(port_file.read_text()))
                    break
                if process.poll() is not None:
                    break
                time.sleep(0.1)
            assert client is not None, "server never wrote its port file"
            job = client.submit({"kind": "exhibit", "exhibit": "fig3"})
            done = client.wait(job["id"], timeout=60)
            assert done["state"] == "done"
            assert "serve_jobs_total" in client.metrics()
            process.send_signal(signal.SIGTERM)
            output, _ = process.communicate(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate(timeout=30)
        assert process.returncode == 0
        assert "drain complete" in output
        assert "1 done, 0 failed" in output
