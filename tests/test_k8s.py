"""Tests for the Kubernetes-like cluster substrate."""

import pytest

from repro.k8s import (
    Cluster,
    Container,
    PodPhase,
    ResourceRequest,
    SchedulingError,
)
from repro.netsim import Topology


@pytest.fixture
def cluster():
    topo = Topology.single_az_testbed(worker_nodes=2)
    return Cluster("test", topo.all_nodes())


class TestScheduling:
    def test_pods_spread_over_workers(self, cluster):
        for i in range(10):
            cluster.create_pod(f"p{i}")
        per_node = {n.name: len(n.pods) for n in cluster.worker_nodes}
        assert set(per_node.values()) == {5}

    def test_master_gets_no_pods(self, cluster):
        for i in range(6):
            cluster.create_pod(f"p{i}")
        master = cluster.node_by_name("master")
        assert master.pods == []

    def test_scheduling_error_when_full(self):
        topo = Topology.single_az_testbed(worker_nodes=1)
        small = Cluster("small", topo.all_nodes(),
                        node_cpu_millicores=250, node_memory_mb=10_000)
        small.create_pod("fits", resources=ResourceRequest(200, 64))
        with pytest.raises(SchedulingError):
            small.create_pod("too-big", resources=ResourceRequest(100, 64))

    def test_pod_gets_unique_ip(self, cluster):
        a = cluster.create_pod("a")
        b = cluster.create_pod("b")
        assert a.ip != b.ip
        assert cluster.vpc.owner_of(a.ip) == "a"


class TestLifecycle:
    def test_create_pod_running(self, cluster):
        pod = cluster.create_pod("p")
        assert pod.phase is PodPhase.RUNNING
        assert pod.node_name in {"worker1", "worker2"}

    def test_delete_pod_frees_node(self, cluster):
        pod = cluster.create_pod("p")
        node = cluster.node_by_name(pod.node_name)
        cluster.delete_pod("p")
        assert pod.phase is PodPhase.TERMINATED
        assert pod not in node.pods

    def test_delete_unknown_raises(self, cluster):
        with pytest.raises(KeyError):
            cluster.delete_pod("ghost")

    def test_watch_events(self, cluster):
        events = []
        cluster.watch(events.append)
        cluster.create_pod("p")
        cluster.delete_pod("p")
        assert [(e.kind, e.action) for e in events] == [
            ("pod", "added"), ("pod", "deleted")]

    def test_admission_hook_mutates_pod(self, cluster):
        def inject(pod):
            pod.containers.append(Container("sidecar", is_sidecar=True))

        cluster.add_admission_hook(inject)
        pod = cluster.create_pod("p")
        assert pod.sidecar is not None


class TestDeployments:
    def test_create_deployment_scales_up(self, cluster):
        deploy = cluster.create_deployment("web", replicas=4)
        assert deploy.running_replicas == 4
        assert cluster.pod_count == 4

    def test_scale_down_removes_pods(self, cluster):
        cluster.create_deployment("web", replicas=4)
        cluster.scale_deployment("web", 2)
        assert cluster.pod_count == 2

    def test_negative_replicas_rejected(self, cluster):
        cluster.create_deployment("web", replicas=1)
        with pytest.raises(ValueError):
            cluster.scale_deployment("web", -1)

    def test_duplicate_deployment_rejected(self, cluster):
        cluster.create_deployment("web", replicas=1)
        with pytest.raises(ValueError):
            cluster.create_deployment("web", replicas=1)


class TestServices:
    def test_endpoints_match_selector(self, cluster):
        cluster.create_deployment("web", replicas=3, labels={"app": "web"})
        cluster.create_deployment("db", replicas=2, labels={"app": "db"})
        cluster.create_service("web", selector={"app": "web"})
        assert len(cluster.endpoints("web")) == 3

    def test_endpoints_track_scaling(self, cluster):
        cluster.create_deployment("web", replicas=3, labels={"app": "web"})
        cluster.create_service("web", selector={"app": "web"})
        cluster.scale_deployment("web", 1)
        assert len(cluster.endpoints("web")) == 1

    def test_service_gets_cluster_ip(self, cluster):
        service = cluster.create_service("web", selector={"app": "web"})
        assert service.cluster_ip is not None

    def test_duplicate_service_rejected(self, cluster):
        cluster.create_service("web", selector={})
        with pytest.raises(ValueError):
            cluster.create_service("web", selector={})


class TestResourceAccounting:
    def test_sidecar_vs_app_split(self, cluster):
        def inject(pod):
            pod.containers.append(Container(
                "sidecar", resources=ResourceRequest(100, 340),
                is_sidecar=True))

        cluster.add_admission_hook(inject)
        cluster.create_deployment("web", replicas=10,
                                  resources=ResourceRequest(800, 1024))
        usage = cluster.resource_usage()
        assert usage["sidecar_cpu_millicores"] == 1000
        assert usage["app_cpu_millicores"] == 8000
        assert usage["sidecar_memory_mb"] == 3400

    def test_pod_total_resources(self, cluster):
        pod = cluster.create_pod("p", resources=ResourceRequest(500, 256))
        pod.containers.append(Container(
            "sc", resources=ResourceRequest(100, 128), is_sidecar=True))
        total = pod.total_resources
        assert total.cpu_millicores == 600
        assert pod.app_resources.cpu_millicores == 500
