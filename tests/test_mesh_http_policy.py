"""Tests for L7 routing and zero-trust policy objects."""

import random

import pytest

from repro.mesh import (
    AuthorizationPolicy,
    AuthorizationTable,
    HttpMatch,
    HttpRequest,
    RateLimiter,
    RouteError,
    RouteRule,
    RouteTable,
    WeightedDestination,
)


@pytest.fixture
def rng():
    return random.Random(0)


class TestHttpMatch:
    def test_path_prefix(self):
        match = HttpMatch(path_prefix="/api")
        assert match.matches(HttpRequest(path="/api/users"))
        assert not match.matches(HttpRequest(path="/web"))

    def test_header_clause(self):
        match = HttpMatch(headers=(("x-canary", "true"),))
        assert match.matches(HttpRequest(
            headers={"x-canary": "true", "other": "x"}))
        assert not match.matches(HttpRequest(headers={}))

    def test_method_clause(self):
        match = HttpMatch(method="POST")
        assert match.matches(HttpRequest(method="POST"))
        assert not match.matches(HttpRequest(method="GET"))

    def test_clauses_are_anded(self):
        match = HttpMatch(path_prefix="/api", method="GET")
        assert not match.matches(HttpRequest(path="/api", method="POST"))


class TestRouteRule:
    def test_needs_destinations(self):
        with pytest.raises(ValueError):
            RouteRule(HttpMatch(), destinations=())

    def test_zero_total_weight_rejected(self):
        with pytest.raises(ValueError):
            RouteRule(HttpMatch(),
                      destinations=(WeightedDestination("v1", 0),))

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            WeightedDestination("v1", -1)

    def test_weighted_split_converges(self, rng):
        """A 90/10 canary split lands near 90/10 — the paper's
        percentage-based traffic splitting."""
        rule = RouteRule(HttpMatch(), destinations=(
            WeightedDestination("v1", 90), WeightedDestination("v2", 10)))
        picks = [rule.pick_destination(rng) for _ in range(5000)]
        share_v2 = picks.count("v2") / len(picks)
        assert 0.07 < share_v2 < 0.13


class TestRouteTable:
    def _table(self):
        table = RouteTable("svc")
        table.add_rule(RouteRule(
            HttpMatch(path_prefix="/v2"),
            destinations=(WeightedDestination("canary"),), name="canary"))
        table.add_rule(RouteRule(
            HttpMatch(), destinations=(WeightedDestination("stable"),)))
        return table

    def test_first_match_wins(self, rng):
        table = self._table()
        assert table.route(HttpRequest(path="/v2/x"), rng) == "canary"
        assert table.route(HttpRequest(path="/other"), rng) == "stable"

    def test_no_match_raises(self, rng):
        table = RouteTable("svc", [RouteRule(
            HttpMatch(path_prefix="/only"),
            destinations=(WeightedDestination("v1"),))])
        with pytest.raises(RouteError):
            table.route(HttpRequest(path="/nope"), rng)

    def test_config_size_grows_with_rules(self):
        small = self._table()
        big = self._table()
        big.add_rule(RouteRule(HttpMatch(headers=(("a", "b"),)),
                               destinations=(WeightedDestination("x"),)))
        assert big.config_size_bytes() > small.config_size_bytes()


class TestAuthorization:
    def _table(self):
        table = AuthorizationTable()
        table.add(AuthorizationPolicy(
            service="payments",
            allowed_identities=("spiffe://t1/frontend",),
            allowed_methods=("GET", "POST")))
        return table

    def test_allowed_identity_passes(self):
        table = self._table()
        request = HttpRequest(source_identity="spiffe://t1/frontend")
        assert table.check("payments", request)

    def test_unknown_identity_denied(self):
        table = self._table()
        request = HttpRequest(source_identity="spiffe://t1/attacker")
        assert not table.check("payments", request)

    def test_disallowed_method_denied(self):
        table = self._table()
        request = HttpRequest(method="DELETE",
                              source_identity="spiffe://t1/frontend")
        assert not table.check("payments", request)

    def test_service_without_rules_is_open(self):
        table = self._table()
        assert table.check("unprotected", HttpRequest())

    def test_config_size(self):
        assert self._table().config_size_bytes() > 0


class TestRateLimiter:
    def test_admits_within_rate(self):
        limiter = RateLimiter(rate_per_s=10.0)
        assert all(limiter.allow(now=0.0) for _ in range(10))

    def test_drops_beyond_burst(self):
        limiter = RateLimiter(rate_per_s=10.0)
        for _ in range(10):
            limiter.allow(0.0)
        assert not limiter.allow(0.0)
        assert limiter.dropped == 1

    def test_refills_over_time(self):
        limiter = RateLimiter(rate_per_s=10.0)
        for _ in range(10):
            limiter.allow(0.0)
        assert limiter.allow(1.0)  # 10 tokens refilled after 1 s

    def test_time_must_advance(self):
        limiter = RateLimiter(rate_per_s=1.0)
        limiter.allow(5.0)
        with pytest.raises(ValueError):
            limiter.allow(4.0)

    def test_set_rate_relaxes(self):
        limiter = RateLimiter(rate_per_s=1.0)
        limiter.set_rate(100.0)
        assert limiter.rate_per_s == 100.0

    def test_positive_rate_required(self):
        with pytest.raises(ValueError):
            RateLimiter(rate_per_s=0.0)
