"""Tests for the proxyless mode (Appendix B)."""

import pytest

from repro.core import (
    EniLimitExceeded,
    EniRegistry,
    ProxylessCanalMesh,
)
from repro.k8s import Cluster
from repro.mesh import HttpRequest
from repro.mesh.base import MeshError
from repro.netsim import Topology
from repro.simcore import Simulator


def build_proxyless(seed=7, **mesh_kwargs):
    sim = Simulator(seed)
    topo = Topology.single_az_testbed(worker_nodes=2)
    cluster = Cluster("testbed", topo.all_nodes())
    mesh = ProxylessCanalMesh(sim, **mesh_kwargs)
    mesh.attach(cluster)
    for index in range(3):
        cluster.create_deployment(f"svc{index}", replicas=5,
                                  labels={"app": f"svc{index}"})
        cluster.create_service(f"svc{index}",
                               selector={"app": f"svc{index}"})
    return sim, cluster, mesh


def one_request(sim, cluster, mesh, service="svc1"):
    client = cluster.pods["svc0-1"]

    def scenario():
        connection = yield sim.process(
            mesh.open_connection(client, service))
        response = yield sim.process(
            mesh.request(connection, HttpRequest()))
        return connection, response

    process = sim.process(scenario())
    sim.run()
    return process.value


class TestEniRegistry:
    def test_allocation_per_pod(self):
        sim, cluster, mesh = build_proxyless()
        pod = cluster.pods["svc0-1"]
        assert mesh.enis.eni_of(pod.name) is not None

    def test_per_node_limit_hit(self):
        """The paper's first proxyless issue: the interface limit is
        easily hit as containers grow."""
        sim = Simulator(0)
        topo = Topology.single_az_testbed(worker_nodes=1)
        cluster = Cluster("small", topo.all_nodes())
        mesh = ProxylessCanalMesh(sim, eni_registry=EniRegistry(
            max_per_node=3))
        mesh.attach(cluster)
        cluster.create_pod("p1")
        cluster.create_pod("p2")
        cluster.create_pod("p3")
        with pytest.raises(EniLimitExceeded):
            cluster.create_pod("p4")

    def test_eni_memory_accounting(self):
        """The second issue: each interface costs node memory."""
        registry = EniRegistry(memory_mb_per_eni=16)
        sim, cluster, mesh = build_proxyless(eni_registry=registry)
        pods_on_w1 = sum(1 for p in cluster.pods.values()
                         if p.node_name == "worker1")
        assert registry.node_memory_mb("worker1") == 16 * pods_on_w1

    def test_release_frees_slot(self):
        registry = EniRegistry(max_per_node=2)
        sim = Simulator(0)
        topo = Topology.single_az_testbed(worker_nodes=1)
        cluster = Cluster("small", topo.all_nodes())
        mesh = ProxylessCanalMesh(sim, eni_registry=registry)
        mesh.attach(cluster)
        cluster.create_pod("p1")
        cluster.create_pod("p2")
        cluster.delete_pod("p1")
        cluster.create_pod("p3")  # slot freed

    def test_authentication_checks_token(self):
        registry = EniRegistry()
        sim, cluster, mesh = build_proxyless(eni_registry=registry)
        pod = cluster.pods["svc0-1"]
        eni = registry.eni_of(pod.name)
        assert registry.authenticate(pod.name, eni.auth_token)
        assert not registry.authenticate(pod.name, "forged")
        assert not registry.authenticate("ghost-pod", eni.auth_token)


class TestProxylessDataplane:
    def test_request_succeeds(self):
        sim, cluster, mesh = build_proxyless()
        _conn, response = one_request(sim, cluster, mesh)
        assert response.ok

    def test_zero_user_cluster_cpu(self):
        """The whole point: not even an on-node proxy's CPU remains."""
        sim, cluster, mesh = build_proxyless()
        one_request(sim, cluster, mesh)
        assert mesh.user_tiers() == []
        assert mesh.user_cpu_seconds() == 0.0
        assert mesh.infra_cpu_seconds() > 0.0

    def test_dns_redirection_recorded(self):
        sim, cluster, mesh = build_proxyless()
        assert "svc1" in mesh.dns_redirections
        assert mesh.dns_redirections["svc1"].endswith(".mesh.gateway")

    def test_observability_is_partial(self):
        sim, cluster, mesh = build_proxyless()
        assert mesh.observability_coverage == "partial"

    def test_faster_than_nothing_but_uses_gateway(self):
        sim, cluster, mesh = build_proxyless()
        _conn, response = one_request(sim, cluster, mesh)
        replicas = [r for b in mesh.gateway.all_backends
                    for r in b.replicas]
        assert sum(r.requests_served for r in replicas) == 1

    def test_pod_without_eni_rejected(self):
        sim, cluster, mesh = build_proxyless()
        pod = cluster.pods["svc0-1"]
        mesh.enis.release(pod.name)

        def scenario():
            yield sim.process(mesh.open_connection(pod, "svc1"))

        sim.process(scenario())
        with pytest.raises(MeshError, match="ENI"):
            sim.run()

    def test_throttle_applies(self):
        sim, cluster, mesh = build_proxyless()
        sid = mesh.tenant_service("svc1").service_id
        mesh.gateway.throttle_service(sid, 0.001)
        client = cluster.pods["svc0-1"]

        def scenario():
            connection = yield sim.process(
                mesh.open_connection(client, "svc1"))
            first = yield sim.process(
                mesh.request(connection, HttpRequest()))
            second = yield sim.process(
                mesh.request(connection, HttpRequest()))
            return [first.status, second.status]

        process = sim.process(scenario())
        sim.run()
        assert 429 in process.value

    def test_gateway_outage_503(self):
        sim, cluster, mesh = build_proxyless()
        for backend in mesh.gateway.all_backends:
            backend.fail_all()
        _conn, response = one_request(sim, cluster, mesh)
        assert response.status == 503

    def test_lower_latency_than_full_canal(self):
        """No on-node processing → slightly lower latency (at the cost
        of observability and zero-trust depth)."""
        from repro.experiments.testbed import build_testbed
        sim, cluster, mesh = build_proxyless()
        _conn, proxyless_resp = one_request(sim, cluster, mesh)
        run = build_testbed("canal")

        def scenario():
            connection = yield run.sim.process(
                run.mesh.open_connection(run.client_pod, "svc1"))
            response = yield run.sim.process(
                run.mesh.request(connection, HttpRequest()))
            return response

        process = run.sim.process(scenario())
        run.sim.run()
        assert proxyless_resp.latency_s <= process.value.latency_s
