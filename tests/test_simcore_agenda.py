"""Agenda engines: heap-vs-calendar order equivalence, auto migration,
spill/rebuild mechanics, snapshot/fork, and the timeout slab."""

import pickle
import random

import pytest

from repro.simcore import (
    CalendarAgenda,
    EmptySchedule,
    HeapAgenda,
    SimulationError,
    Simulator,
    Timeout,
    set_default_agenda_kind,
)
from repro.simcore import sim as simmod

KINDS = ("heap", "calendar", "auto")


# ---------------------------------------------------------------------------
# agenda-level: the two structures must pop the exact same total order.


def _random_ops(rng, npushes):
    """An interleaved push/pop schedule with bursts and far outliers."""
    ops = []
    outstanding = 0
    seq = 0
    now = 0.0
    while seq < npushes:
        if outstanding and rng.random() < 0.4:
            ops.append(("pop",))
            outstanding -= 1
            continue
        roll = rng.random()
        if roll < 0.15:
            when = now + rng.choice([1.0, 2.0, 5.0])  # same-when bursts
        elif roll < 0.25:
            when = now + 3600.0 + rng.random() * 86_400.0  # far future
        else:
            when = now + rng.random() * 3.0
        seq += 1
        ops.append(("push", (when, seq, None, None)))
        outstanding += 1
        now += rng.random() * 0.01
    ops.extend([("pop",)] * outstanding)
    return ops


class TestAgendaEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 7, 42])
    def test_randomized_interleaved_order(self, seed):
        rng = random.Random(seed)
        ops = _random_ops(rng, 1_500)
        reference = HeapAgenda()
        calendar = CalendarAgenda(nbuckets=8, target_occupancy=2.0)
        for op in ops:
            assert calendar.peek() == reference.peek()
            assert len(calendar) == len(reference)
            if op[0] == "push":
                reference.push(op[1])
                calendar.push(op[1])
            else:
                assert calendar.pop() == reference.pop()
        assert len(calendar) == len(reference) == 0
        assert calendar.peek() == reference.peek() == float("inf")

    def test_far_future_spill_path_runs(self):
        rng = random.Random(3)
        reference = HeapAgenda()
        calendar = CalendarAgenda()
        seq = 0
        for _ in range(9_000):  # near mode, inside the density sample
            seq += 1
            entry = (rng.random(), seq, None, None)
            reference.push(entry)
            calendar.push(entry)
        for _ in range(3_000):  # sparse far tail
            seq += 1
            entry = (3600.0 + rng.random() * 86_400.0, seq, None, None)
            reference.push(entry)
            calendar.push(entry)
        for _ in range(9_000):
            assert calendar.pop() == reference.pop()
        # The near mode is drained; the whole far tail must still be
        # pending, and the bimodal distribution must not have widened
        # the buckets to "one bucket swallows the near mode".
        assert len(calendar) == 3_000
        assert calendar.spilled >= 3_000
        assert calendar.rebuilds >= 1
        assert calendar.stats()["width"] < 60.0
        while len(reference):
            assert calendar.pop() == reference.pop()

    def test_same_when_entries_pop_in_seq_order(self):
        calendar = CalendarAgenda()
        entries = [(2.0, seq, None, None) for seq in range(50)]
        shuffled = entries[:]
        random.Random(5).shuffle(shuffled)
        for entry in shuffled:
            calendar.push(entry)
        assert [calendar.pop() for _ in range(50)] == entries

    def test_empty_agenda(self):
        calendar = CalendarAgenda()
        assert calendar.peek() == float("inf")
        assert len(calendar) == 0
        with pytest.raises(IndexError):
            calendar.pop()

    def test_bad_nbuckets_rejected(self):
        with pytest.raises(ValueError):
            CalendarAgenda(nbuckets=0)

    def test_pickle_mid_consumption(self):
        rng = random.Random(11)
        calendar = CalendarAgenda(nbuckets=8, target_occupancy=2.0)
        reference = HeapAgenda()
        for seq in range(400):
            entry = (rng.random() * 10.0, seq, None, None)
            calendar.push(entry)
            reference.push(entry)
        for _ in range(150):
            assert calendar.pop() == reference.pop()
        restored = pickle.loads(pickle.dumps(calendar))
        assert len(restored) == len(reference)
        while len(reference):
            expected = reference.pop()
            assert calendar.pop() == expected
            assert restored.pop() == expected


# ---------------------------------------------------------------------------
# sim-level: every engine kind runs the same workload identically.


def _mixed_workload(sim, log):
    """Jittered re-arming timers, a same-instant burst, zero-delay
    chains, and far-future timers past the horizon."""
    rng = random.Random(99)

    def rearm(event):
        log.append((sim.now, "tick", event.value))
        if sim.now < 25.0:
            sim.timeout(0.5 + rng.random(), event.value).add_callback(rearm)

    def burst(event):
        log.append((sim.now, "burst", event.value))

    def chain(event):
        sim.timeout(0.0, "z").add_callback(
            lambda ev: log.append((sim.now, "zero", ev.value)))

    for index in range(40):
        sim.timeout(rng.random() * 2.0, index).add_callback(rearm)
    for index in range(25):
        sim.timeout(5.0, 100 + index).add_callback(burst)
    for index in range(10):
        sim.timeout(3600.0 + rng.random() * 100.0,
                    200 + index).add_callback(burst)
    sim.timeout(1.0).add_callback(chain)


def _run_workload(kind):
    sim = Simulator(seed=1, agenda=kind)
    log = []
    _mixed_workload(sim, log)
    sim.run(until=30.0)
    return sim, log


class TestEngineEquivalence:
    def test_all_kinds_identical_logs(self):
        sims_and_logs = {kind: _run_workload(kind) for kind in KINDS}
        heap_log = sims_and_logs["heap"][1]
        assert len(heap_log) > 500
        for kind in ("calendar", "auto"):
            assert sims_and_logs[kind][1] == heap_log
        for kind, (sim, _) in sims_and_logs.items():
            assert sim.now == 30.0

    def test_auto_migrates_and_stays_identical(self, monkeypatch):
        monkeypatch.setattr(simmod, "_AUTO_MIGRATE", 40)
        sim, log = _run_workload("auto")
        assert sim.agenda_kind == "calendar"  # the trip point fired
        assert sim._heap is None
        assert log == _run_workload("heap")[1]

    def test_auto_starts_on_heap(self):
        sim = Simulator(agenda="auto")
        assert sim.agenda_kind == "heap"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Simulator(agenda="btree")
        with pytest.raises(ValueError):
            set_default_agenda_kind("btree")

    def test_default_kind_roundtrip(self):
        previous = set_default_agenda_kind("calendar")
        try:
            assert Simulator().agenda_kind == "calendar"
        finally:
            set_default_agenda_kind(previous)

    @pytest.mark.parametrize("kind", KINDS)
    def test_run_until_boundary(self, kind):
        sim = Simulator(agenda=kind)
        fired = []
        sim.timeout(1.0, "a").add_callback(lambda ev: fired.append(ev.value))
        sim.timeout(2.0, "b").add_callback(lambda ev: fired.append(ev.value))
        sim.timeout(2.5, "c").add_callback(lambda ev: fired.append(ev.value))
        sim.run(until=2.0)
        assert fired == ["a", "b"]  # events at exactly `until` fire
        assert sim.now == 2.0
        with pytest.raises(ValueError):
            sim.run(until=1.0)
        sim.run()
        assert fired == ["a", "b", "c"]

    @pytest.mark.parametrize("kind", KINDS)
    def test_step_and_peek(self, kind):
        sim = Simulator(agenda=kind)
        fired = []
        for delay in (2.0, 1.0, 1.0):
            sim.timeout(delay, delay).add_callback(
                lambda ev: fired.append(ev.value))
        assert sim.peek() == 1.0
        sim.step()
        assert sim.now == 1.0 and fired == [1.0]
        sim.step()
        sim.step()
        assert fired == [1.0, 1.0, 2.0]
        assert sim.peek() == float("inf")
        with pytest.raises(EmptySchedule):
            sim.step()


# ---------------------------------------------------------------------------
# snapshot / fork.


class _Ticker:
    """A picklable re-arming timer (module level so pickle finds it)."""

    def __init__(self, sim, rng, value):
        self.sim = sim
        self.rng = rng
        self.value = value
        self.fired = []
        sim.timeout(rng.random(), value).add_callback(self.fire)

    def fire(self, event):
        self.fired.append((self.sim.now, event.value))
        self.sim.timeout(0.5 + self.rng.random(),
                         self.value).add_callback(self.fire)


def _ticker_world(kind="auto"):
    sim = Simulator(seed=3, agenda=kind)
    rng = random.Random(17)
    sim._tickers = [_Ticker(sim, rng, index) for index in range(30)]
    return sim


class TestSnapshotFork:
    @pytest.mark.parametrize("kind", KINDS)
    def test_fork_is_deterministic(self, kind):
        sim = _ticker_world(kind)
        sim.run(until=5.0)
        fork = sim.fork()
        assert fork.now == 5.0
        sim.run(until=12.0)
        fork.run(until=12.0)
        assert ([t.fired for t in fork._tickers]
                == [t.fired for t in sim._tickers])

    def test_fork_diverges_after_restore(self):
        sim = _ticker_world()
        sim.run(until=3.0)
        fork = sim.fork()
        fork.run(until=6.0)
        before = [list(t.fired) for t in sim._tickers]
        assert [t.fired for t in sim._tickers] == before  # original untouched
        assert sum(len(t.fired) for t in fork._tickers) > \
            sum(len(f) for f in before)

    def test_generator_world_is_not_snapshotable(self):
        sim = Simulator(seed=0)

        def proc():
            yield sim.timeout(1.0)

        sim.process(proc())
        with pytest.raises(SimulationError, match="picklable world"):
            sim.snapshot()

    def test_snapshot_drops_slab_and_profiler(self):
        sim = _ticker_world()
        sim.run(until=10.0)
        assert sim._timeout_slab  # warm: recycled timeouts present
        fork = sim.fork()
        assert fork._timeout_slab == []


# ---------------------------------------------------------------------------
# the timeout slab and the shared constructor (satellite of the engine PR).


_TIMEOUT_FIELDS = ("sim", "_value", "_ok", "_defused", "delay")


class TestTimeoutSlab:
    def test_constructor_paths_identical_state(self):
        sim_a, sim_b = Simulator(seed=0), Simulator(seed=0)
        public = Timeout(sim_a, 2.5, "payload")
        fast = sim_b.timeout(2.5, "payload")
        for name in _TIMEOUT_FIELDS:
            assert (getattr(public, name) is getattr(public, name))
        assert public.delay == fast.delay == 2.5
        assert public._value == fast._value == "payload"
        assert public._ok is fast._ok is True
        assert public._defused is fast._defused is False
        assert public.callbacks == fast.callbacks == []
        assert public.sim is sim_a and fast.sim is sim_b
        # Both paths actually scheduled the event.
        for sim, timeout in ((sim_a, public), (sim_b, fast)):
            fired = []
            timeout.add_callback(lambda ev: fired.append(sim.now))
            sim.run()
            assert fired == [2.5]

    def test_recycled_state_matches_fresh(self):
        sim = Simulator(seed=0)
        sim.timeout(1.0, "old")
        sim.run()
        assert len(sim._timeout_slab) == 1
        recycled_id = id(sim._timeout_slab[0])
        reused = sim.timeout(2.0, "new")
        assert id(reused) == recycled_id  # the slab really was drawn
        assert not sim._timeout_slab
        assert reused.callbacks == []     # and carried no stale state
        assert reused._value == "new"
        assert reused.delay == 2.0

    @pytest.mark.parametrize("kind", ("heap", "calendar"))
    def test_slab_fills_on_both_engines(self, kind):
        sim = Simulator(seed=0, agenda=kind)
        for index in range(20):
            sim.timeout(float(index) + 1.0)
        sim.run()
        assert len(sim._timeout_slab) == 20

    def test_model_held_timeout_is_not_recycled(self):
        sim = Simulator(seed=0)
        held = sim.timeout(1.0, "keep")
        sim.run()
        assert held not in sim._timeout_slab
        assert held.value == "keep"  # value survives for the holder

    def test_negative_delay_rejected_on_both_paths(self):
        sim = Simulator(seed=0)
        with pytest.raises(ValueError):
            sim.timeout(-1.0)
        with pytest.raises(ValueError):
            Timeout(sim, -1.0)

    def test_slab_is_capped(self):
        sim = Simulator(seed=0)
        for _ in range(simmod._SLAB_CAP + 50):
            sim.timeout(1.0)
        sim.run()
        assert len(sim._timeout_slab) == simmod._SLAB_CAP
