"""Tests for the ablation studies."""

import pytest

from repro.experiments.ablations import (
    ablation_chain_length,
    ablation_ebpf_nagle,
    ablation_health_aggregation_levels,
    ablation_incremental_push,
    ablation_precise_vs_blind_scaling,
    ablation_shuffle_sharding,
    ablation_tunnel_count,
)


class TestShardingAblation:
    def test_shuffle_sharding_eliminates_collateral(self):
        result = ablation_shuffle_sharding()
        assert result.findings["shuffled_collateral"] == 0.0
        assert result.findings["naive_collateral"] >= 1.0


class TestChainAblation:
    def test_canal_chains_survive_cascades(self):
        result = ablation_chain_length()
        assert result.findings["kept_fraction_chain4"] == 1.0

    def test_beamer_chains_lose_sessions(self):
        result = ablation_chain_length()
        assert result.findings["kept_fraction_chain2"] < 1.0


class TestHealthAblation:
    def test_levels_compound(self):
        result = ablation_health_aggregation_levels()
        table = result.tables[0]
        reductions = table.column("reduction")
        assert reductions == sorted(reductions)
        assert result.findings["full_reduction"] > 0.996


class TestNagleAblation:
    def test_saving_only_below_mss(self):
        result = ablation_ebpf_nagle()
        assert result.findings["small_packet_ctx_saving"] > 0.5
        assert result.findings["large_packet_ctx_saving"] == 0.0

    def test_saving_monotone_in_size(self):
        result = ablation_ebpf_nagle()
        with_nagle = result.series_named("ctx_per_s_nagle").ys
        without = result.series_named("ctx_per_s_no_nagle").ys
        savings = [1 - a / b for a, b in zip(with_nagle, without)]
        assert savings == sorted(savings, reverse=True)


class TestScalingAblation:
    def test_precise_beats_blind(self):
        result = ablation_precise_vs_blind_scaling()
        assert result.findings["precise_ops"] < result.findings["blind_ops"]
        assert (result.findings["precise_time_s"]
                < result.findings["blind_time_s"])


class TestTunnelAblation:
    def test_more_tunnels_better_balance(self):
        result = ablation_tunnel_count()
        table = result.tables[0]
        imbalance = table.column("core_imbalance")
        assert imbalance[-1] <= imbalance[0]

    def test_session_reduction(self):
        result = ablation_tunnel_count()
        assert result.findings["session_reduction_at_10x"] > 0.999


class TestIncrementalAblation:
    def test_gap_grows_with_cluster(self):
        result = ablation_incremental_push(pod_counts=(100, 400))
        assert (result.findings["full_over_incremental_large"]
                > result.findings["full_over_incremental_small"])


class TestPeakShavingAblation:
    def test_staggered_saves_synchronized_does_not(self):
        from repro.experiments.ablations import ablation_peak_shaving
        result = ablation_peak_shaving()
        assert result.findings["saving_staggered"] > 0.3
        assert result.findings["saving_synchronized"] < 0.1


class TestSensitivityStudies:
    def test_orderings_robust_to_calibration(self):
        from repro.experiments.sensitivity import (
            sensitivity_cost_calibration)
        result = sensitivity_cost_calibration(scales=(0.7, 1.3))
        assert result.findings["ordering_holds_everywhere"] == 1.0

    def test_lb_disaggregation_bands(self):
        from repro.experiments.sensitivity import lb_disaggregation_latency
        result = lb_disaggregation_latency()
        assert (result.findings["disaggregated_p90_ms"]
                < result.findings["dedicated_p10_ms"])
