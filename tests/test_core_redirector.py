"""Tests for the Beamer-style redirector and disaggregated LB."""

import pytest

from repro.core import BucketTable, DisaggregatedLB, FlowStore, Replica
from repro.core.replica import ReplicaConfig
from repro.netsim import FiveTuple
from repro.simcore import Simulator


def flow(index, dport=443):
    return FiveTuple(f"10.1.{index // 250}.{index % 250 + 1}",
                     20_000 + index, "10.9.9.9", dport)


@pytest.fixture
def sim():
    return Simulator(0)


def make_lb(sim, replicas=3, **kwargs):
    pool = [Replica(sim, f"ip{i + 1}", "az1", ReplicaConfig())
            for i in range(replicas)]
    return DisaggregatedLB(service_id=7, replicas=pool, **kwargs)


class TestBucketTable:
    def test_build_assigns_every_bucket(self):
        table = BucketTable(1, num_buckets=16)
        table.build(["a", "b"])
        for bucket in range(16):
            assert len(table.chain_at(bucket)) == 1

    def test_same_flow_same_bucket(self):
        table = BucketTable(1)
        assert table.bucket_of(flow(5)) == table.bucket_of(flow(5))

    def test_prepare_offline_prepends_replacement(self):
        table = BucketTable(1, num_buckets=8)
        table.build(["a", "b"])
        updated = table.prepare_offline("a", ["b"])
        assert updated == 4
        for bucket in table.buckets_headed_by("b"):
            chain = table.chain_at(bucket)
            assert chain[0] == "b"

    def test_chain_capped_at_max(self):
        table = BucketTable(1, num_buckets=4, max_chain=3)
        table.build(["a"])
        for replacement in ("b", "c", "d", "e"):
            table.prepare_offline(table.chain_at(0)[0], [replacement])
        assert table.max_chain_length() <= 3

    def test_canal_allows_chains_longer_than_beamer(self):
        """Canal's modification: chains > 2 to survive several scale
        events in a short period (§4.4)."""
        table = BucketTable(1, num_buckets=4, max_chain=4)
        table.build(["a"])
        table.prepare_offline("a", ["b"])
        table.prepare_offline("b", ["c"])
        table.prepare_offline("c", ["d"])
        assert table.max_chain_length() == 4

    def test_min_chain_validated(self):
        with pytest.raises(ValueError):
            BucketTable(1, max_chain=1)

    def test_add_replica_takes_share_of_buckets(self):
        table = BucketTable(1, num_buckets=12)
        table.build(["a", "b"])
        reassigned = table.add_replica("c")
        assert reassigned == 4  # 1/3 of buckets
        assert len(table.buckets_headed_by("c")) == 4

    def test_remove_replica_purges_chains(self):
        table = BucketTable(1, num_buckets=8)
        table.build(["a", "b"])
        table.prepare_offline("a", ["b"])
        table.remove_replica("a")
        for bucket in range(8):
            assert "a" not in table.chain_at(bucket)


class TestFlowStore:
    def test_install_and_owner(self):
        store = FlowStore()
        store.install(flow(1), "ip1")
        assert store.owner(flow(1)) == "ip1"
        assert store.owner(flow(2)) is None

    def test_flows_on_replica(self):
        store = FlowStore()
        store.install(flow(1), "ip1")
        store.install(flow(2), "ip1")
        store.install(flow(3), "ip2")
        assert len(store.flows_on("ip1")) == 2

    def test_remove(self):
        store = FlowStore()
        store.install(flow(1), "ip1")
        store.remove(flow(1))
        assert len(store) == 0


class TestDisaggregatedLB:
    def test_syn_installs_flow(self, sim):
        lb = make_lb(sim)
        result = lb.deliver(flow(1), is_syn=True)
        assert result.is_new_flow
        assert lb.flows.owner(flow(1)) == result.replica.name

    def test_established_flow_sticks(self, sim):
        lb = make_lb(sim)
        first = lb.deliver(flow(1), is_syn=True)
        again = lb.deliver(flow(1), is_syn=False)
        assert again.replica.name == first.replica.name
        assert not again.is_new_flow

    def test_drained_replica_keeps_old_flows(self, sim):
        """Fig 26's core property."""
        lb = make_lb(sim)
        owners = {}
        flows = [flow(i) for i in range(100)]
        for f in flows:
            owners[f] = lb.deliver(f, is_syn=True).replica.name
        victim = "ip2"
        lb.drain_replica(victim)
        for f in flows:
            assert lb.deliver(f, is_syn=False).replica.name == owners[f]

    def test_drained_replica_receives_no_new_flows(self, sim):
        lb = make_lb(sim)
        lb.drain_replica("ip2")
        for i in range(100):
            assert lb.deliver(flow(1000 + i), is_syn=True).replica.name != "ip2"

    def test_redirection_hops_counted_for_chained_flows(self, sim):
        lb = make_lb(sim)
        flows = [flow(i) for i in range(200)]
        victims = {}
        for f in flows:
            victims[f] = lb.deliver(f, is_syn=True).replica.name
        lb.drain_replica("ip2")
        chained = [f for f in flows if victims[f] == "ip2"]
        assert chained  # some flows were on ip2
        results = [lb.deliver(f, is_syn=False) for f in chained]
        assert all(r.redirection_hops >= 1 for r in results)

    def test_retire_requires_drained_flows(self, sim):
        lb = make_lb(sim)
        target = None
        index = 0
        while target is None:
            result = lb.deliver(flow(index), is_syn=True)
            if result.replica.name == "ip2":
                target = flow(index)
            index += 1
        lb.drain_replica("ip2")
        with pytest.raises(RuntimeError):
            lb.retire_replica("ip2")
        lb.close_flow(target)
        # Any remaining ip2 flows must be closed too.
        for f in [flow(i) for i in range(index)]:
            lb.close_flow(f)
        lb.retire_replica("ip2")
        assert "ip2" not in lb.replica_names()

    def test_add_replica_attracts_new_flows(self, sim):
        lb = make_lb(sim, replicas=2)
        newcomer = Replica(sim, "ip3", "az1", ReplicaConfig())
        lb.add_replica(newcomer)
        landed = sum(1 for i in range(300)
                     if lb.deliver(flow(5000 + i), is_syn=True)
                     .replica.name == "ip3")
        assert landed > 50

    def test_add_replica_preserves_established_flows(self, sim):
        lb = make_lb(sim, replicas=2)
        flows = [flow(i) for i in range(100)]
        owners = {f: lb.deliver(f, is_syn=True).replica.name for f in flows}
        lb.add_replica(Replica(sim, "ip3", "az1", ReplicaConfig()))
        for f in flows:
            assert lb.deliver(f, is_syn=False).replica.name == owners[f]

    def test_duplicate_replica_rejected(self, sim):
        lb = make_lb(sim)
        with pytest.raises(ValueError):
            lb.add_replica(Replica(sim, "ip1", "az1", ReplicaConfig()))

    def test_no_accepting_replica_raises(self, sim):
        lb = make_lb(sim, replicas=2)
        with pytest.raises(RuntimeError):
            lb.drain_replica("ip1")
            lb.drain_replica("ip2")

    def test_unknown_owner_treated_as_new(self, sim):
        lb = make_lb(sim)
        # Non-SYN packet for a flow nobody owns (e.g. after failover).
        result = lb.deliver(flow(1), is_syn=False)
        assert result.is_new_flow
