"""Coverage for smaller surfaces: cost sampling, simulator edges,
gateway sessions, monitor session series, and the experiments CLI."""

import pytest

from repro.experiments.__main__ import main as experiments_cli
from repro.mesh.costs import DEFAULT_COSTS, sample_service_time
from repro.simcore import Simulator
from repro.simcore.sim import EmptySchedule


class TestSampleServiceTime:
    def test_sigma_zero_returns_mean(self):
        import random
        rng = random.Random(0)
        assert sample_service_time(rng, 1e-3, 0.0) == 1e-3

    def test_mean_preserved(self):
        import random
        rng = random.Random(1)
        samples = [sample_service_time(rng, 1e-3, 1.3) for _ in range(40_000)]
        assert sum(samples) / len(samples) == pytest.approx(1e-3, rel=0.07)

    def test_heavier_sigma_heavier_tail(self):
        import random
        from repro.simcore import percentile
        light = [sample_service_time(random.Random(2), 1e-3, 0.35)
                 for _ in range(10_000)]
        heavy = [sample_service_time(random.Random(2), 1e-3, 1.3)
                 for _ in range(10_000)]
        assert percentile(heavy, 99) > 3 * percentile(light, 99)

    def test_negative_mean_rejected(self):
        import random
        with pytest.raises(ValueError):
            sample_service_time(random.Random(0), -1.0, 0.5)


class TestSimulatorEdges:
    def test_step_on_empty_raises(self):
        with pytest.raises(EmptySchedule):
            Simulator(0).step()

    def test_peek(self):
        sim = Simulator(0)
        assert sim.peek() == float("inf")
        sim.timeout(3.0)
        assert sim.peek() == 3.0

    def test_run_until_past_rejected(self):
        sim = Simulator(0)
        sim.timeout(1.0)
        sim.run()
        with pytest.raises(ValueError):
            sim.run(until=0.5)

    def test_run_until_advances_clock_exactly(self):
        sim = Simulator(0)
        sim.timeout(1.0)
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_seeded_rng_reproducible(self):
        a = Simulator(42).rng.random()
        b = Simulator(42).rng.random()
        assert a == b


class TestGatewaySessions:
    def _gateway(self):
        from repro.core import GatewayConfig, MeshGateway
        from repro.core.replica import ReplicaConfig
        sim = Simulator(3)
        gateway = MeshGateway(sim, GatewayConfig(
            replicas_per_backend=2, backends_per_service_per_az=2,
            azs_per_service=2, replica=ReplicaConfig(cores=8)))
        gateway.deploy_initial(["az1", "az2"], 4)
        tenant = gateway.registry.add_tenant("t1")
        service = gateway.registry.add_service(tenant, "web", "10.0.0.1")
        gateway.register_service(service)
        return sim, gateway, service

    def test_sessions_spread_over_backends(self):
        sim, gateway, service = self._gateway()
        gateway.set_service_sessions(service.service_id, 400_000)
        carriers = gateway.service_backends[service.service_id]
        for backend in carriers:
            assert backend.service_sessions(service.service_id) == 100_000

    def test_negative_sessions_rejected(self):
        sim, gateway, service = self._gateway()
        with pytest.raises(ValueError):
            gateway.set_service_sessions(service.service_id, -1)

    def test_session_utilization_visible(self):
        sim, gateway, service = self._gateway()
        gateway.set_service_sessions(service.service_id, 400_000)
        backend = gateway.service_backends[service.service_id][0]
        assert backend.session_utilization() == pytest.approx(0.5)

    def test_sessions_follow_failover(self):
        sim, gateway, service = self._gateway()
        gateway.set_service_sessions(service.service_id, 300_000)
        victim = gateway.service_backends[service.service_id][0]
        gateway.fail_backend(victim.name)
        survivors = [b for b in gateway.service_backends[service.service_id]
                     if b.is_healthy]
        total = sum(b.service_sessions(service.service_id)
                    for b in survivors)
        assert total == pytest.approx(300_000, rel=0.01)

    def test_monitor_records_session_series(self):
        from repro.core import GatewayMonitor
        sim, gateway, service = self._gateway()
        monitor = GatewayMonitor(sim, gateway)
        gateway.set_service_sessions(service.service_id, 100_000)
        gateway.set_service_load(service.service_id, 10_000.0)
        monitor.sample()
        assert service.service_id in monitor.service_session_series
        assert gateway.service_backends[service.service_id][0].name \
            in monitor.session_series


class TestExperimentsCli:
    def test_no_args_lists(self, capsys):
        assert experiments_cli(["prog"]) == 1
        output = capsys.readouterr().out
        assert "fig11" in output

    def test_runs_one_exhibit(self, capsys):
        assert experiments_cli(["prog", "fig26", "--no-cache"]) == 0
        output = capsys.readouterr().out
        assert "fig26" in output
        assert "regenerated" in output


class TestCostModelRelations:
    def test_iptables_redirect_more_expensive_than_ebpf(self):
        assert (DEFAULT_COSTS.iptables_redirect_cpu_s()
                > DEFAULT_COSTS.ebpf_redirect_cpu_s())

    def test_l7_cost_ordering(self):
        """Sidecar (full config) > waypoint (scoped) > gateway
        (optimized multi-tenant engine)."""
        assert (DEFAULT_COSTS.istio_sidecar_l7_s
                > DEFAULT_COSTS.ambient_waypoint_l7_s
                > DEFAULT_COSTS.canal_gateway_l7_s)

    def test_sigma_ordering_matches_engine_maturity(self):
        assert (DEFAULT_COSTS.istio_l7_sigma
                > DEFAULT_COSTS.ambient_l7_sigma
                > DEFAULT_COSTS.canal_l7_sigma)

    def test_symmetric_scales_with_bytes(self):
        small = DEFAULT_COSTS.symmetric_cost(100)
        large = DEFAULT_COSTS.symmetric_cost(100_000)
        assert large > small
