"""Tests for failure injection/recovery and full-mesh probing."""

import pytest

from repro.core import (
    FailureInjector,
    GatewayConfig,
    MeshGateway,
    ProbeMesh,
    availability_report,
)
from repro.core.probing import APP_TYPES
from repro.core.replica import ReplicaConfig
from repro.simcore import Simulator


def make_gateway(sim, services=5, backends_per_az=6):
    config = GatewayConfig(
        replicas_per_backend=2, backends_per_service_per_az=2,
        azs_per_service=2,
        replica=ReplicaConfig(cores=8, request_cost_s=100e-6))
    gateway = MeshGateway(sim, config)
    gateway.deploy_initial(["az1", "az2"], backends_per_az)
    out = []
    for index in range(services):
        tenant = gateway.registry.add_tenant(f"t{index + 1}")
        service = gateway.registry.add_service(tenant, "web",
                                               f"10.0.0.{index + 1}")
        gateway.register_service(service)
        gateway.set_service_load(service.service_id, 20_000.0)
        out.append(service)
    return gateway, out


@pytest.fixture
def sim():
    return Simulator(33)


class TestFailureInjector:
    def test_replica_failure_recorded_with_sessions(self, sim):
        gateway, services = make_gateway(sim)
        injector = FailureInjector(sim, gateway)
        backend = gateway.all_backends[0]
        backend.replicas[0].add_sessions(1234)
        event = injector.fail_replica(backend.name,
                                      backend.replicas[0].name)
        assert event.sessions_disrupted == 1234
        assert backend.replicas[0].sessions_used == 0

    def test_replica_recovery_marks_event(self, sim):
        gateway, services = make_gateway(sim)
        injector = FailureInjector(sim, gateway)
        backend = gateway.all_backends[0]
        injector.fail_replica(backend.name, backend.replicas[0].name)
        injector.recover_replica(backend.name, backend.replicas[0].name)
        assert injector.events[0].recovered_at is not None

    def test_replica_failure_keeps_service_up(self, sim):
        gateway, services = make_gateway(sim)
        injector = FailureInjector(sim, gateway)
        sid = services[0].service_id
        backend = gateway.service_backends[sid][0]
        injector.fail_replica(backend.name, backend.replicas[0].name)
        assert availability_report(gateway)[sid]

    def test_backend_failure_keeps_service_up(self, sim):
        gateway, services = make_gateway(sim)
        injector = FailureInjector(sim, gateway)
        sid = services[0].service_id
        injector.fail_backend(gateway.service_backends[sid][0].name)
        assert availability_report(gateway)[sid]

    def test_az_failure_keeps_services_up(self, sim):
        gateway, services = make_gateway(sim)
        injector = FailureInjector(sim, gateway)
        injector.fail_az("az1")
        report = availability_report(gateway)
        assert all(report.values())
        injector.recover_az("az1")

    def test_query_of_death_isolated_by_sharding(self, sim):
        """The Fig 8 scenario: one service's entire combination dies;
        the others stay up."""
        gateway, services = make_gateway(sim)
        injector = FailureInjector(sim, gateway)
        victim = services[0].service_id
        events = injector.query_of_death(victim)
        assert len(events) == len(gateway.service_backends[victim])
        report = availability_report(gateway)
        assert not report[victim]
        for other in services[1:]:
            assert report[other.service_id]

    def test_double_failure_is_idempotent(self, sim):
        """Failing an already-failed target returns the open event
        unchanged — disrupted sessions are never counted twice."""
        gateway, services = make_gateway(sim)
        for service in services:
            gateway.set_service_sessions(service.service_id, 10_000)
        injector = FailureInjector(sim, gateway)
        backend = gateway.all_backends[0]

        first = injector.fail_backend(backend.name)
        again = injector.fail_backend(backend.name)
        assert again is first
        assert len(injector.events) == 1

        replica = backend.replicas[0]
        r1 = injector.fail_replica(backend.name, replica.name)
        r2 = injector.fail_replica(backend.name, replica.name)
        assert r2 is r1

        az1 = injector.fail_az("az1")
        az_before = az1.sessions_disrupted
        assert injector.fail_az("az1") is az1
        assert az1.sessions_disrupted == az_before
        assert injector.disrupted_by_scope()["az"] == az_before

    def test_replica_failure_refreshes_dns_health(self, sim):
        """Killing every replica of an AZ one by one (below the
        backend-level API) must still take that AZ out of DNS."""
        gateway, services = make_gateway(sim)
        injector = FailureInjector(sim, gateway)
        for backend in gateway.backends_by_az["az1"]:
            for replica in backend.replicas:
                injector.fail_replica(backend.name, replica.name)
        sid = services[0].service_id
        name = gateway._dns_name(sid)
        az1_records = [record for record in gateway.dns.endpoints(name)
                       if record.az == "az1"]
        assert az1_records and all(not r.healthy for r in az1_records)
        # Recovering one replica of one of the service's own az1
        # backends brings its AZ record back.
        backend = next(b for b in gateway.service_backends[sid]
                       if b.az == "az1")
        injector.recover_replica(backend.name, backend.replicas[0].name)
        az1_records = [record for record in gateway.dns.endpoints(name)
                       if record.az == "az1"]
        assert any(r.healthy for r in az1_records)

    def test_query_of_death_cascade_then_service_recovery(self, sim):
        gateway, services = make_gateway(sim)
        injector = FailureInjector(sim, gateway)
        victim = services[0].service_id
        injector.query_of_death(victim)
        assert not availability_report(gateway)[victim]
        injector.recover_service(victim)
        report = availability_report(gateway)
        assert report[victim]
        assert all(report.values())
        assert all(event.recovered_at is not None
                   for event in injector.events)

    def test_availability_under_partial_az_recovery(self, sim):
        """AZ comes back backend by backend: services flip up as soon
        as any of their backends lives, not when the whole AZ does."""
        gateway, services = make_gateway(sim)
        injector = FailureInjector(sim, gateway)
        injector.fail_az("az1")
        injector.fail_az("az2")  # total outage
        report = availability_report(gateway)
        assert not any(report.values())
        recovered = set()
        for backend in gateway.backends_by_az["az1"]:
            gateway.recover_backend(backend.name)
            recovered.add(backend.name)
            report = availability_report(gateway)
            for service in services:
                has_live = any(b.name in recovered
                               for b in gateway.service_backends[
                                   service.service_id])
                assert report[service.service_id] == has_live
        # One whole AZ back → every service is reachable again.
        assert all(availability_report(gateway).values())


class TestProbeMesh:
    def test_deploys_probes_per_az_and_type(self, sim):
        gateway, _ = make_gateway(sim)
        probes = ProbeMesh(sim, gateway, azs=["az1", "az2"])
        assert len(probes._probe_services) == 2 * len(APP_TYPES)

    def test_full_mesh_round_size(self, sim):
        gateway, _ = make_gateway(sim)
        probes = ProbeMesh(sim, gateway, azs=["az1", "az2"])
        results = probes.run_round()
        assert len(results) == 2 * 2 * len(APP_TYPES)

    def test_healthy_matrix_proves_innocence(self, sim):
        gateway, _ = make_gateway(sim)
        probes = ProbeMesh(sim, gateway, azs=["az1", "az2"])
        probes.run_round()
        assert probes.matrix_ok()
        assert probes.innocence_proof("az1", "https")

    def test_outage_breaks_innocence(self, sim):
        gateway, _ = make_gateway(sim)
        probes = ProbeMesh(sim, gateway, azs=["az1", "az2"])
        https_az1 = probes._probe_services[("az1", "https")]
        for backend in gateway.service_backends[https_az1.service_id]:
            gateway.fail_backend(backend.name)
        probes.run_round()
        assert not probes.matrix_ok()
        assert not probes.innocence_proof("az1", "https")

    def test_failure_matrix_localizes(self, sim):
        gateway, _ = make_gateway(sim)
        probes = ProbeMesh(sim, gateway, azs=["az1", "az2"])
        grpc_az2 = probes._probe_services[("az2", "grpc")]
        for backend in gateway.service_backends[grpc_az2.service_id]:
            gateway.fail_backend(backend.name)
        probes.run_round()
        matrix = probes.failure_matrix()
        assert matrix[("az1", "az2", "grpc")] == 1.0
        assert matrix[("az1", "az2", "http")] == 0.0

    def test_periodic_probing(self, sim):
        gateway, _ = make_gateway(sim)
        probes = ProbeMesh(sim, gateway, azs=["az1"])
        sim.process(probes.run_periodic(interval_s=10.0, rounds=3))
        sim.run()
        assert len(probes.results) == 3 * len(APP_TYPES)

    def test_latency_reflects_water_level(self, sim):
        gateway, services = make_gateway(sim)
        probes = ProbeMesh(sim, gateway, azs=["az1", "az2"])
        calm = probes.probe_once("az1", "az2", "http")
        target = probes._probe_services[("az2", "http")]
        # Overload the probe target's backends.
        gateway.set_service_load(target.service_id, 1_000_000.0)
        busy = probes.probe_once("az1", "az2", "http")
        assert busy.latency_s > calm.latency_s

    def test_window_filters_old_results(self, sim):
        gateway, _ = make_gateway(sim)
        probes = ProbeMesh(sim, gateway, azs=["az1"])
        probes.run_round()
        sim.now = 1000.0
        assert not probes.matrix_ok(window_s=10.0)
