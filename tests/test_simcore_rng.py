"""Tests for the seeded distribution helpers."""

import random

import pytest

from repro.simcore.rng import (
    exponential,
    jittered,
    lognormal_from_median,
    make_sampler,
    pareto_bounded,
)


@pytest.fixture
def rng():
    return random.Random(42)


class TestExponential:
    def test_mean_converges(self, rng):
        samples = [exponential(rng, 2.0) for _ in range(20_000)]
        assert sum(samples) / len(samples) == pytest.approx(2.0, rel=0.05)

    def test_positive_mean_required(self, rng):
        with pytest.raises(ValueError):
            exponential(rng, 0.0)

    def test_deterministic_given_seed(self):
        a = [exponential(random.Random(7), 1.0) for _ in range(5)]
        b = [exponential(random.Random(7), 1.0) for _ in range(5)]
        assert a == b


class TestLognormal:
    def test_median_anchored(self, rng):
        samples = sorted(lognormal_from_median(rng, 40e-3, 0.5)
                         for _ in range(20_001))
        median = samples[len(samples) // 2]
        assert median == pytest.approx(40e-3, rel=0.05)

    def test_positive_median_required(self, rng):
        with pytest.raises(ValueError):
            lognormal_from_median(rng, -1.0, 0.5)


class TestParetoBounded:
    def test_within_bounds(self, rng):
        for _ in range(1000):
            value = pareto_bounded(rng, alpha=1.2, minimum=100, maximum=10_000)
            assert 100 <= value <= 10_000

    def test_bounds_validated(self, rng):
        with pytest.raises(ValueError):
            pareto_bounded(rng, 1.2, minimum=10, maximum=5)


class TestJittered:
    def test_within_fraction(self, rng):
        for _ in range(100):
            value = jittered(rng, 100.0, 0.1)
            assert 90.0 <= value <= 110.0

    def test_zero_fraction_identity(self, rng):
        assert jittered(rng, 5.0, 0.0) == 5.0

    def test_negative_fraction_rejected(self, rng):
        with pytest.raises(ValueError):
            jittered(rng, 1.0, -0.1)


class TestMakeSampler:
    def test_constant(self, rng):
        sampler = make_sampler(rng, {"kind": "constant", "value": 3})
        assert sampler() == 3.0

    def test_uniform_bounds(self, rng):
        sampler = make_sampler(rng, {"kind": "uniform", "low": 1, "high": 2})
        assert all(1.0 <= sampler() <= 2.0 for _ in range(100))

    def test_exponential_kind(self, rng):
        sampler = make_sampler(rng, {"kind": "exponential", "mean": 1.0})
        assert sampler() > 0

    def test_lognormal_kind(self, rng):
        sampler = make_sampler(rng, {"kind": "lognormal", "median": 1.0})
        assert sampler() > 0

    def test_unknown_kind_rejected(self, rng):
        with pytest.raises(ValueError):
            make_sampler(rng, {"kind": "zipf"})
