"""Tests for shuffle sharding."""

import random

import pytest

from repro.core import Backend, ShardingError, ShuffleSharder
from repro.simcore import Simulator


def make_pools(sim, azs=2, per_az=6):
    pools = {}
    counter = 0
    for az_index in range(azs):
        az = f"az{az_index + 1}"
        pools[az] = []
        for _ in range(per_az):
            counter += 1
            pools[az].append(Backend(sim, f"b{counter}", az))
    return pools


@pytest.fixture
def sim():
    return Simulator(0)


class TestShuffleSharder:
    def test_assigns_requested_shape(self, sim):
        sharder = ShuffleSharder(random.Random(0),
                                 backends_per_service_per_az=2,
                                 azs_per_service=2)
        pools = make_pools(sim)
        backends = sharder.assign(1, pools)
        assert len(backends) == 4
        assert len({b.az for b in backends}) == 2

    def test_combinations_are_unique(self, sim):
        sharder = ShuffleSharder(random.Random(0))
        pools = make_pools(sim, azs=2, per_az=8)
        for service_id in range(20):
            for backend in sharder.assign(service_id, pools):
                backend.install_service(service_id)
        assert sharder.fully_overlapping_pairs() == 0

    def test_duplicate_assignment_rejected(self, sim):
        sharder = ShuffleSharder(random.Random(0))
        pools = make_pools(sim)
        sharder.assign(1, pools)
        with pytest.raises(ValueError):
            sharder.assign(1, pools)

    def test_survivors_guarantee(self, sim):
        """If one service's whole combination dies, every other service
        keeps at least one backend — the isolation property of Fig 19."""
        sharder = ShuffleSharder(random.Random(1))
        pools = make_pools(sim, azs=3, per_az=6)
        for service_id in range(15):
            for backend in sharder.assign(service_id, pools):
                backend.install_service(service_id)
        for service_id in range(15):
            survivors = sharder.survivors_if_combination_fails(service_id)
            assert min(survivors.values()) >= 1

    def test_too_few_azs_raises(self, sim):
        sharder = ShuffleSharder(random.Random(0), azs_per_service=3)
        with pytest.raises(ShardingError):
            sharder.assign(1, make_pools(sim, azs=2))

    def test_too_few_backends_raises(self, sim):
        sharder = ShuffleSharder(random.Random(0),
                                 backends_per_service_per_az=4,
                                 azs_per_service=1)
        with pytest.raises(ShardingError):
            sharder.assign(1, make_pools(sim, azs=1, per_az=2))

    def test_exhaustion_raises_sharding_error(self, sim):
        # C(2,2) = 1 combination per AZ; the second service cannot get
        # a unique one.
        sharder = ShuffleSharder(random.Random(0),
                                 backends_per_service_per_az=2,
                                 azs_per_service=1, max_attempts=20)
        pools = make_pools(sim, azs=1, per_az=2)
        sharder.assign(1, pools)
        with pytest.raises(ShardingError):
            sharder.assign(2, pools)

    def test_release_frees_combination(self, sim):
        sharder = ShuffleSharder(random.Random(0),
                                 backends_per_service_per_az=2,
                                 azs_per_service=1)
        pools = make_pools(sim, azs=1, per_az=2)
        sharder.assign(1, pools)
        sharder.release(1)
        sharder.assign(2, pools)  # reuses the freed combination
        assert len(sharder) == 1

    def test_az_spread_prefers_lighter_azs(self, sim):
        sharder = ShuffleSharder(random.Random(0), azs_per_service=1)
        pools = make_pools(sim, azs=2, per_az=4)
        # Preload az1 with configured services.
        for backend in pools["az1"]:
            backend.install_service(999)
        backends = sharder.assign(1, pools)
        assert all(b.az == "az2" for b in backends)

    def test_combination_count_helper(self):
        assert ShuffleSharder.combinations_available(6, 2) == 15

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ShuffleSharder(random.Random(0), backends_per_service_per_az=0)
        with pytest.raises(ValueError):
            ShuffleSharder(random.Random(0), azs_per_service=0)
