"""Whole-program simlint engine: call graph, taint, races, leaks, cache."""

import json
import os
import textwrap
import time

from repro.lint import ModuleSource, ProjectIndex, get_rule, lint_files
from repro.lint.cli import main as lint_main
from repro.lint.dataflow import resolve_summaries
from repro.lint.graph import ProgramGraph, extract_facts, layer_rank

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "lint_fixtures")


def fixture(name: str) -> str:
    return os.path.join(FIXTURES, name)


def findings_for(name: str, rule_id: str, module: str = None):
    """Run one rule over one fixture, suppressions applied."""
    source_module = ModuleSource(fixture(name), module=module)
    assert source_module.syntax_error is None
    project = ProjectIndex.build([source_module])
    rule = get_rule(rule_id)
    return sorted((f for f in rule.check(source_module, project)
                   if not source_module.is_suppressed(f.line, f.rule)),
                  key=lambda f: f.sort_key)


def synthetic(module: str, text: str) -> ModuleSource:
    path = "src/" + module.replace(".", "/") + ".py"
    return ModuleSource(path, source=textwrap.dedent(text).encode("utf-8"),
                        module=module)


# -- DET101: interprocedural determinism taint --------------------------------

class TestDet101Fixture:
    def test_firing_lines(self):
        found = findings_for("det101_taint.py", "DET101",
                             module="repro.core.fake_taint")
        assert [f.line for f in found] == [33, 37, 41, 45, 50]

    def test_taint_travels_through_calls(self):
        found = findings_for("det101_taint.py", "DET101",
                             module="repro.core.fake_taint")
        by_line = {f.line: f.message for f in found}
        # Two-hop wall-clock: refresh() -> scaled_jitter() -> jitter().
        assert "via scaled_jitter" in by_line[33]
        # Parameter sink: drive() passes time.time() into record().
        assert "record" in by_line[45]
        # Cache-key sink fed by hash().
        assert "cache-key" in by_line[50]

    def test_clean_fixture(self):
        assert findings_for("det101_clean.py", "DET101",
                            module="repro.core.fake_clean") == []

    def test_fleet_is_a_state_module(self):
        # repro.fleet is rank 2 and not DET001-allowlisted, so the
        # interprocedural taint rule covers the fluid tier by default.
        found = findings_for("det101_taint.py", "DET101",
                             module="repro.fleet.fake")
        assert [f.line for f in found] == [33, 37, 41, 45, 50]


# -- LAYER001: layering enforcement -------------------------------------------

class TestLayer001Fixture:
    def test_firing_lines(self):
        found = findings_for("layer001_upward.py", "LAYER001",
                             module="repro.simcore.fake")
        assert [f.line for f in found] == [7, 8, 10]
        assert all("upward" in f.message for f in found)

    def test_clean_fixture(self):
        assert findings_for("layer001_clean.py", "LAYER001",
                            module="repro.mesh.fake") == []

    def test_layer_ranks(self):
        assert layer_rank("repro.simcore.sim") == 0
        assert layer_rank("repro.mesh.router") == 1
        assert layer_rank("repro.obs.trace") == 1  # sim-time trace: kernel-adjacent
        assert layer_rank("repro.resilience.breaker") == 1  # peer of core
        assert layer_rank("repro.faults.plans") == 2
        assert layer_rank("repro.fleet.model") == 2  # peer of repro.faults
        assert layer_rank("repro.experiments.exhibits") == 3
        assert layer_rank("repro.serve.app") == 4
        assert layer_rank("collections.abc") is None
        assert layer_rank(None) is None

    def test_fleet_upward_imports_fire(self):
        # rank 2 -> experiments (3) and serve (4) are both upward.
        found = findings_for("fleet_violations.py", "LAYER001",
                             module="repro.fleet.fixture")
        assert [f.line for f in found] == [13, 14]

    def test_fleet_same_rank_fault_import_is_legal(self):
        # fleet's validation scenarios build FaultPlans: faults sits at
        # the same rank, and LAYER001 only flags *upward* edges.
        found = findings_for("layer001_clean.py", "LAYER001",
                             module="repro.fleet.fake")
        assert found == []

    def test_resilience_upward_imports_fire(self):
        # repro.resilience is rank 1: imports into faults (2) and
        # experiments (3) are both upward edges.
        found = findings_for("resilience_violations.py", "LAYER001",
                             module="repro.resilience.fixture")
        assert [f.line for f in found] == [12, 13]


# -- RACE001: contested sim-process state -------------------------------------

class TestRace001Fixture:
    def test_firing_lines(self):
        found = findings_for("race001_contested.py", "RACE001",
                             module="repro.core.fake_race")
        assert [f.line for f in found] == [16, 17, 22, 23]
        # Each finding names the other writer.
        assert any("producer" in f.message for f in found)
        assert any("consumer" in f.message for f in found)

    def test_clean_fixture(self):
        # Store()-backed global, single-writer global, non-generator writer.
        assert findings_for("race001_clean.py", "RACE001",
                            module="repro.core.fake_race_ok") == []


# -- LEAK001: slab handles not released ---------------------------------------

class TestLeak001Fixture:
    def test_firing_lines(self):
        found = findings_for("leak001_leak.py", "LEAK001")
        assert [f.line for f in found] == [7, 14, 23]

    def test_messages_name_the_leaked_binding(self):
        found = findings_for("leak001_leak.py", "LEAK001")
        assert "'timeout'" in found[0].message
        assert "'connection'" in found[1].message

    def test_clean_fixture(self):
        assert findings_for("leak001_clean.py", "LEAK001") == []


# -- DET003 satellite: order-insensitive consumers ----------------------------

class TestDet003OrderInsensitiveConsumers:
    def test_only_order_sensitive_materializations_fire(self):
        found = findings_for("det003_consumers.py", "DET003")
        # sum/len/any/all/sorted/set-comp/membership are all clean;
        # the list and dict comprehensions still fire.
        assert [f.line for f in found] == [23, 24]


# -- call-graph resolution ----------------------------------------------------

class TestCallGraphResolution:
    def build(self):
        alpha = synthetic("repro.core.alpha", """
            import time

            def jitter():
                return time.time()

            class Gateway:
                def helper(self):
                    return 1

                def run(self):
                    return self.helper()

                @staticmethod
                def tick():
                    return jitter()

                @classmethod
                def spawn(cls):
                    return cls.tick()
            """)
        beta = synthetic("repro.core.beta", """
            import repro.core.alpha as al
            from repro.core.alpha import jitter as jj

            def drive():
                return al.jitter()

            def drive2():
                return jj()
            """)
        return ProgramGraph([extract_facts(alpha), extract_facts(beta)])

    def test_method_calls_via_self(self):
        graph = self.build()
        assert graph.call_edges["repro.core.alpha.Gateway.run"] == {
            "repro.core.alpha.Gateway.helper"}

    def test_decorated_methods_resolve(self):
        graph = self.build()
        assert graph.call_edges["repro.core.alpha.Gateway.spawn"] == {
            "repro.core.alpha.Gateway.tick"}
        assert graph.call_edges["repro.core.alpha.Gateway.tick"] == {
            "repro.core.alpha.jitter"}

    def test_aliased_imports_resolve(self):
        graph = self.build()
        assert graph.call_edges["repro.core.beta.drive"] == {
            "repro.core.alpha.jitter"}
        assert graph.call_edges["repro.core.beta.drive2"] == {
            "repro.core.alpha.jitter"}

    def test_taint_crosses_module_boundary(self):
        graph = self.build()
        summaries, _findings = resolve_summaries(graph)
        assert "wallclock" in summaries["repro.core.beta.drive"].returns
        assert "wallclock" in summaries["repro.core.alpha.Gateway.spawn"].returns


class TestSccConvergence:
    def test_mutual_recursion_converges_with_taint(self):
        loop = synthetic("repro.core.loop", """
            import time

            def ping(n):
                if n <= 0:
                    return time.time()
                return pong(n - 1)

            def pong(n):
                return ping(n - 1)
            """)
        graph = ProgramGraph([extract_facts(loop)])
        assert [sorted(scc) for scc in graph.sccs if len(scc) > 1] == [
            ["repro.core.loop.ping", "repro.core.loop.pong"]]
        summaries, _findings = resolve_summaries(graph)
        # The fixpoint must propagate wallclock around the cycle to BOTH.
        assert "wallclock" in summaries["repro.core.loop.ping"].returns
        assert "wallclock" in summaries["repro.core.loop.pong"].returns

    def test_self_recursion_terminates(self):
        rec = synthetic("repro.core.rec", """
            def countdown(n):
                if n <= 0:
                    return 0
                return countdown(n - 1)
            """)
        summaries, _findings = resolve_summaries(
            ProgramGraph([extract_facts(rec)]))
        assert summaries["repro.core.rec.countdown"].returns == frozenset()


# -- incremental cache --------------------------------------------------------

TAINTED = b'import time\n\n\ndef stamp():\n    return time.time()\n'
CLEAN = b'def stamp():\n    return 0.0\n'


class TestIncrementalCache:
    def test_edit_invalidates_cached_findings(self, tmp_path):
        target = tmp_path / "thing.py"
        target.write_bytes(TAINTED)
        cache_dir = str(tmp_path / "cache")
        first = lint_files([str(target)], cache_dir=cache_dir)
        assert [f.rule for f in first] == ["DET001"]

        # Unchanged file: warm run returns identical findings.
        warm = lint_files([str(target)], cache_dir=cache_dir)
        assert [(f.path, f.line, f.col, f.rule, f.message) for f in warm] == \
            [(f.path, f.line, f.col, f.rule, f.message) for f in first]

        # Editing the file must bust the content-hash key.
        target.write_bytes(CLEAN)
        assert lint_files([str(target)], cache_dir=cache_dir) == []

    def test_neighbor_edit_invalidates_program_context(self, tmp_path):
        # Phase-2 keys include a whole-program digest: adding a
        # Set-annotated attribute in module B changes module A's verdict.
        consumer = tmp_path / "consumer.py"
        consumer.write_bytes(textwrap.dedent("""
            def order(gateway):
                return [s for s in gateway.services]
            """).encode("utf-8"))
        owner = tmp_path / "owner.py"
        owner.write_bytes(b"class Gateway:\n    pass\n")
        cache_dir = str(tmp_path / "cache")
        files = [str(consumer), str(owner)]
        assert lint_files(files, cache_dir=cache_dir) == []

        owner.write_bytes(textwrap.dedent("""
            from typing import Set


            class Gateway:
                def __init__(self):
                    self.services: Set[str] = set()
            """).encode("utf-8"))
        found = lint_files(files, cache_dir=cache_dir)
        assert [f.rule for f in found] == ["DET003"]
        assert found[0].path == str(consumer)

    def test_warm_run_is_at_least_3x_faster(self, tmp_path):
        lint_pkg = os.path.normpath(
            os.path.join(HERE, "..", "src", "repro", "lint"))
        files = [
            os.path.join(lint_pkg, name)
            for name in sorted(os.listdir(lint_pkg))
            if name.endswith(".py")]
        cache_dir = str(tmp_path / "cache")

        start = time.perf_counter()  # simlint: ignore[DET001]
        cold = lint_files(files, cache_dir=cache_dir)
        cold_elapsed = time.perf_counter() - start  # simlint: ignore[DET001]

        start = time.perf_counter()  # simlint: ignore[DET001]
        warm = lint_files(files, cache_dir=cache_dir)
        warm_elapsed = time.perf_counter() - start  # simlint: ignore[DET001]

        assert [(f.path, f.line, f.rule) for f in warm] == \
            [(f.path, f.line, f.rule) for f in cold]
        assert warm_elapsed * 3 <= cold_elapsed, (
            f"warm {warm_elapsed:.3f}s vs cold {cold_elapsed:.3f}s")


# -- parallel sweep parity ----------------------------------------------------

class TestJobsParity:
    def test_jobs_1_and_4_produce_identical_json(self, tmp_path):
        reports = []
        for jobs in (1, 4):
            out = tmp_path / f"jobs{jobs}.json"
            code = lint_main([FIXTURES, "--format", "json",
                              "--output", str(out),
                              "--baseline", "",
                              "--no-cache",
                              "--jobs", str(jobs)])
            assert code == 1  # the fixture dir is findings-bearing
            reports.append(out.read_bytes())
        assert reports[0] == reports[1]
        payload = json.loads(reports[0])
        assert payload["findings"], "expected findings over lint_fixtures"
