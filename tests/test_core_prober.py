"""Tests for the active health-check prober."""

import pytest

from repro.core.prober import AppEndpoint, HealthCheckProxy
from repro.simcore import Simulator


@pytest.fixture
def sim():
    return Simulator(0)


def make_prober(sim, endpoints=3, **kwargs):
    targets = [AppEndpoint(f"10.0.0.{i + 1}") for i in range(endpoints)]
    prober = HealthCheckProxy(sim, "backend-1", targets, **kwargs)
    return prober, targets


class TestProbing:
    def test_round_probes_every_target(self, sim):
        prober, targets = make_prober(sim)
        prober.probe_round()
        assert all(t.probes_received == 1 for t in targets)
        assert prober.probes_sent == 3

    def test_periodic_probing(self, sim):
        prober, targets = make_prober(sim, interval_s=1.0)
        prober.start()
        sim.run(until=5.5)
        assert targets[0].probes_received == 6  # t = 0..5

    def test_double_start_rejected(self, sim):
        prober, _ = make_prober(sim)
        prober.start()
        with pytest.raises(RuntimeError):
            prober.start()

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            make_prober(sim, interval_s=0.0)
        with pytest.raises(ValueError):
            make_prober(sim, failure_threshold=0)


class TestDetection:
    def test_failure_detected_after_threshold(self, sim):
        prober, targets = make_prober(sim, failure_threshold=3)
        targets[0].healthy = False
        prober.probe_round()
        prober.probe_round()
        assert prober.view[targets[0].address]  # not yet
        prober.probe_round()
        assert not prober.view[targets[0].address]
        assert len(prober.transitions) == 1

    def test_flapping_does_not_transition(self, sim):
        prober, targets = make_prober(sim, failure_threshold=3)
        for _ in range(4):
            targets[0].healthy = False
            prober.probe_round()
            targets[0].healthy = True
            prober.probe_round()
        assert prober.view[targets[0].address]
        assert prober.transitions == []

    def test_recovery_detected(self, sim):
        prober, targets = make_prober(sim, failure_threshold=1,
                                      recovery_threshold=2)
        targets[0].healthy = False
        prober.probe_round()
        assert not prober.view[targets[0].address]
        targets[0].healthy = True
        prober.probe_round()
        prober.probe_round()
        assert prober.view[targets[0].address]
        assert [t.healthy for t in prober.transitions] == [False, True]

    def test_subscriber_notified(self, sim):
        prober, targets = make_prober(sim, failure_threshold=1)
        seen = []
        prober.subscribe(seen.append)
        targets[1].healthy = False
        prober.probe_round()
        assert len(seen) == 1
        assert seen[0].address == targets[1].address

    def test_detection_latency_bound(self, sim):
        prober, targets = make_prober(sim, interval_s=1.0,
                                      failure_threshold=3)
        prober.start()
        targets[0].healthy = False
        sim.run(until=10.0)
        transition = prober.transitions[0]
        assert transition.time <= prober.detection_latency_s()


class TestAggregationEconomy:
    def test_one_prober_replaces_replica_core_fanout(self, sim):
        """The probe volume of the aggregated prober matches the
        analytic replica-level stage of HealthCheckPlan."""
        from repro.core import HealthCheckPlan, ServicePlacement
        placements = [ServicePlacement(
            service_id=1, backend_names=("b1",),
            app_endpoints=frozenset({"10.0.0.1", "10.0.0.2", "10.0.0.3"}))]
        plan = HealthCheckPlan(placements, replicas_per_backend=32,
                               cores_per_replica=16,
                               probe_rate_per_target_s=1.0)
        prober, targets = make_prober(sim, endpoints=3, interval_s=1.0)
        prober.start()
        sim.run(until=10.0)
        measured_rate = prober.probes_sent / 11  # rounds at t=0..10
        assert measured_rate == pytest.approx(plan.replica_level_rps(),
                                              rel=0.05)
        assert plan.base_rps() / measured_rate == pytest.approx(
            32 * 16, rel=0.05)

    def test_add_target_on_scale_out(self, sim):
        prober, targets = make_prober(sim, endpoints=2)
        prober.add_target(AppEndpoint("10.0.0.99"))
        prober.probe_round()
        assert prober.probes_sent == 3
