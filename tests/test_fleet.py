"""Fleet tier: topology, fluid model, faults, scaling, queueing."""

import math

import pytest

from repro.faults.engine import FaultTargetError
from repro.faults.plan import Fault, FaultPlan
from repro.fleet import (
    FLEET_FAULT_KINDS,
    FleetConfig,
    FleetDemand,
    FleetFaultEngine,
    FleetModel,
    FleetScaler,
    FleetTopology,
    SessionDES,
    mm_c_wait_s,
    sojourn_mean_s,
    sojourn_p99_s,
)
from repro.fleet.queueing import RHO_CAP, weighted_percentile
from repro.fleet.reference import poisson
from repro.simcore import Simulator


def small_world(services=12, backends_per_az=8, dt_s=1.0, rps=2.0,
                sessions=200.0, cls=FleetModel, seed=7, sample_every=1):
    sim = Simulator(seed=seed)
    config = FleetConfig(azs=3, backends_per_az=backends_per_az,
                         services=services, dt_s=dt_s,
                         sample_every=sample_every)
    demand = FleetDemand(mean_sessions=sessions, session_rps=rps)
    model = cls(sim, config, demand)
    return sim, config, demand, model


class TestFleetConfig:
    def test_constants_shared_with_per_session_tier(self):
        # The fluid rates must derive from the same ReplicaConfig /
        # GatewayConfig constants the testbed tier simulates with.
        from repro.core.gateway import GatewayConfig
        from repro.core.replica import ReplicaConfig
        config = FleetConfig()
        replica = ReplicaConfig()
        gateway = GatewayConfig()
        assert config.request_cost_s == replica.request_cost_s
        assert config.cores_per_replica == replica.cores
        assert config.replica_capacity_rps == pytest.approx(
            replica.cores / replica.request_cost_s)
        assert config.safety_threshold == gateway.safety_threshold
        assert config.replicas_per_backend == gateway.replicas_per_backend
        assert config.shard_slots() == (gateway.azs_per_service
                                        * gateway.backends_per_service_per_az)

    def test_https_weight_every_third_service(self):
        config = FleetConfig()
        assert [config.service_weight(i) for i in range(4)] \
            == [3.0, 1.0, 1.0, 3.0]

    def test_demand_diurnal_shape(self):
        demand = FleetDemand(mean_sessions=1000.0, amplitude=0.5,
                             period_s=86400.0, phase=0.0)
        peak = demand.target_sessions(0.0)
        trough = demand.target_sessions(43200.0)
        assert peak == pytest.approx(1500.0)
        assert trough == pytest.approx(500.0)
        # Fixed point of the flow ODE: arrivals * theta = target.
        assert demand.arrival_rate(0.0) * demand.session_duration_s \
            == pytest.approx(peak)


class TestFleetTopology:
    def test_shards_unique_and_multi_az(self):
        sim = Simulator(seed=7)
        config = FleetConfig(azs=3, backends_per_az=8, services=24)
        topology = FleetTopology(config, sim.rng)
        combos = {tuple(sorted(shard)) for shard in topology.shards}
        assert len(combos) == 24
        stats = topology.shard_stats()
        assert stats.fully_overlapping_pairs == 0
        assert stats.multi_az_services == 24

    def test_add_backend_extends_az_cache(self):
        sim = Simulator(seed=7)
        config = FleetConfig(azs=3, backends_per_az=4, services=6)
        topology = FleetTopology(config, sim.rng)
        index = topology.add_backend(1)
        assert index == 12
        assert index in topology.backends_in_az(1)
        assert topology.az_of[index] == 1
        assert topology.replicas_provisioned() \
            == 13 * config.replicas_per_backend

    def test_extend_shard_rejects_duplicates(self):
        sim = Simulator(seed=7)
        config = FleetConfig(azs=3, backends_per_az=4, services=6)
        topology = FleetTopology(config, sim.rng)
        existing = topology.shards[0][0]
        with pytest.raises(ValueError):
            topology.extend_shard(0, existing)


class TestQueueing:
    def test_wait_increases_with_load(self):
        waits = [mm_c_wait_s(rho, 16, 115e-6) for rho in (0.3, 0.6, 0.9)]
        assert waits == sorted(waits)
        assert waits[0] >= 0.0

    def test_rho_capped_not_infinite(self):
        assert mm_c_wait_s(1.5, 16, 115e-6) \
            == mm_c_wait_s(RHO_CAP, 16, 115e-6)
        assert math.isfinite(mm_c_wait_s(1.5, 16, 115e-6))

    def test_p99_above_mean(self):
        assert sojourn_p99_s(0.7, 16, 115e-6) > sojourn_mean_s(
            0.7, 16, 115e-6)

    def test_weighted_percentile(self):
        values = [1.0, 2.0, 3.0]
        assert weighted_percentile(values, [1.0, 1.0, 98.0], 50.0) == 3.0
        assert weighted_percentile(values, [98.0, 1.0, 1.0], 50.0) == 1.0
        assert weighted_percentile(values, [1.0, 98.0, 1.0], 99.5) == 3.0

    def test_weighted_percentile_rejects_out_of_range_p(self):
        values, weights = [1.0, 2.0], [1.0, 1.0]
        for bad in (-0.1, 100.1, 500.0, float("nan")):
            with pytest.raises(ValueError):
                weighted_percentile(values, weights, bad)

    def test_weighted_percentile_edge_cases(self):
        values, weights = [1.0, 2.0, 3.0], [1.0, 1.0, 1.0]
        # p=0: the smallest value with any weight.
        assert weighted_percentile(values, weights, 0.0) == 1.0
        # p=100: the largest.
        assert weighted_percentile(values, weights, 100.0) == 3.0
        # Single element: every percentile is that element.
        assert weighted_percentile([7.0], [2.0], 0.0) == 7.0
        assert weighted_percentile([7.0], [2.0], 50.0) == 7.0
        assert weighted_percentile([7.0], [2.0], 100.0) == 7.0
        # All-equal weights reduce to the unweighted percentile.
        assert weighted_percentile(values, weights, 50.0) == 2.0
        # Zero-weight entries are ignored entirely.
        assert weighted_percentile([1.0, 99.0], [1.0, 0.0], 100.0) == 1.0


class TestFleetModel:
    def test_warm_start_holds_equilibrium(self):
        sim, config, demand, model = small_world()
        model.start(300.0)
        sim.run(until=300.0)
        total = config.services * demand.mean_sessions
        assert model.active_sessions() == pytest.approx(total, rel=1e-6)
        assert model.overall_availability() == 1.0
        model.check_invariants("test")

    def test_session_conservation_is_exact(self):
        sim, config, demand, model = small_world()
        model.start(200.0)
        sim.run(until=200.0)
        counters = model.counters
        # Warm-start seeding is part of the admitted ledger, so the
        # balance is exact from t=0: everything admitted is either
        # still active, departed normally, or disrupted by a fault.
        assert counters.admitted == pytest.approx(
            model.active_sessions() + counters.departed
            + counters.disrupted, abs=1e-6)
        assert counters.attempted == pytest.approx(
            counters.admitted + counters.rejected, abs=1e-6)

    def test_determinism_same_seed_same_series(self):
        runs = []
        for _ in range(2):
            sim, config, demand, model = small_world(seed=11)
            model.start(120.0)
            sim.run(until=120.0)
            runs.append((list(model.metrics.active_sessions.values),
                         list(model.metrics.latency_p99_ms.values),
                         model.counters.departed))
        assert runs[0] == runs[1]

    def test_backend_crash_disrupts_and_recovers(self):
        sim, config, demand, model = small_world()
        model.start(300.0)
        sim.run(until=50.0)
        backend = model.topology.shards[0][0]
        before = model.active_sessions()
        model.crash_backend(backend)
        assert model.counters.disrupted > 0.0
        assert model.active_sessions() < before
        assert not model.topology.backend_up[backend]
        model.recover_backend(backend)
        assert model.topology.backend_up[backend]
        sim.run(until=300.0)
        model.check_invariants("after recovery")
        assert model.overall_availability() > 0.99

    def test_az_crash_keeps_service_available(self):
        sim, config, demand, model = small_world()
        model.start(300.0)
        sim.run(until=50.0)
        model.crash_az(0)
        sim.run(until=120.0)
        # Every shard spans >= 2 AZs, so one AZ loss never blacks out
        # a service: arrivals keep landing on the surviving slots.
        assert model.counters.rejected == 0.0
        model.recover_az(0)
        sim.run(until=300.0)
        model.check_invariants("after az recovery")

    def test_query_of_death_inflates_water(self):
        sim, config, demand, model = small_world(rps=40.0)
        model.start(300.0)
        sim.run(until=50.0)
        base = model.hottest_water(1)
        model.set_qod(1, 5.0)
        sim.run(until=60.0)
        assert model.hottest_water(1) > base
        model.clear_qod(1)

    def test_extend_service_adds_slot_and_pushes(self):
        sim, config, demand, model = small_world()
        model.start(120.0)
        sim.run(until=20.0)
        service = 0
        shard = model.topology.shards[service]
        outside = next(b for b in range(model.topology.n_backends)
                       if b not in shard)
        pushes_before = model.counters.config_pushes
        model.extend_service(service, outside)
        assert len(model.topology.shards[service]) == 5
        assert len(model.slot_sessions[service]) == 5
        # One config push per replica of the grown combination.
        grown = sum(model.topology.total_replicas[b]
                    for b in model.topology.shards[service])
        assert model.counters.config_pushes - pushes_before == grown
        sim.run(until=120.0)
        model.check_invariants("after extend")

    def test_telemetry_publishes_fleet_metrics(self):
        from repro.obs import Telemetry, use_telemetry
        sim, config, demand, model = small_world()
        model.start(60.0)
        sim.run(until=60.0)
        telemetry = Telemetry(enabled=True)
        with use_telemetry(telemetry):
            model.publish_telemetry()
        totals = telemetry.scalar_totals()
        assert totals["fleet_sessions_admitted_total"] \
            == pytest.approx(model.counters.admitted)
        assert totals["fleet_active_sessions"] \
            == pytest.approx(model.active_sessions())
        assert totals["fleet_replicas_provisioned"] \
            == model.topology.replicas_provisioned()


class TestFleetScaler:
    def test_hot_fleet_triggers_reuse_first(self):
        sim, config, demand, model = small_world(
            services=6, backends_per_az=12, rps=110.0, sessions=600.0)
        scaler = FleetScaler(sim, model)
        model.start(1200.0)
        sim.run(until=1200.0)
        summary = scaler.summary()
        assert summary["total"] > 0
        assert summary["reuse"] >= summary["new"]
        for event in scaler.events:
            assert event.kind in ("reuse", "new")
            if event.finished_at:
                assert event.execution_s > 0.0

    def test_cooldown_rate_limits_one_service(self):
        sim, config, demand, model = small_world(
            services=6, backends_per_az=12, rps=110.0, sessions=600.0)
        scaler = FleetScaler(sim, model, cooldown_s=1e9)
        model.start(1200.0)
        sim.run(until=1200.0)
        per_service = {}
        for event in scaler.events:
            per_service[event.service_id] = \
                per_service.get(event.service_id, 0) + 1
        # An infinite cooldown allows at most one completed operation
        # per service (plus nothing re-triggered after it).
        assert all(count == 1 for count in per_service.values())


class TestFleetFaultEngine:
    def plan(self):
        return FaultPlan.of(
            Fault(kind="backend_crash", at=30.0,
                  target="service:0/backend:0", duration_s=20.0),
            Fault(kind="az_crash", at=60.0, target="az:1",
                  duration_s=20.0),
            Fault(kind="query_of_death", at=90.0, target="service:1",
                  duration_s=20.0, param=4.0),
            Fault(kind="replica_crash", at=120.0,
                  target="service:0/backend:1/replica:0"),
        )

    def test_plan_fires_and_heals(self):
        sim, config, demand, model = small_world()
        engine = FleetFaultEngine(sim, model)
        engine.arm(self.plan())
        model.start(300.0)
        sim.run(until=300.0)
        actions = [(entry["action"], entry["kind"])
                   for entry in engine.timeline]
        assert ("inject", "backend_crash") in actions
        assert ("recover", "backend_crash") in actions
        assert ("inject", "az_crash") in actions
        assert ("inject", "query_of_death") in actions
        assert ("recover", "query_of_death") in actions
        assert ("inject", "replica_crash") in actions
        assert model.counters.disrupted > 0.0
        model.check_invariants("after chaos")

    def test_unknown_kind_rejected_at_arm_time(self):
        sim, config, demand, model = small_world()
        engine = FleetFaultEngine(sim, model)
        with pytest.raises(ValueError):
            engine.arm(FaultPlan.of(
                Fault(kind="meteor_strike", at=1.0, target="az:1")))

    def test_bad_target_rejected_at_arm_time(self):
        sim, config, demand, model = small_world()
        engine = FleetFaultEngine(sim, model)
        with pytest.raises(FaultTargetError):
            engine.arm(FaultPlan.of(
                Fault(kind="az_crash", at=1.0, target="az:99")))

    def test_kinds_tuple_is_the_contract(self):
        assert set(FLEET_FAULT_KINDS) == {
            "replica_crash", "backend_crash", "az_crash",
            "query_of_death"}


class TestSessionDES:
    def test_discrete_counts_and_conservation(self):
        sim, config, demand, model = small_world(
            cls=SessionDES, sessions=50.0, dt_s=1.0)
        model.start(120.0)
        sim.run(until=120.0)
        counters = model.counters
        assert counters.admitted == int(counters.admitted)
        assert counters.departed == int(counters.departed)
        model.check_invariants("des")

    def test_stale_departures_after_crash_are_noops(self):
        sim, config, demand, model = small_world(
            cls=SessionDES, sessions=50.0)
        model.start(600.0)
        sim.run(until=30.0)
        backend = model.topology.shards[0][0]
        disrupted_before = model.counters.disrupted
        model.crash_backend(backend)
        assert model.counters.disrupted > disrupted_before
        # Departure events for the disrupted sessions are still on the
        # agenda; the generation bump must turn them into no-ops
        # instead of double-counting (which check_invariants catches).
        sim.run(until=600.0)
        model.check_invariants("stale departures")

    def test_poisson_sampler_small_and_large_means(self):
        import random
        rng = random.Random(7)
        small = [poisson(rng, 3.0) for _ in range(2000)]
        large = [poisson(rng, 400.0) for _ in range(500)]
        assert abs(sum(small) / len(small) - 3.0) < 0.2
        assert abs(sum(large) / len(large) - 400.0) < 5.0
        assert poisson(rng, 0.0) == 0
