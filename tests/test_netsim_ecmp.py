"""Tests for the stateless ECMP router."""

import pytest

from repro.netsim import EcmpRouter, FiveTuple


def flows(count, dport=80):
    return [FiveTuple("10.0.0.1", 10_000 + i, "10.9.9.9", dport)
            for i in range(count)]


class TestEcmpRouter:
    def test_empty_router_raises(self):
        with pytest.raises(RuntimeError):
            EcmpRouter([]).select(flows(1)[0])

    def test_selection_deterministic(self):
        router = EcmpRouter(["a", "b", "c"])
        flow = flows(1)[0]
        assert router.select(flow) == router.select(flow)

    def test_roughly_even_spread(self):
        router = EcmpRouter(["a", "b", "c", "d"])
        counts = {}
        for flow in flows(4000):
            counts[router.select(flow)] = counts.get(
                router.select(flow), 0) + 1
        for hop_count in counts.values():
            assert 800 <= hop_count <= 1200

    def test_duplicate_next_hop_rejected(self):
        router = EcmpRouter(["a"])
        with pytest.raises(ValueError):
            router.add_next_hop("a")

    def test_remove_next_hop(self):
        router = EcmpRouter(["a", "b"])
        router.remove_next_hop("a")
        assert router.next_hops == ["b"]

    def test_membership_change_breaks_consistency(self):
        """The core motivation for the Beamer redirector: removing a
        next hop rehashes a large share of existing flows."""
        router = EcmpRouter(["a", "b", "c", "d"])
        sample = flows(1000)
        moved = router.would_move(sample, ["a", "b", "c"])
        # mod-N rehash moves roughly (1 - 1/4) minus coincidences; at
        # minimum, far more than zero.
        assert moved > 500

    def test_same_list_moves_nothing(self):
        router = EcmpRouter(["a", "b"])
        assert router.would_move(flows(100), ["a", "b"]) == 0

    def test_salt_isolates_services(self):
        first = EcmpRouter(["a", "b", "c"], salt=1)
        second = EcmpRouter(["a", "b", "c"], salt=2)
        sample = flows(300)
        differing = sum(1 for flow in sample
                        if first.select(flow) != second.select(flow))
        assert differing > 100
