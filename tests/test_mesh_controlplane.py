"""Tests for the configuration build/push control planes."""

import pytest

from repro.core import CanalControlPlane
from repro.k8s import Cluster
from repro.mesh import (
    AmbientControlPlane,
    ControlPlaneCosts,
    IstioControlPlane,
)
from repro.netsim import Topology
from repro.simcore import Simulator


def make_cluster(pods_per_service=10, services=3, workers=2):
    topo = Topology.single_az_testbed(worker_nodes=workers)
    cluster = Cluster("cp-test", topo.all_nodes())
    for index in range(services):
        cluster.create_deployment(f"svc{index}", replicas=pods_per_service,
                                  labels={"app": f"svc{index}"})
        cluster.create_service(f"svc{index}",
                               selector={"app": f"svc{index}"})
    return cluster


def run_push(plane_cls, kind="routing", **cluster_kwargs):
    sim = Simulator(0)
    cluster = make_cluster(**cluster_kwargs)
    plane = plane_cls(sim, cluster)
    process = sim.process(plane.push_update(kind=kind))
    sim.run()
    return plane, process.value


class TestConfigSizing:
    def test_full_config_grows_with_pods(self):
        sim = Simulator(0)
        plane_small = IstioControlPlane(sim, make_cluster(pods_per_service=5))
        plane_large = IstioControlPlane(sim, make_cluster(pods_per_service=20))
        assert plane_large.full_config_bytes() > plane_small.full_config_bytes()

    def test_full_config_includes_rules(self):
        sim = Simulator(0)
        with_services = IstioControlPlane(sim, make_cluster(services=5,
                                                            pods_per_service=2))
        without = IstioControlPlane(sim, make_cluster(services=1,
                                                      pods_per_service=10))
        assert (with_services.full_config_bytes()
                > without.full_config_bytes())


class TestTargetEnumeration:
    def test_istio_targets_every_pod(self):
        plane, report = run_push(IstioControlPlane)
        assert report.targets == 30

    def test_ambient_targets_nodes_plus_services(self):
        plane, report = run_push(AmbientControlPlane)
        assert report.targets == 2 + 3

    def test_canal_routing_targets_gateway_only(self):
        plane, report = run_push(CanalControlPlane, kind="routing")
        assert report.targets == 1

    def test_canal_pod_update_adds_onnode_identities(self):
        plane, report = run_push(CanalControlPlane, kind="pods")
        assert report.targets == 1 + 2  # gateway + 2 worker nodes


class TestSouthboundBytes:
    def test_fig15_exact_ratios(self):
        """With the §5.1 testbed, the scope factors reproduce the
        paper's southbound ratios exactly: 9.8x and 4.6x."""
        _, istio = run_push(IstioControlPlane)
        _, ambient = run_push(AmbientControlPlane)
        _, canal = run_push(CanalControlPlane)
        assert istio.total_bytes / canal.total_bytes == pytest.approx(
            9.8, rel=0.01)
        assert ambient.total_bytes / canal.total_bytes == pytest.approx(
            4.6, rel=0.01)

    def test_istio_bytes_quadratic_in_pods(self):
        _, small = run_push(IstioControlPlane, pods_per_service=5)
        _, large = run_push(IstioControlPlane, pods_per_service=10)
        # 2x pods → 2x targets × a config that also grew.
        assert large.total_bytes / small.total_bytes > 2.5


class TestPushExecution:
    def test_completion_positive_and_ordered(self):
        _, istio = run_push(IstioControlPlane)
        _, canal = run_push(CanalControlPlane)
        assert 0 < canal.completion_s < istio.completion_s

    def test_build_cpu_accounted(self):
        _, report = run_push(IstioControlPlane)
        assert report.build_cpu_s > report.push_cpu_s > 0

    def test_bytes_accumulate_across_updates(self):
        sim = Simulator(0)
        plane = IstioControlPlane(sim, make_cluster())
        for _ in range(2):
            sim.process(plane.push_update())
            sim.run()
        assert plane.updates_pushed == 2
        assert plane.bytes_pushed_total > 0


class TestPodCreationCompletion:
    def _create(self, plane_cls, count=50):
        sim = Simulator(1)
        cluster = make_cluster()
        plane = plane_cls(sim, cluster)
        process = sim.process(
            plane.create_pods_and_configure(count, "svc0"))
        sim.run()
        return cluster, process.value

    def test_pods_actually_created(self):
        cluster, report = self._create(IstioControlPlane, count=20)
        assert cluster.pod_count == 50  # 30 initial + 20

    def test_completion_includes_startup(self):
        costs = ControlPlaneCosts()
        _, report = self._create(CanalControlPlane, count=20)
        assert report.completion_s > costs.pod_startup_s

    def test_fig14_ordering(self):
        _, istio = self._create(IstioControlPlane)
        _, ambient = self._create(AmbientControlPlane)
        _, canal = self._create(CanalControlPlane)
        assert canal.completion_s < ambient.completion_s < istio.completion_s
