"""Tests for the full Canal Mesh architecture."""

import pytest

from repro.core.canal import OFFLOAD_LOCAL, OFFLOAD_NONE, OFFLOAD_REMOTE
from repro.experiments.testbed import build_testbed
from repro.mesh import HttpRequest
from repro.mesh.policy import AuthorizationPolicy


def run_one_request(run, service="svc1", request=None):
    mesh, sim = run.mesh, run.sim

    def scenario():
        connection = yield sim.process(
            mesh.open_connection(run.client_pod, service))
        response = yield sim.process(
            mesh.request(connection, request or HttpRequest()))
        return connection, response

    process = sim.process(scenario())
    sim.run()
    return process.value


class TestCanalDataplane:
    def test_request_succeeds(self):
        run = build_testbed("canal")
        _conn, response = run_one_request(run)
        assert response.ok

    def test_no_sidecars_injected(self):
        run = build_testbed("canal")
        assert all(pod.sidecar is None for pod in run.cluster.pods.values())

    def test_l7_runs_on_gateway_not_user_cluster(self):
        """The decoupling headline: L7 CPU is provider-side."""
        run = build_testbed("canal")
        run_one_request(run)
        assert run.mesh.infra_cpu_seconds() > 0
        replicas = [r for b in run.mesh.gateway.all_backends
                    for r in b.replicas]
        assert sum(r.requests_served for r in replicas) == 1

    def test_user_cpu_is_onnode_only(self):
        run = build_testbed("canal")
        run_one_request(run)
        onnode_cpu = sum(p.tier.cpu.busy_time()
                         for p in run.mesh.onnode.values())
        assert run.mesh.user_cpu_seconds() == pytest.approx(onnode_cpu)

    def test_services_registered_at_gateway(self):
        run = build_testbed("canal")
        assert len(run.mesh.gateway.registry) == 3
        for name in ("svc0", "svc1", "svc2"):
            assert run.mesh.tenant_service(name) is not None

    def test_late_service_registered_via_watch(self):
        run = build_testbed("canal")
        run.cluster.create_service("svc-late", selector={"app": "x"})
        assert run.mesh.tenant_service("svc-late") is not None

    def test_observability_flow_records_per_pod(self):
        """Functional equivalence: L4 observability with per-pod labels
        survives the move off the node (§4.1.1, Appendix A)."""
        run = build_testbed("canal")
        connection, _resp = run_one_request(run)
        client_proxy = run.mesh.onnode[run.client_pod.node_name]
        report = client_proxy.pod_traffic_report()
        assert run.client_pod.name in report
        assert report[run.client_pod.name] > 0

    def test_authorization_enforced_at_gateway(self):
        run = build_testbed("canal")
        run.mesh.authorization.add(AuthorizationPolicy(
            service="svc1", allowed_identities=("nobody",)))
        _conn, response = run_one_request(run)
        assert response.status == 403

    def test_throttle_returns_429(self):
        run = build_testbed("canal")
        sid = run.mesh.tenant_service("svc1").service_id
        run.mesh.gateway.throttle_service(sid, 0.001)

        def scenario():
            connection = yield run.sim.process(
                run.mesh.open_connection(run.client_pod, "svc1"))
            # Exhaust the near-zero budget.
            first = yield run.sim.process(
                run.mesh.request(connection, HttpRequest()))
            second = yield run.sim.process(
                run.mesh.request(connection, HttpRequest()))
            return first, second

        process = run.sim.process(scenario())
        run.sim.run()
        statuses = {r.status for r in process.value}
        assert 429 in statuses

    def test_gateway_outage_returns_503(self):
        run = build_testbed("canal")
        for backend in run.mesh.gateway.all_backends:
            backend.fail_all()
        _conn, response = run_one_request(run)
        assert response.status == 503

    def test_mtls_disabled_path(self):
        run = build_testbed("canal", mesh_kwargs={"mtls_enabled": False})
        _conn, response = run_one_request(run)
        assert response.ok

    def test_invalid_offload_mode_rejected(self):
        with pytest.raises(ValueError):
            build_testbed("canal", mesh_kwargs={"crypto_offload": "bogus"})

    def test_proxy_count_is_nodes_plus_gateway(self):
        run = build_testbed("canal")
        assert run.mesh.proxy_count() == 2 + 1


class TestCryptoOffloadModes:
    def _user_cpu(self, mode, **extra):
        run = build_testbed("canal", mesh_kwargs=dict(
            crypto_offload=mode, **extra))
        from repro.workloads import ShortFlowDriver
        driver = ShortFlowDriver(run.sim, run.mesh, run.client_pod, "svc1",
                                 rps=200.0, duration_s=1.0)
        run.run_driver(driver)
        return run.mesh.user_cpu_seconds()

    def test_remote_offload_saves_user_cpu(self):
        software = self._user_cpu(OFFLOAD_NONE, software_new_cpu=False)
        remote = self._user_cpu(OFFLOAD_REMOTE)
        assert remote < software * 0.6

    def test_local_offload_saves_user_cpu(self):
        software = self._user_cpu(OFFLOAD_NONE, software_new_cpu=False)
        local = self._user_cpu(OFFLOAD_LOCAL)
        assert local < software

    def test_remote_beats_local(self):
        local = self._user_cpu(OFFLOAD_LOCAL)
        remote = self._user_cpu(OFFLOAD_REMOTE)
        assert remote < local

    def test_remote_mode_stores_keys_at_server(self):
        run = build_testbed("canal")
        server = run.mesh.key_fleet.server_in("az1")
        assert server is not None
        assert server.has_key("node/worker1")

    def test_key_server_failure_falls_back(self):
        """Appendix A: local-AZ key server failure → software fallback,
        requests keep succeeding."""
        run = build_testbed("canal")
        run.mesh.key_fleet.server_in("az1").healthy = False
        _conn, response = run_one_request(run)
        assert response.ok
        client_proxy = run.mesh.onnode[run.client_pod.node_name]
        assert client_proxy.asym_engine.fallbacks_used > 0


class TestHealthCheckIntegration:
    def test_probers_one_per_backend(self):
        run = build_testbed("canal")
        run.mesh.enable_health_checks()
        assert len(run.mesh.probers) == len(
            run.mesh.gateway.all_backends)

    def test_double_enable_rejected(self):
        from repro.mesh.base import MeshError
        run = build_testbed("canal")
        run.mesh.enable_health_checks()
        with pytest.raises(MeshError):
            run.mesh.enable_health_checks()

    def test_prober_covers_service_union(self):
        """Service-level aggregation: each backend probes the union of
        its services' app endpoints, once each."""
        run = build_testbed("canal")
        run.mesh.enable_health_checks()
        all_addresses = []
        for prober in run.mesh.probers.values():
            addresses = [t.address for t in prober.targets]
            assert len(addresses) == len(set(addresses))  # no duplicates
            all_addresses.extend(addresses)
        # Every app endpoint of every registered service is covered.
        assert len(set(all_addresses)) == 30

    def test_dead_app_avoided_after_detection(self):
        run = build_testbed("canal")
        run.mesh.enable_health_checks(interval_s=0.5,
                                      failure_threshold=2)
        victim = run.mesh.pick_endpoint("svc1")
        run.mesh.set_app_health(victim.name, healthy=False)
        run.sim.run(until=5.0)  # detection: <= 2 x 0.5 s
        picks = [run.mesh.pick_endpoint("svc1").name for _ in range(30)]
        assert victim.name not in picks

    def test_recovered_app_returns(self):
        run = build_testbed("canal")
        run.mesh.enable_health_checks(interval_s=0.5,
                                      failure_threshold=2)
        victim = run.mesh.pick_endpoint("svc1")
        run.mesh.set_app_health(victim.name, healthy=False)
        run.sim.run(until=5.0)
        run.mesh.set_app_health(victim.name, healthy=True)
        run.sim.run(until=10.0)
        picks = {run.mesh.pick_endpoint("svc1").name for _ in range(60)}
        assert victim.name in picks

    def test_probe_volume_is_aggregated(self):
        """Far fewer probes than the per-core fan-out would send."""
        run = build_testbed("canal")
        run.mesh.enable_health_checks(interval_s=1.0)
        run.sim.run(until=10.0)
        total = sum(p.probes_sent for p in run.mesh.probers.values())
        # One backend x 30 apps x 11 rounds = 330; the unaggregated
        # fan-out (replicas x cores per probe target) would be >> that.
        assert total <= 400


class TestSessionLifecycle:
    def _short_flows(self, count, aggregation, capacity=100_000,
                     close=False):
        from repro.core import GatewayConfig, MeshGateway
        from repro.core.replica import ReplicaConfig
        kwargs = {}
        run = build_testbed("canal", mesh_kwargs=kwargs)
        gateway = run.mesh.gateway
        gateway.config = GatewayConfig(
            replicas_per_backend=1, backends_per_service_per_az=1,
            azs_per_service=1, session_aggregation=aggregation,
            replica=gateway.config.replica)

        def scenario():
            for index in range(count):
                connection = yield run.sim.process(
                    run.mesh.open_connection(run.client_pod, "svc1"))
                yield run.sim.process(
                    run.mesh.request(connection, HttpRequest()))
                if close:
                    run.mesh.close_connection(connection)

        run.sim.process(scenario())
        run.sim.run()
        replicas = [r for b in gateway.all_backends for r in b.replicas]
        return run, sum(r.sessions_used for r in replicas)

    def test_each_flow_consumes_a_session(self):
        _run, sessions = self._short_flows(20, aggregation=False)
        assert sessions == 20

    def test_closing_connections_releases_sessions(self):
        _run, sessions = self._short_flows(20, aggregation=False,
                                           close=True)
        assert sessions == 0

    def test_aggregation_caps_underlay_sessions(self):
        """§4.4: with tunneling, the SmartNIC tracks tunnels, not flows."""
        run, sessions = self._short_flows(50, aggregation=True)
        replica = run.mesh.gateway.all_backends[0].replicas[0]
        cap = (run.mesh.gateway.config.tunnels_per_core
               * replica.config.cores)
        assert sessions <= cap < 50

    def test_exhausted_table_rejects_new_connections(self):
        """§3.2 Issue #4 made visible: the table fills while CPU idles."""
        run = build_testbed("canal")
        gateway = run.mesh.gateway
        sid = run.mesh.tenant_service("svc1").service_id
        replica = gateway.service_backends[sid][0].replicas[0]
        replica.add_sessions(replica.config.session_capacity)

        def scenario():
            connection = yield run.sim.process(
                run.mesh.open_connection(run.client_pod, "svc1"))
            response = yield run.sim.process(
                run.mesh.request(connection, HttpRequest()))
            return response

        process = run.sim.process(scenario())
        run.sim.run()
        assert process.value.status == 503
        # CPU is nearly idle while sessions are the binding constraint.
        assert replica.cpu.busy_time() < 1e-3
