"""Property-based tests (hypothesis) on core data structures/invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.core import BucketTable, DisaggregatedLB, Replica, ShuffleSharder
from repro.core.backend import Backend
from repro.core.healthcheck import HealthCheckPlan, ServicePlacement
from repro.core.replica import ReplicaConfig
from repro.kernel import NagleConfig, batch_factor
from repro.netsim import Cidr, EcmpRouter, FiveTuple, int_to_ip, ip_to_int
from repro.simcore import Simulator, percentile
from repro.simcore.rng import lognormal_from_median

ip_ints = st.integers(min_value=0, max_value=0xFFFFFFFF)
ports = st.integers(min_value=0, max_value=65535)


@st.composite
def five_tuples(draw):
    return FiveTuple(int_to_ip(draw(ip_ints)), draw(ports),
                     int_to_ip(draw(ip_ints)), draw(ports))


class TestAddressingProperties:
    @given(ip_ints)
    def test_ip_roundtrip(self, value):
        assert ip_to_int(int_to_ip(value)) == value

    @given(st.integers(min_value=0, max_value=28), ip_ints)
    def test_cidr_contains_its_hosts_sampled(self, prefix, base):
        network = base & (0xFFFFFFFF << (32 - prefix)) & 0xFFFFFFFF
        cidr = Cidr(int_to_ip(network), prefix)
        # Check boundary members rather than iterating huge blocks.
        assert cidr.contains(int_to_ip(network))
        assert cidr.contains(int_to_ip(network + cidr.size - 1))


class TestFlowHashProperties:
    @given(five_tuples())
    def test_hash_stable(self, flow):
        assert flow.flow_hash(7) == flow.flow_hash(7)

    @given(five_tuples())
    def test_reversal_is_involution(self, flow):
        assert flow.reversed().reversed() == flow

    @given(five_tuples(), st.integers(min_value=1, max_value=16))
    def test_ecmp_selection_in_range(self, flow, hops):
        router = EcmpRouter(list(range(hops)))
        assert router.select(flow) in range(hops)


class TestPercentileProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=200),
           st.floats(min_value=0, max_value=100))
    def test_percentile_within_range(self, values, p):
        result = percentile(values, p)
        assert min(values) <= result <= max(values)

    @given(st.lists(st.floats(min_value=0, max_value=1e6,
                              allow_nan=False), min_size=2, max_size=100))
    def test_percentile_monotone_in_p(self, values):
        assert percentile(values, 25) <= percentile(values, 75)


class TestNagleProperties:
    @given(st.integers(min_value=1, max_value=10_000),
           st.floats(min_value=0, max_value=1e6, allow_nan=False))
    def test_batch_factor_at_least_one(self, size, rate):
        assert batch_factor(size, rate, NagleConfig()) >= 1.0

    @given(st.integers(min_value=1461, max_value=100_000),
           st.floats(min_value=0, max_value=1e6, allow_nan=False))
    def test_oversized_messages_never_aggregate(self, size, rate):
        assert batch_factor(size, rate, NagleConfig()) == 1.0


class TestBucketTableProperties:
    @given(st.lists(st.sampled_from(["a", "b", "c", "d", "e"]),
                    min_size=1, max_size=5, unique=True),
           st.integers(min_value=1, max_value=64),
           five_tuples())
    def test_every_bucket_reachable_and_headed(self, replicas, buckets,
                                               flow):
        table = BucketTable(1, num_buckets=buckets)
        table.build(replicas)
        chain = table.chain_for(flow)
        assert chain
        assert chain[0] in replicas

    @given(st.integers(min_value=2, max_value=6),
           st.integers(min_value=2, max_value=4))
    def test_chain_length_never_exceeds_max(self, replicas, max_chain):
        table = BucketTable(1, num_buckets=16, max_chain=max_chain)
        names = [f"r{i}" for i in range(replicas)]
        table.build(names)
        # Repeatedly drain and replace: the cap must always hold.
        for round_index in range(10):
            victim = names[round_index % replicas]
            replacement = names[(round_index + 1) % replicas]
            table.prepare_offline(victim, [replacement])
            assert table.max_chain_length() <= max_chain


class TestRedirectorProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=2, max_value=5))
    def test_established_flows_sticky_across_one_drain(self, seed,
                                                       replica_count):
        sim = Simulator(seed)
        replicas = [Replica(sim, f"ip{i}", "az1", ReplicaConfig())
                    for i in range(replica_count)]
        lb = DisaggregatedLB(service_id=seed % 100, replicas=replicas)
        rng = random.Random(seed)
        flows = [FiveTuple(int_to_ip(rng.randrange(2 ** 32)),
                           rng.randrange(65536), "10.9.9.9", 443)
                 for _ in range(30)]
        owners = {f: lb.deliver(f, is_syn=True).replica.name for f in flows}
        victim = f"ip{rng.randrange(replica_count)}"
        lb.drain_replica(victim)
        for flow in flows:
            assert lb.deliver(flow, is_syn=False).replica.name == owners[flow]
        for _ in range(20):
            fresh = FiveTuple(int_to_ip(rng.randrange(2 ** 32)),
                              rng.randrange(65536), "10.9.9.9", 443)
            assert lb.deliver(fresh, is_syn=True).replica.name != victim


class TestShuffleShardingProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=4, max_value=10),
           st.integers(min_value=2, max_value=12))
    def test_no_two_services_share_combination(self, seed, per_az,
                                               service_count):
        sim = Simulator(seed)
        sharder = ShuffleSharder(random.Random(seed),
                                 backends_per_service_per_az=2,
                                 azs_per_service=2)
        pools = {az: [Backend(sim, f"{az}-b{i}", az)
                      for i in range(per_az)]
                 for az in ("az1", "az2")}
        import math
        capacity = math.comb(per_az, 2) ** 2
        count = min(service_count, capacity)
        for service_id in range(count):
            for backend in sharder.assign(service_id, pools):
                backend.install_service(service_id)
        assert sharder.fully_overlapping_pairs() == 0
        for service_id in range(count):
            survivors = sharder.survivors_if_combination_fails(service_id)
            assert all(v >= 1 for v in survivors.values())


class TestBackendProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=0, max_value=50_000,
                              allow_nan=False),
                    min_size=1, max_size=8),
           st.integers(min_value=1, max_value=4))
    def test_load_conservation_across_replicas(self, loads, replica_count):
        sim = Simulator(0)
        backend = Backend(sim, "b", "az1", replicas=replica_count)
        for service_id, rps in enumerate(loads):
            backend.install_service(service_id)
            backend.offer_load(service_id, rps)
        carried = sum(r.offered_rps for r in backend.replicas)
        assert carried == sum(rps for rps in loads if rps > 0) \
            or abs(carried - sum(loads)) < 1e-6


class TestHealthCheckProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=1, max_value=32),
           st.integers(min_value=1, max_value=16))
    def test_stage_monotonicity(self, services, replicas, cores):
        placements = [ServicePlacement(
            service_id=i,
            backend_names=tuple(f"b{j}" for j in range((i % 3) + 1)),
            app_endpoints=frozenset(f"a{k}" for k in range(i, i + 3)))
            for i in range(services)]
        plan = HealthCheckPlan(placements, replicas_per_backend=replicas,
                               cores_per_replica=cores)
        stages = plan.reduction()
        assert stages.base >= stages.service_level
        assert stages.service_level >= stages.core_level
        assert stages.core_level >= stages.replica_level
        assert stages.replica_level > 0


class TestLognormalProperties:
    @given(st.floats(min_value=1e-6, max_value=1e3, allow_nan=False),
           st.floats(min_value=0.01, max_value=2.0))
    def test_sample_positive(self, median, sigma):
        rng = random.Random(1)
        assert lognormal_from_median(rng, median, sigma) > 0


class TestRateLimiterProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.floats(min_value=1.0, max_value=1000.0),
           st.lists(st.floats(min_value=0.0, max_value=0.05),
                    min_size=1, max_size=300))
    def test_admissions_bounded_by_rate(self, rate, gaps):
        """Token bucket invariant: admitted <= burst + rate x elapsed."""
        from repro.mesh import RateLimiter
        limiter = RateLimiter(rate_per_s=rate)
        now = 0.0
        for gap in gaps:
            now += gap
            limiter.allow(now)
        assert limiter.admitted <= limiter.burst + rate * now + 1e-6

    @settings(max_examples=50, deadline=None)
    @given(st.floats(min_value=1.0, max_value=1000.0),
           st.integers(min_value=1, max_value=500))
    def test_all_accounted(self, rate, attempts):
        from repro.mesh import RateLimiter
        limiter = RateLimiter(rate_per_s=rate)
        for _ in range(attempts):
            limiter.allow(0.0)
        assert limiter.admitted + limiter.dropped == attempts


class TestEconomicsProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=1, max_value=2000),
           st.floats(min_value=1_000, max_value=300_000),
           st.floats(min_value=10_000, max_value=2_000_000))
    def test_savings_ordering(self, services, rps, sessions):
        """Both mechanisms combined never save less than either alone,
        and savings stay within (0, 1)."""
        from repro.core import RegionDemand, cost_reduction
        demand = RegionDemand(services=services, rps_per_service=rps,
                              sessions_per_service=sessions)
        redirector = cost_reduction(demand, redirector=True,
                                    tunneling=False)
        tunneling = cost_reduction(demand, redirector=False, tunneling=True)
        both = cost_reduction(demand, redirector=True, tunneling=True)
        assert 0.0 <= both < 1.0
        assert both >= redirector - 1e-9
        assert both >= tunneling - 1e-9


class TestDnsResolverProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from(["az1", "az2", "az3"]),
                              st.booleans()),
                    min_size=1, max_size=12),
           st.sampled_from(["az1", "az2", "az3"]))
    def test_local_preference_and_health(self, records, client_az):
        """Resolution always returns a healthy record, and a local one
        whenever any healthy local record exists."""
        import random as _random
        from repro.netsim import AzAwareResolver, ResolutionError
        resolver = AzAwareResolver(rng=_random.Random(0))
        for index, (az, healthy) in enumerate(records):
            resolver.register("svc", f"addr-{index}", az)
            resolver.set_health("svc", f"addr-{index}", healthy)
        healthy_azs = {az for az, ok in records if ok}
        if not healthy_azs:
            try:
                resolver.resolve("svc", client_az)
                assert False, "should have raised"
            except ResolutionError:
                return
        record = resolver.resolve("svc", client_az)
        assert record.healthy
        if client_az in healthy_azs:
            assert record.az == client_az
