"""Tests for Canal's minimal on-node proxy."""

import pytest

from repro.core import OnNodeProxy
from repro.mesh import DEFAULT_COSTS
from repro.simcore import Simulator


@pytest.fixture
def sim():
    return Simulator(0)


@pytest.fixture
def proxy(sim):
    return OnNodeProxy(sim, "worker1", "az1", cores=1)


class TestDataPath:
    def test_cost_includes_ebpf_and_l4(self, proxy):
        cost = proxy.data_path_cost_s(1000, mtls=False)
        expected = (DEFAULT_COSTS.ebpf_redirect_cpu_s()
                    + DEFAULT_COSTS.canal_onnode_l4_s)
        assert cost == pytest.approx(expected)

    def test_mtls_adds_symmetric_crypto(self, proxy):
        plain = proxy.data_path_cost_s(10_000, mtls=False)
        encrypted = proxy.data_path_cost_s(10_000, mtls=True)
        assert encrypted - plain == pytest.approx(
            DEFAULT_COSTS.symmetric_cost(10_000))

    def test_process_message_consumes_cpu(self, sim, proxy):
        sim.process(proxy.process_message("pod-1", "svc", 100, 1000))
        sim.run()
        assert proxy.tier.cpu.busy_time() > 0

    def test_cheaper_than_a_sidecar_pass(self, proxy):
        """The architectural claim: the on-node proxy is far lighter
        than a sidecar's L7 pass."""
        onnode = proxy.data_path_cost_s(1152, mtls=True)
        sidecar = (DEFAULT_COSTS.istio_sidecar_l7_s
                   + 2 * DEFAULT_COSTS.iptables_redirect_cpu_s())
        assert onnode < sidecar / 5


class TestObservability:
    def test_flow_records_labeled_per_pod(self, sim, proxy):
        sim.process(proxy.process_message("pod-1", "svc-a", 100, 900))
        sim.process(proxy.process_message("pod-2", "svc-b", 50, 50))
        sim.run()
        assert len(proxy.flow_records) == 2
        report = proxy.pod_traffic_report()
        assert report["pod-1"] == 1000
        assert report["pod-2"] == 100

    def test_records_carry_service_and_time(self, sim, proxy):
        sim.process(proxy.process_message("pod-1", "svc-a", 10, 10))
        sim.run()
        record = proxy.flow_records[0]
        assert record.service == "svc-a"
        assert record.time >= 0.0


class TestHandshakeWork:
    def test_handshake_charges_setup_costs(self, sim, proxy):
        sim.process(proxy.handshake_work())
        sim.run()
        expected = (DEFAULT_COSTS.handshake_base_s
                    + DEFAULT_COSTS.connection_setup_s)
        assert proxy.tier.cpu.busy_time() == pytest.approx(expected)

    def test_nagle_enabled_by_default(self, proxy):
        """Canal's fix for the eBPF small-packet problem (§4.1.2)."""
        assert proxy.redirect.nagle_enabled
