"""Tests for the multi-tenant mesh gateway."""

import pytest

from repro.core import GatewayConfig, MeshGateway, NoBackendAvailable
from repro.core.replica import ReplicaConfig
from repro.netsim import FiveTuple
from repro.simcore import Simulator


def make_gateway(sim, azs=2, backends_per_az=4, services=4):
    config = GatewayConfig(
        replicas_per_backend=2, backends_per_service_per_az=2,
        azs_per_service=2,
        replica=ReplicaConfig(cores=8, request_cost_s=100e-6,
                              request_cost_sigma=0.0))
    gateway = MeshGateway(sim, config)
    gateway.deploy_initial([f"az{i + 1}" for i in range(azs)],
                           backends_per_az)
    tenant_services = []
    for index in range(services):
        tenant = gateway.registry.add_tenant(f"t{index + 1}")
        service = gateway.registry.add_service(
            tenant, "web", f"10.0.0.{index + 1}")
        gateway.register_service(service)
        tenant_services.append(service)
    return gateway, tenant_services


@pytest.fixture
def sim():
    return Simulator(3)


class TestRegistration:
    def test_service_gets_shuffle_shard(self, sim):
        gateway, services = make_gateway(sim)
        backends = gateway.service_backends[services[0].service_id]
        assert len(backends) == 4
        assert len({b.az for b in backends}) == 2

    def test_duplicate_registration_rejected(self, sim):
        gateway, services = make_gateway(sim)
        with pytest.raises(ValueError):
            gateway.register_service(services[0])

    def test_dns_records_per_az(self, sim):
        gateway, services = make_gateway(sim)
        name = f"svc-{services[0].service_id}.mesh.gateway"
        endpoints = gateway.dns.endpoints(name)
        assert {record.az for record in endpoints} == {"az1", "az2"}

    def test_pool_grows_when_combinations_exhaust(self, sim):
        config = GatewayConfig(backends_per_service_per_az=2,
                               azs_per_service=1,
                               replica=ReplicaConfig(cores=2))
        gateway = MeshGateway(sim, config)
        gateway.deploy_initial(["az1"], 2)  # C(2,2)=1 combination
        tenant = gateway.registry.add_tenant("t")
        for index in range(2):
            service = gateway.registry.add_service(
                tenant, f"s{index}", f"10.0.1.{index + 1}")
            gateway.register_service(service)
        assert len(gateway.backends_by_az["az1"]) > 2

    def test_exhaustion_fallback_grows_only_smallest_pools(self, sim):
        """The fallback must leave already-large AZ pools alone."""
        config = GatewayConfig(backends_per_service_per_az=2,
                               azs_per_service=2,
                               replica=ReplicaConfig(cores=2))
        gateway = MeshGateway(sim, config)
        gateway.deploy_initial(["az1"], 3)
        gateway.deploy_initial(["az2"], 1)  # too small: forces the retry
        tenant = gateway.registry.add_tenant("t")
        service = gateway.registry.add_service(tenant, "s0", "10.0.1.1")
        backends = gateway.register_service(service)
        assert len(backends) == 4
        # Only az2 (the smallest pool) grew; az1 stayed at 3.
        assert len(gateway.backends_by_az["az1"]) == 3
        assert len(gateway.backends_by_az["az2"]) == 2

    def test_exhaustion_after_retry_raises_clear_error(self, sim):
        """A second exhaustion must explain itself, not re-raise bare."""
        from repro.core.sharding import ShardingError
        config = GatewayConfig(backends_per_service_per_az=2,
                               azs_per_service=2,
                               replica=ReplicaConfig(cores=2))
        gateway = MeshGateway(sim, config)
        gateway.deploy_initial(["az1"], 2)  # one AZ: growth cannot help
        tenant = gateway.registry.add_tenant("t")
        service = gateway.registry.add_service(tenant, "s0", "10.0.1.1")
        with pytest.raises(ShardingError,
                           match="still exhausted") as excinfo:
            gateway.register_service(service)
        assert service.qualified_name in str(excinfo.value)
        assert isinstance(excinfo.value.__cause__, ShardingError)


class TestFluidLoad:
    def test_load_spreads_across_backends(self, sim):
        gateway, services = make_gateway(sim)
        sid = services[0].service_id
        gateway.set_service_load(sid, 40_000.0)
        carriers = gateway.service_backends[sid]
        shares = [b.service_rps(sid) for b in carriers]
        assert all(s == pytest.approx(10_000.0) for s in shares)

    def test_negative_load_rejected(self, sim):
        gateway, services = make_gateway(sim)
        with pytest.raises(ValueError):
            gateway.set_service_load(services[0].service_id, -1.0)

    def test_extend_service_lowers_water(self, sim):
        gateway, services = make_gateway(sim)
        sid = services[0].service_id
        gateway.set_service_load(sid, 100_000.0)
        before = max(b.water_level()
                     for b in gateway.service_backends[sid])
        spare = next(b for b in gateway.all_backends
                     if not b.hosts_service(sid))
        gateway.extend_service(sid, spare)
        after = max(b.water_level()
                    for b in gateway.service_backends[sid])
        assert after < before

    def test_extend_duplicate_rejected(self, sim):
        gateway, services = make_gateway(sim)
        sid = services[0].service_id
        backend = gateway.service_backends[sid][0]
        with pytest.raises(ValueError):
            gateway.extend_service(sid, backend)

    def test_shrink_service(self, sim):
        gateway, services = make_gateway(sim)
        sid = services[0].service_id
        gateway.set_service_load(sid, 40_000.0)
        victim = gateway.service_backends[sid][0]
        gateway.shrink_service(sid, victim)
        assert victim.service_rps(sid) == 0.0
        assert len(gateway.service_backends[sid]) == 3

    def test_cannot_shrink_last_backend(self, sim):
        gateway, services = make_gateway(sim)
        sid = services[0].service_id
        backends = list(gateway.service_backends[sid])
        for backend in backends[:-1]:
            gateway.shrink_service(sid, backend)
        with pytest.raises(ValueError):
            gateway.shrink_service(sid, backends[-1])

    def test_throttle_caps_offered_load(self, sim):
        """Redirector-level early drop (§6.2)."""
        gateway, services = make_gateway(sim)
        sid = services[0].service_id
        gateway.throttle_service(sid, 10_000.0)
        gateway.set_service_load(sid, 100_000.0)
        total = sum(b.service_rps(sid)
                    for b in gateway.service_backends[sid])
        assert total == pytest.approx(10_000.0)
        gateway.unthrottle_service(sid)
        gateway.set_service_load(sid, 100_000.0)
        total = sum(b.service_rps(sid)
                    for b in gateway.service_backends[sid])
        assert total == pytest.approx(100_000.0)


class TestHierarchicalFailure:
    def test_backend_failure_shifts_load(self, sim):
        """Level 2: other shuffle-shard backends absorb the failure."""
        gateway, services = make_gateway(sim)
        sid = services[0].service_id
        gateway.set_service_load(sid, 30_000.0)
        victim = gateway.service_backends[sid][0]
        gateway.fail_backend(victim.name)
        survivors = [b for b in gateway.service_backends[sid]
                     if b.is_healthy]
        assert sum(b.service_rps(sid) for b in survivors) == pytest.approx(
            30_000.0)
        assert not gateway.service_outage(sid)

    def test_az_failure_served_by_other_az(self, sim):
        """Level 3: AZ-wide outage falls back cross-AZ."""
        gateway, services = make_gateway(sim)
        sid = services[0].service_id
        gateway.set_service_load(sid, 30_000.0)
        gateway.fail_az("az1")
        assert not gateway.service_outage(sid)
        live = [b for b in gateway.service_backends[sid] if b.is_healthy]
        assert all(b.az == "az2" for b in live)

    def test_dns_tracks_az_health(self, sim):
        gateway, services = make_gateway(sim)
        sid = services[0].service_id
        name = f"svc-{sid}.mesh.gateway"
        gateway.fail_az("az1")
        record = gateway.dns.resolve(name, client_az="az1")
        assert record.az == "az2"
        gateway.recover_az("az1")
        record = gateway.dns.resolve(name, client_az="az1")
        assert record.az == "az1"

    def test_total_outage_detected(self, sim):
        gateway, services = make_gateway(sim)
        sid = services[0].service_id
        for backend in gateway.service_backends[sid]:
            gateway.fail_backend(backend.name)
        assert gateway.service_outage(sid)

    def test_other_services_survive_query_of_death(self, sim):
        """Shuffle sharding: one service's total failure leaves every
        other service with healthy backends."""
        gateway, services = make_gateway(sim, services=6, backends_per_az=6)
        victim_sid = services[0].service_id
        for backend in gateway.service_backends[victim_sid]:
            gateway.fail_backend(backend.name)
        for other in services[1:]:
            assert not gateway.service_outage(other.service_id)

    def test_recovery_restores_distribution(self, sim):
        gateway, services = make_gateway(sim)
        sid = services[0].service_id
        gateway.set_service_load(sid, 40_000.0)
        victim = gateway.service_backends[sid][0]
        gateway.fail_backend(victim.name)
        gateway.recover_backend(victim.name)
        assert victim.service_rps(sid) == pytest.approx(10_000.0)


class TestDesDataplane:
    def test_request_reaches_replica(self, sim):
        gateway, services = make_gateway(sim)
        sid = services[0].service_id
        flow = FiveTuple("10.0.0.1", 12345, "10.9.9.9", 443)
        process = sim.process(gateway.process_request(
            sid, flow, is_syn=True, client_az="az1"))
        sim.run()
        result = process.value
        assert result.replica.requests_served == 1

    def test_requests_prefer_local_az(self, sim):
        gateway, services = make_gateway(sim)
        sid = services[0].service_id
        result = gateway.deliver(
            sid, FiveTuple("10.0.0.1", 1, "10.9.9.9", 443),
            is_syn=True, client_az="az2")
        assert result.replica.az == "az2"

    def test_flow_stickiness_through_gateway(self, sim):
        gateway, services = make_gateway(sim)
        sid = services[0].service_id
        flow = FiveTuple("10.0.0.1", 777, "10.9.9.9", 443)
        first = gateway.deliver(sid, flow, is_syn=True, client_az="az1")
        again = gateway.deliver(sid, flow, is_syn=False, client_az="az1")
        assert again.replica.name == first.replica.name

    def test_water_levels_view(self, sim):
        gateway, services = make_gateway(sim)
        levels = gateway.water_levels()
        assert len(levels) == len(gateway.all_backends)
        assert all(v == 0.0 for v in levels.values())

    def test_overloaded_backends_detection(self, sim):
        gateway, services = make_gateway(sim)
        sid = services[0].service_id
        gateway.set_service_load(sid, 10_000_000.0)
        assert gateway.overloaded_backends()
