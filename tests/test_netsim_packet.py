"""Tests for packets, five-tuples, and VXLAN encapsulation."""

import pytest

from repro.netsim import (
    FiveTuple,
    Packet,
    TCP,
    UDP,
    VXLAN_OVERHEAD_BYTES,
    VxlanHeader,
)


def make_flow(sport=12345):
    return FiveTuple("10.0.0.1", sport, "10.0.0.2", 80)


class TestFiveTuple:
    def test_port_range_validated(self):
        with pytest.raises(ValueError):
            FiveTuple("1.1.1.1", 70000, "2.2.2.2", 80)

    def test_reversed_swaps_endpoints(self):
        flow = make_flow()
        back = flow.reversed()
        assert back.src_ip == flow.dst_ip
        assert back.dst_port == flow.src_port
        assert back.protocol == flow.protocol

    def test_hash_deterministic(self):
        assert make_flow().flow_hash() == make_flow().flow_hash()

    def test_hash_salt_changes_value(self):
        flow = make_flow()
        assert flow.flow_hash(0) != flow.flow_hash(1)

    def test_distinct_flows_differ(self):
        assert make_flow(1000).flow_hash() != make_flow(1001).flow_hash()

    def test_hashable_as_dict_key(self):
        mapping = {make_flow(): "value"}
        assert mapping[make_flow()] == "value"


class TestVxlanHeader:
    def test_vni_range(self):
        with pytest.raises(ValueError):
            VxlanHeader(vni=1 << 24, outer_src_ip="1.1.1.1",
                        outer_dst_ip="2.2.2.2")

    def test_valid(self):
        header = VxlanHeader(vni=100, outer_src_ip="1.1.1.1",
                             outer_dst_ip="2.2.2.2", outer_src_port=40001)
        assert header.outer_src_port == 40001


class TestPacket:
    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Packet(make_flow(), size_bytes=-1)

    def test_wire_size_plain(self):
        packet = Packet(make_flow(), size_bytes=100)
        assert packet.wire_size == 100

    def test_encapsulation_adds_overhead(self):
        packet = Packet(make_flow(), size_bytes=100)
        header = VxlanHeader(100, "1.1.1.1", "2.2.2.2")
        wrapped = packet.encapsulate(header)
        assert wrapped.wire_size == 100 + VXLAN_OVERHEAD_BYTES
        assert packet.vxlan is None  # original untouched

    def test_double_encapsulation_rejected(self):
        packet = Packet(make_flow(), size_bytes=100).encapsulate(
            VxlanHeader(100, "1.1.1.1", "2.2.2.2"))
        with pytest.raises(ValueError):
            packet.encapsulate(VxlanHeader(101, "3.3.3.3", "4.4.4.4"))

    def test_decapsulate_roundtrip(self):
        packet = Packet(make_flow(), size_bytes=100)
        wrapped = packet.encapsulate(VxlanHeader(100, "1.1.1.1", "2.2.2.2"))
        inner = wrapped.decapsulate()
        assert inner.vxlan is None
        assert inner.five_tuple == packet.five_tuple

    def test_decapsulate_plain_rejected(self):
        with pytest.raises(ValueError):
            Packet(make_flow(), size_bytes=1).decapsulate()

    def test_outer_five_tuple_is_tunnel(self):
        packet = Packet(make_flow(), size_bytes=100).encapsulate(
            VxlanHeader(100, "9.9.9.1", "9.9.9.2", outer_src_port=40005))
        outer = packet.outer_five_tuple()
        assert outer.src_ip == "9.9.9.1"
        assert outer.dst_port == 4789
        assert outer.protocol == UDP

    def test_outer_five_tuple_plain_is_inner(self):
        packet = Packet(make_flow(), size_bytes=100)
        assert packet.outer_five_tuple() == packet.five_tuple
        assert packet.five_tuple.protocol == TCP
