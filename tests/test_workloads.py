"""Tests for load drivers and trace generators."""

import random

import pytest

from repro.experiments.testbed import build_testbed
from repro.workloads import (
    ClosedLoopDriver,
    OpenLoopDriver,
    ShortFlowDriver,
    attack_trace,
    diurnal_profile,
    flat_profile,
    growth_trend,
    production_latency_samples,
    surge_trace,
    update_frequency_for_cluster,
)


@pytest.fixture
def rng():
    return random.Random(99)


class TestDrivers:
    def test_closed_loop_counts(self):
        run = build_testbed("no-mesh")
        driver = ClosedLoopDriver(run.sim, run.mesh, run.client_pod,
                                  "svc1", connections=2,
                                  requests_per_connection=10)
        report = run.run_driver(driver)
        assert report.completed == 20
        assert report.ok_count == 20
        assert len(report.latency) == 20

    def test_closed_loop_think_time_paces(self):
        run = build_testbed("no-mesh")
        driver = ClosedLoopDriver(run.sim, run.mesh, run.client_pod,
                                  "svc1", connections=1,
                                  requests_per_connection=5,
                                  think_time_s=1.0)
        report = run.run_driver(driver)
        assert report.duration_s >= 5.0

    def test_open_loop_offered_close_to_target(self):
        run = build_testbed("no-mesh")
        driver = OpenLoopDriver(run.sim, run.mesh, run.client_pod,
                                "svc1", rps=100.0, duration_s=5.0,
                                connections=10)
        report = run.run_driver(driver)
        assert report.offered == pytest.approx(500, rel=0.25)
        assert report.completed == report.offered

    def test_open_loop_throughput(self):
        run = build_testbed("no-mesh")
        driver = OpenLoopDriver(run.sim, run.mesh, run.client_pod,
                                "svc1", rps=50.0, duration_s=4.0)
        report = run.run_driver(driver)
        assert report.throughput_rps == pytest.approx(
            report.completed / report.duration_s)

    def test_short_flow_opens_connection_per_request(self):
        run = build_testbed("canal")
        driver = ShortFlowDriver(run.sim, run.mesh, run.client_pod,
                                 "svc1", rps=50.0, duration_s=1.0)
        report = run.run_driver(driver)
        assert report.completed > 10
        # Short-flow latency includes the handshake: well above the
        # persistent-connection request latency.
        assert report.latency.mean > 2e-3

    def test_driver_validation(self):
        run = build_testbed("no-mesh")
        with pytest.raises(ValueError):
            OpenLoopDriver(run.sim, run.mesh, run.client_pod, "svc1",
                           rps=0.0, duration_s=1.0)
        with pytest.raises(ValueError):
            ShortFlowDriver(run.sim, run.mesh, run.client_pod, "svc1",
                            rps=10.0, duration_s=-1.0)

    def test_error_count(self):
        run = build_testbed("no-mesh")
        driver = ClosedLoopDriver(run.sim, run.mesh, run.client_pod,
                                  "svc1", connections=1,
                                  requests_per_connection=3)
        report = run.run_driver(driver)
        report.statuses.append(503)
        assert report.error_count == 1


class TestTraces:
    def test_diurnal_profile_peaks_where_asked(self, rng):
        profile = diurnal_profile(rng, 100.0, 1000.0, samples=96,
                                  peak_position=0.25, noise=0.0)
        assert profile.peak_index == 24

    def test_diurnal_validation(self, rng):
        with pytest.raises(ValueError):
            diurnal_profile(rng, 100.0, 50.0)

    def test_flat_profile_is_flat(self, rng):
        profile = flat_profile(rng, 100.0, noise=0.0)
        assert min(profile.samples) == max(profile.samples)

    def test_surge_trace_levels(self, rng):
        trace = surge_trace(rng, 100.0, 1000.0, duration_s=60,
                            surge_start_s=30, ramp_s=5, noise=0.0)
        assert trace[0] == pytest.approx(100.0)
        assert trace[59] == pytest.approx(1000.0)
        assert len(trace) == 60

    def test_attack_trace_signature(self, rng):
        """Sessions surge, RPS barely moves — classify() must see DDoS."""
        rps, sessions = attack_trace(rng, 1000.0, 50_000.0,
                                     duration_s=60, attack_start_s=30)
        rps_growth = rps[-1] / rps[0]
        session_growth = sessions[-1] / sessions[0]
        assert rps_growth < 1.3
        assert session_growth > 3.0

    def test_growth_trend_endpoints(self, rng):
        series = growth_trend(rng, 100.0, 200.0, points=9, noise=0.0)
        assert series[0] == pytest.approx(100.0)
        assert series[-1] == pytest.approx(200.0)

    def test_growth_trend_validation(self, rng):
        with pytest.raises(ValueError):
            growth_trend(rng, 1.0, 2.0, points=1)

    def test_update_frequency_bands(self, rng):
        """Table 2's bands by cluster size."""
        small = update_frequency_for_cluster(rng, 300)
        large = update_frequency_for_cluster(rng, 2250)
        assert 0.5 < small < 6.0
        assert 35.0 < large < 75.0

    def test_production_latency_bimodal(self, rng):
        samples = production_latency_samples(rng, count=5000)
        in_40_50 = sum(1 for v in samples if 40e-3 <= v < 50e-3)
        in_100_200 = sum(1 for v in samples if 100e-3 <= v < 200e-3)
        assert in_40_50 / len(samples) > 0.2
        assert in_100_200 / len(samples) > 0.2
