"""Tests for anomaly classification and the rapid responder."""

import pytest

from repro.core import (
    AnomalySignals,
    GatewayConfig,
    GatewayMonitor,
    MeshGateway,
    RapidResponder,
    SandboxManager,
    ScalingEngine,
    ScalingTimings,
    classify,
)
from repro.core.anomaly import (
    DDOS,
    EXPENSIVE_QUERY,
    NORMAL_GROWTH,
    UNDETERMINED,
)
from repro.core.replica import ReplicaConfig
from repro.simcore import Simulator


class TestClassification:
    def test_attack_signature(self):
        """Case #1: sessions surge without matching RPS → DDoS."""
        signals = AnomalySignals(rps_growth=1.05, session_growth=6.0,
                                 water_growth=1.4)
        assert classify(signals) == DDOS

    def test_workload_growth(self):
        signals = AnomalySignals(rps_growth=2.5, session_growth=2.6,
                                 water_growth=2.4)
        assert classify(signals) == NORMAL_GROWTH

    def test_expensive_query(self):
        """Water rises, RPS doesn't: a query of death costs CPU per
        request, not request volume."""
        signals = AnomalySignals(rps_growth=1.05, session_growth=1.1,
                                 water_growth=2.0)
        assert classify(signals) == EXPENSIVE_QUERY

    def test_undetermined(self):
        signals = AnomalySignals(rps_growth=1.0, session_growth=1.0,
                                 water_growth=1.0)
        assert classify(signals) == UNDETERMINED


def make_stack(sim, signal):
    config = GatewayConfig(
        replicas_per_backend=2, backends_per_service_per_az=2,
        azs_per_service=2,
        replica=ReplicaConfig(cores=8, request_cost_s=100e-6))
    gateway = MeshGateway(sim, config)
    gateway.deploy_initial(["az1", "az2"], 6)
    services = []
    for index in range(4):
        tenant = gateway.registry.add_tenant(f"t{index + 1}")
        service = gateway.registry.add_service(tenant, "web",
                                               f"10.0.0.{index + 1}")
        gateway.register_service(service)
        services.append(service)
    monitor = GatewayMonitor(sim, gateway, interval_s=1.0)
    scaling = ScalingEngine(sim, gateway,
                            timings=ScalingTimings(reuse_median_s=2.0,
                                                   settle_median_s=2.0))
    sandbox = SandboxManager(sim, gateway)
    responder = RapidResponder(sim, gateway, monitor, scaling, sandbox,
                               signal_provider=lambda sid: signal)
    return gateway, services, monitor, scaling, sandbox, responder


def overload(sim, gateway, monitor, service, seconds=20):
    def driver():
        for second in range(seconds):
            gateway.set_service_load(service.service_id,
                                     10_000.0 + 200_000.0 * second)
            monitor.sample()
            yield sim.timeout(1.0)

    sim.process(driver())
    sim.run(until=seconds + 120.0)


class TestRapidResponder:
    def test_normal_growth_triggers_scaling(self):
        sim = Simulator(11)
        signal = AnomalySignals(rps_growth=3.0, session_growth=3.0,
                                water_growth=2.0)
        gateway, services, monitor, scaling, sandbox, responder = \
            make_stack(sim, signal)
        overload(sim, gateway, monitor, services[0])
        assert any(r.action == "scale" for r in responder.responses)
        assert scaling.events

    def test_attack_triggers_lossy_sandbox(self):
        sim = Simulator(12)
        signal = AnomalySignals(rps_growth=1.05, session_growth=6.0,
                                water_growth=2.0)
        gateway, services, monitor, scaling, sandbox, responder = \
            make_stack(sim, signal)
        overload(sim, gateway, monitor, services[0])
        assert any(r.action == "sandbox_lossy" for r in responder.responses)
        assert any(record.mode == "lossy" for record in sandbox.records)
        assert services[0].service_id in gateway.sandboxed

    def test_expensive_query_triggers_lossless(self):
        sim = Simulator(13)
        signal = AnomalySignals(rps_growth=1.05, session_growth=1.1,
                                water_growth=2.0)
        gateway, services, monitor, scaling, sandbox, responder = \
            make_stack(sim, signal)
        overload(sim, gateway, monitor, services[0])
        assert any(r.action == "sandbox_lossless"
                   for r in responder.responses)

    def test_tenant_alert_throttles_and_suspends(self):
        sim = Simulator(14)
        signal = AnomalySignals(rps_growth=3.0, session_growth=3.0,
                                water_growth=2.0)
        gateway, services, monitor, scaling, sandbox, responder = \
            make_stack(sim, signal)
        gateway.set_service_load(services[0].service_id, 50_000.0)
        monitor.user_cluster_utilization["t1"] = 0.99
        monitor.sample()
        sim.run(until=2.0)
        assert responder.autoscaling_suspended.get("t1")
        assert services[0].service_id in gateway.throttles

    def test_resume_tenant_relaxes(self):
        sim = Simulator(15)
        signal = AnomalySignals(rps_growth=3.0, session_growth=3.0,
                                water_growth=2.0)
        gateway, services, monitor, scaling, sandbox, responder = \
            make_stack(sim, signal)
        sid = services[0].service_id
        gateway.set_service_load(sid, 50_000.0)
        monitor.user_cluster_utilization["t1"] = 0.99
        monitor.sample()
        sim.run(until=2.0)
        responder.resume_tenant("t1", {sid: 50_000.0}, steps=2,
                                interval_s=5.0)
        sim.run(until=60.0)
        assert not responder.autoscaling_suspended.get("t1", False)
        assert sid not in gateway.throttles

    def test_suspended_tenant_not_scaled(self):
        sim = Simulator(16)
        signal = AnomalySignals(rps_growth=3.0, session_growth=3.0,
                                water_growth=2.0)
        gateway, services, monitor, scaling, sandbox, responder = \
            make_stack(sim, signal)
        responder.autoscaling_suspended["t1"] = True
        overload(sim, gateway, monitor, services[0])
        suppressed = [r for r in responder.responses
                      if r.action == "suppressed"]
        scaled_t1 = [r for r in responder.responses
                     if r.action == "scale"
                     and r.service_id == services[0].service_id]
        assert suppressed
        assert not scaled_t1
