"""Tests for repro.obs.trace: causal spans, sampling, analytics,
exporters, and the no-perturbation determinism guarantee."""

import json

import pytest

from repro.experiments.testbed import build_testbed
from repro.experiments.trace_breakdown import _waterfall_run
from repro.mesh import HttpRequest
from repro.obs import (
    Span,
    Trace,
    TraceCollector,
    Tracer,
    chrome_trace,
    critical_path,
    fault_detection_latency,
    get_tracer,
    layer_attribution,
    prometheus_text,
    set_tracer,
    span_from_dict,
    span_to_dict,
    take_collectors,
    traces_json,
    use_tracer,
)
from repro.obs.export import _escape_label
from repro.obs.telemetry import Telemetry
from repro.runtime import use_executor


def _span(trace_id=1, source="a", layer="l4", start=0.0, end=1.0,
          span_id=0, parent_id=0, name="", **kw):
    return Span(trace_id=trace_id, source=source, layer=layer,
                start_s=start, end_s=end, span_id=span_id,
                parent_id=parent_id, name=name, **kw)


class TestEmptyTraceRegression:
    """An empty span list must never crash trace analytics."""

    def test_empty_trace_defaults(self):
        trace = Trace(trace_id=7)
        assert trace.start_s == 0.0
        assert trace.end_s == 0.0
        assert trace.duration_s == 0.0
        assert trace.layers() == []
        assert trace.coverage == "none"
        assert trace.root() is None

    def test_empty_trace_critical_path_gap(self):
        # Regression: this crashed (min/max over an empty sequence)
        # before spans and causality were unified here.
        assert Trace(trace_id=7).critical_path_gap_s() == 0.0

    def test_empty_trace_analytics(self):
        trace = Trace(trace_id=7)
        assert critical_path(trace) == []
        assert layer_attribution(trace) == {}


class TestCausalModel:
    def test_root_children_and_depth(self):
        collector = TraceCollector()
        tracer = Tracer(collector=collector)
        handle = tracer.start("request", source="client", start_s=0.0)
        l7 = handle.add("gateway-l7", "l7", 0.2, 0.8)
        handle.add("replica-exec", "l7", 0.3, 0.7, parent_id=l7)
        handle.finish(1.0, status=200)
        trace = collector.trace(handle.trace_id)
        root = trace.root()
        assert root.name == "request" and root.annotation("status") == "200"
        children = trace.children(root.span_id)
        assert [span.name for span in children] == ["gateway-l7"]
        replica = next(s for s in trace.spans if s.name == "replica-exec")
        assert trace.depth(replica) == 2

    def test_add_tree_defers_nested_specs(self):
        collector = TraceCollector()
        tracer = Tracer(collector=collector)
        handle = tracer.start("request", start_s=1.0)
        handle.add_tree({
            "name": "tls-handshake", "layer": "tls",
            "start_s": 0.0, "end_s": 0.9,
            "annotations": {"peer": "gateway"},
            "children": [
                {"name": "tls-asym", "layer": "tls",
                 "start_s": 0.2, "end_s": 0.7},
            ],
        })
        handle.finish(2.0)
        trace = collector.trace(handle.trace_id)
        handshake = next(s for s in trace.spans if s.name == "tls-handshake")
        asym = next(s for s in trace.spans if s.name == "tls-asym")
        assert handshake.annotation("peer") == "gateway"
        assert asym.parent_id == handshake.span_id
        assert handshake.parent_id == trace.root().span_id

    def test_finish_is_idempotent(self):
        collector = TraceCollector()
        handle = Tracer(collector=collector).start("request", start_s=0.0)
        handle.finish(1.0, status=200)
        handle.finish(9.0, status=503)
        trace = collector.trace(handle.trace_id)
        assert len(trace.spans) == 1
        assert trace.root().annotation("status") == "200"

    def test_span_roundtrips_through_dict(self):
        span = _span(span_id=3, parent_id=1, name="x",
                     annotations=(("k", "v"),))
        assert span_from_dict(span_to_dict(span)) == span


class TestCollectorMigration:
    """The subsumed core.observability aggregates must survive."""

    def test_pod_traffic_report_survives_eviction(self):
        collector = TraceCollector(max_traces=2)
        for trace_id in (1, 2, 3):
            collector.record(_span(trace_id=trace_id, pod="p1",
                                   bytes_out=10, bytes_in=5))
        assert collector.traces_evicted == 1
        assert len(collector.traces()) == 2
        assert collector.pod_traffic_report() == {"p1": 45}

    def test_coverage_report_folds_evicted(self):
        collector = TraceCollector(max_traces=1)
        collector.record(_span(trace_id=1, layer="l4"))
        collector.record(_span(trace_id=1, layer="l7"))
        collector.record(_span(trace_id=2, layer="l7"))  # evicts trace 1
        report = collector.coverage_report()
        assert report["full"] == 1      # evicted at full coverage
        assert report["partial"] == 1   # the live gateway-only trace

    def test_legacy_shim_still_imports(self):
        from repro.core import Span as CoreSpan
        from repro.core.observability import TraceCollector as CoreCollector
        assert CoreSpan is Span
        assert CoreCollector is TraceCollector


class TestAnalytics:
    def _nested_trace(self):
        collector = TraceCollector()
        handle = Tracer(collector=collector).start("request", start_s=0.0)
        l7 = handle.add("gateway-l7", "l7", 2.0, 8.0)
        handle.add("replica-exec", "l7", 3.0, 6.0, parent_id=l7,
                   source="replica/r1")
        handle.add("onnode-l4", "l4", 0.0, 2.0)
        handle.finish(10.0)
        return collector.trace(handle.trace_id)

    def test_critical_path_prefers_deepest_span(self):
        segments = critical_path(self._nested_trace())
        at_4s = next(seg for seg in segments if seg[0] <= 4.0 < seg[1])
        assert at_4s[3] == "replica/r1"  # not the enclosing gateway span

    def test_layer_attribution_is_exclusive_and_complete(self):
        trace = self._nested_trace()
        attribution = layer_attribution(trace)
        # l4 [0,2) + l7 [2,8) + root residue [8,10) = full 10s window.
        assert attribution["l4"] == pytest.approx(2.0)
        assert attribution["l7"] == pytest.approx(6.0)
        assert attribution["request"] == pytest.approx(2.0)
        assert sum(attribution.values()) == pytest.approx(trace.duration_s)

    def test_fault_detection_latency(self):
        collector = TraceCollector()
        tracer = Tracer(collector=collector)
        ok = tracer.start("request", start_s=0.0)
        ok.finish(1.0, status=200)
        bad = tracer.start("request", start_s=4.5)
        bad.finish(5.5, status=503)
        collector.mark_fault(4.0, "inject", "backend_crash", "b0")
        collector.mark_fault(90.0, "inject", "az_crash", "az9")
        report = fault_detection_latency(collector.traces(),
                                         collector.fault_marks)
        assert report[0]["latency_s"] == pytest.approx(1.5)
        assert report[0]["trace_id"] == bad.trace_id
        assert report[1]["latency_s"] is None  # never detected


class TestSamplingDeterminism:
    def test_sampler_is_seed_deterministic(self):
        def sampled_ids(seed):
            tracer = Tracer(sample_rate=0.5, seed=seed)
            ids = []
            for _ in range(64):
                handle = tracer.start("request")
                if handle is not None:
                    ids.append(handle.trace_id)
            return ids

        assert sampled_ids(3) == sampled_ids(3)
        assert sampled_ids(3) != sampled_ids(4)

    def test_trace_ids_consumed_even_when_sampled_out(self):
        tracer = Tracer(sample_rate=0.0, seed=1)
        for _ in range(5):
            assert tracer.start("request") is None
        assert tracer.traces_started == 5
        assert tracer.traces_sampled == 0
        assert tracer.collector.new_trace_id() == 6

    def test_tracing_does_not_perturb_simulation(self):
        """The central determinism rule: toggling tracing must not
        change model behavior (the sampler never touches sim.rng)."""
        def run_latencies(traced):
            run = build_testbed("canal", seed=19)
            latencies = []

            def scenario():
                connection = yield run.sim.process(
                    run.mesh.open_connection(run.client_pod, "svc1"))
                for _ in range(10):
                    response = yield run.sim.process(
                        run.mesh.request(connection, HttpRequest()))
                    latencies.append(response.latency_s)

            run.sim.process(scenario())
            if traced:
                with use_tracer(Tracer(sample_rate=0.5, seed=19)):
                    run.sim.run()
                take_collectors()
            else:
                run.sim.run()
            return latencies

        assert run_latencies(traced=False) == run_latencies(traced=True)

    def test_serial_vs_jobs_byte_identical(self):
        """The exhibit worker returns byte-identical span sets under a
        serial and a pooled executor."""
        spec = ("canal", 11, 6)
        with use_executor(jobs=1):
            serial = _waterfall_run(spec)
        with use_executor(jobs=2):
            pooled = _waterfall_run(spec)
        assert json.dumps(serial, sort_keys=True, default=str) == \
            json.dumps(pooled, sort_keys=True, default=str)


class TestAmbientTracer:
    def test_disabled_by_default(self):
        assert get_tracer() is None

    def test_use_tracer_scopes_and_restores(self):
        with use_tracer() as tracer:
            assert get_tracer() is tracer
        assert get_tracer() is None
        drained = take_collectors()
        assert tracer.collector in drained

    def test_set_tracer_registers_collector(self):
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            assert get_tracer() is tracer
        finally:
            set_tracer(previous)
        assert tracer.collector in take_collectors()


class TestPrometheusEscaping:
    """Label values with backslashes, quotes, and newlines must escape
    per the text exposition format (backslash first, then quote, \\n)."""

    def test_escape_label_order(self):
        assert _escape_label("a\\b") == "a\\\\b"
        assert _escape_label('say "hi"') == 'say \\"hi\\"'
        assert _escape_label("line1\nline2") == "line1\\nline2"
        # Backslash escaping must not double-escape the sequences the
        # later replacements introduce.
        assert _escape_label('\\"\n') == '\\\\\\"\\n'

    def test_prometheus_text_escapes_label_values(self):
        telemetry = Telemetry(enabled=True)
        telemetry.inc("requests_total", service='svc "a"\\prod\nx')
        text = prometheus_text(telemetry)
        assert 'service="svc \\"a\\"\\\\prod\\nx"' in text
        assert "\n\n" not in text  # the raw newline never leaks


class TestExporters:
    def _collector(self):
        collector = TraceCollector()
        tracer = Tracer(collector=collector)
        handle = tracer.start("request", service="svc1", start_s=0.0)
        handle.add("onnode-l4", "l4", 0.0, 0.5, pod="p1", bytes_out=64,
                   bytes_in=32)
        handle.finish(1.0, status=200)
        collector.mark_fault(0.25, "inject", "replica_crash", "r1")
        return collector

    def test_chrome_trace_carries_causality_and_faults(self):
        collector = self._collector()
        payload = chrome_trace(collector.traces(),
                               fault_marks=collector.fault_marks)
        blob = json.dumps(payload)  # must be valid JSON
        events = payload["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert all(e["args"]["span_id"] for e in complete)
        root = next(e for e in complete if e["name"] == "request")
        assert root["args"]["a.status"] == "200"
        instants = [e for e in events if e["ph"] == "i"]
        assert instants and instants[0]["name"] == "inject:replica_crash"
        assert "replica_crash" in blob

    def test_traces_json_shape(self):
        collector = self._collector()
        payload = traces_json(collector.traces(), collector.fault_marks)
        assert len(payload["traces"]) == 1
        trace = payload["traces"][0]
        assert trace["coverage"] == "none"  # l4 only, no l7
        assert {span["name"] for span in trace["spans"]} == \
            {"request", "onnode-l4"}
        assert payload["fault_marks"][0]["kind"] == "replica_crash"
