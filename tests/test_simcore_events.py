"""Tests for the event/process primitives of the DES engine."""

import pytest

from repro.simcore import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Simulator,
    SimulationError,
    Timeout,
)


@pytest.fixture
def sim():
    return Simulator(seed=0)


class TestEvent:
    def test_starts_pending(self, sim):
        event = sim.event()
        assert not event.triggered
        assert not event.processed

    def test_succeed_sets_value(self, sim):
        event = sim.event()
        event.succeed(42)
        assert event.triggered
        assert event.value == 42
        assert event.ok

    def test_value_before_trigger_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.event().value

    def test_double_succeed_raises(self, sim):
        event = sim.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_requires_exception(self, sim):
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_failed_event_not_ok(self, sim):
        event = sim.event()
        event.fail(ValueError("boom"))
        event.defuse()
        sim.run()
        assert not event.ok

    def test_callback_runs_on_processing(self, sim):
        event = sim.event()
        seen = []
        event.add_callback(lambda ev: seen.append(ev.value))
        event.succeed("hello")
        sim.run()
        assert seen == ["hello"]

    def test_late_callback_still_runs(self, sim):
        event = sim.event()
        event.succeed("early")
        sim.run()
        assert event.processed
        seen = []
        event.add_callback(lambda ev: seen.append(ev.value))
        sim.run()
        assert seen == ["early"]

    def test_uncaught_failure_raises_at_run(self, sim):
        event = sim.event()
        event.fail(RuntimeError("unhandled"))
        with pytest.raises(RuntimeError, match="unhandled"):
            sim.run()


class TestTimeout:
    def test_fires_at_delay(self, sim):
        timeout = sim.timeout(5.0, value="done")
        sim.run()
        assert sim.now == 5.0
        assert timeout.value == "done"

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-1.0)

    def test_cannot_be_manually_triggered(self, sim):
        timeout = sim.timeout(1.0)
        with pytest.raises(SimulationError):
            timeout.succeed()

    def test_zero_delay_fires_immediately(self, sim):
        timeout = sim.timeout(0.0)
        sim.run()
        assert timeout.processed
        assert sim.now == 0.0


class TestProcess:
    def test_returns_generator_value(self, sim):
        def worker():
            yield sim.timeout(1.0)
            return "result"

        process = sim.process(worker())
        sim.run()
        assert process.value == "result"

    def test_sequential_timeouts_accumulate(self, sim):
        def worker():
            yield sim.timeout(1.0)
            yield sim.timeout(2.0)

        sim.process(worker())
        sim.run()
        assert sim.now == 3.0

    def test_receives_event_value(self, sim):
        event = sim.event()

        def worker():
            value = yield event
            return value * 2

        process = sim.process(worker())
        event.succeed(21)
        sim.run()
        assert process.value == 42

    def test_failed_event_throws_into_generator(self, sim):
        event = sim.event()

        def worker():
            try:
                yield event
            except ValueError as exc:
                return f"caught {exc}"

        process = sim.process(worker())
        event.fail(ValueError("bad"))
        sim.run()
        assert process.value == "caught bad"

    def test_uncaught_generator_exception_fails_process(self, sim):
        def worker():
            yield sim.timeout(1.0)
            raise KeyError("oops")

        sim.process(worker())
        with pytest.raises(KeyError):
            sim.run()

    def test_yielding_non_event_fails(self, sim):
        def worker():
            yield 42

        sim.process(worker())
        with pytest.raises(SimulationError, match="non-event"):
            sim.run()

    def test_process_waits_on_other_process(self, sim):
        def inner():
            yield sim.timeout(3.0)
            return "inner-done"

        def outer():
            result = yield sim.process(inner())
            return result

        process = sim.process(outer())
        sim.run()
        assert process.value == "inner-done"
        assert sim.now == 3.0

    def test_is_alive_transitions(self, sim):
        def worker():
            yield sim.timeout(1.0)

        process = sim.process(worker())
        assert process.is_alive
        sim.run()
        assert not process.is_alive

    def test_interrupt_throws_interrupt(self, sim):
        def sleeper():
            try:
                yield sim.timeout(100.0)
            except Interrupt as interrupt:
                return f"interrupted: {interrupt.cause}"

        process = sim.process(sleeper())

        def interrupter():
            yield sim.timeout(1.0)
            process.interrupt("because")

        sim.process(interrupter())
        sim.run()
        assert process.value == "interrupted: because"
        assert sim.now == pytest.approx(100.0)  # timeout still on agenda

    def test_interrupt_before_start_is_safe(self, sim):
        def sleeper():
            try:
                yield sim.timeout(100.0)
            except Interrupt:
                return "stopped"

        process = sim.process(sleeper())
        process.interrupt()
        sim.run()
        assert process.value == "stopped"

    def test_interrupt_after_completion_is_noop(self, sim):
        def quick():
            yield sim.timeout(1.0)
            return "done"

        process = sim.process(quick())
        sim.run()
        process.interrupt()
        sim.run()
        assert process.value == "done"

    def test_stale_wakeup_after_interrupt_ignored(self, sim):
        """The race fixed during development: a pending wait target must
        not resume a process that an interrupt already terminated."""
        def sleeper():
            try:
                yield sim.timeout(0.001)
            except Interrupt:
                return "interrupted"
            return "timed-out"

        process = sim.process(sleeper())
        process.interrupt()
        sim.run()
        assert process.value == "interrupted"


class TestConditions:
    def test_all_of_collects_values(self, sim):
        timeouts = [sim.timeout(i, value=i) for i in (3.0, 1.0, 2.0)]

        def waiter():
            values = yield sim.all_of(timeouts)
            return values

        process = sim.process(waiter())
        sim.run()
        assert process.value == [3.0, 1.0, 2.0]
        assert sim.now == 3.0

    def test_all_of_empty_fires_immediately(self, sim):
        condition = sim.all_of([])
        sim.run()
        assert condition.value == []

    def test_all_of_fails_on_child_failure(self, sim):
        good = sim.timeout(1.0)
        bad = sim.event()
        bad.fail(ValueError("child failed"))
        # The failure is handled by the condition (subscribed below),
        # not by a direct waiter on `bad` itself.
        bad.defuse()

        def waiter():
            try:
                yield AllOf(sim, [good, bad])
            except ValueError:
                return "failed"

        process = sim.process(waiter())
        sim.run()
        assert process.value == "failed"

    def test_any_of_returns_first(self, sim):
        slow = sim.timeout(10.0, value="slow")
        fast = sim.timeout(1.0, value="fast")

        def waiter():
            winner, value = yield AnyOf(sim, [slow, fast])
            return value

        process = sim.process(waiter())
        sim.run()
        assert process.value == "fast"

    def test_any_of_requires_events(self, sim):
        with pytest.raises(ValueError):
            AnyOf(sim, [])


class TestWaitTargetBookkeeping:
    """The lazy O(1) stale-wakeup path: abandoned wait targets still
    fire, but must never resume the process that moved on."""

    def test_double_interrupt_delivers_both(self, sim):
        causes = []

        def stoic():
            for _ in range(2):
                try:
                    yield sim.timeout(10.0)
                except Interrupt as interrupt:
                    causes.append(interrupt.cause)
            yield sim.timeout(1.0)
            return "done"

        process = sim.process(stoic())
        process.interrupt("first")
        process.interrupt("second")
        sim.run()
        assert causes == ["first", "second"]
        assert process.value == "done"

    def test_anyof_loser_wakeup_is_stale(self, sim):
        trace = []

        def racer():
            winner, value = yield AnyOf(
                sim, [sim.timeout(1.0, value="fast"),
                      sim.timeout(5.0, value="slow")])
            trace.append(("won", value, sim.now))
            yield sim.timeout(10.0)
            trace.append(("slept", sim.now))

        sim.process(racer())
        sim.run()
        # The losing 5.0 timeout fires at t=5 while the racer waits on
        # the 10.0 sleep; a non-stale delivery would cut the sleep short.
        assert trace == [("won", "fast", 1.0), ("slept", 11.0)]

    def test_interrupt_after_wait_target_triggered(self, sim):
        """Interrupt lands between the wait target triggering and its
        callbacks draining: the interrupt wins, the wake-up goes stale."""
        log = []
        gate = sim.event()

        def sleeper():
            try:
                yield gate
                log.append("woke")
            except Interrupt:
                log.append("interrupted")
            yield sim.timeout(1.0)
            log.append("done")

        process = sim.process(sleeper())

        def interrupter():
            yield sim.timeout(1.0)
            # `gate` is now triggered but its drain is still queued
            # behind this turn; the interrupt must still suppress it.
            gate.succeed("opened")
            process.interrupt()

        sim.process(interrupter())
        sim.run()
        assert log == ["interrupted", "done"]
        assert sim.now == 2.0
