"""Tests for the kernel dataplane cost models."""

import pytest

from repro.kernel import (
    EbpfRedirect,
    IptablesRedirect,
    KernelCosts,
    NagleBuffer,
    NagleConfig,
    PathCost,
    batch_factor,
)


class TestPathCost:
    def test_addition(self):
        total = (PathCost(cpu_s=1.0, context_switches=2)
                 + PathCost(cpu_s=0.5, context_switches=1, stack_passes=4))
        assert total.cpu_s == 1.5
        assert total.context_switches == 3
        assert total.stack_passes == 4

    def test_scaling(self):
        scaled = PathCost(cpu_s=1.0, context_switches=2).scaled(3.0)
        assert scaled.cpu_s == 3.0
        assert scaled.context_switches == 6


class TestBatchFactor:
    def setup_method(self):
        self.config = NagleConfig()

    def test_large_messages_not_aggregated(self):
        assert batch_factor(2000, 1000.0, self.config) == 1.0

    def test_low_rate_not_aggregated(self):
        # One 16-byte message per second: nothing to coalesce with.
        assert batch_factor(16, 1.0, self.config) == pytest.approx(
            1.0 + self.config.flush_delay_s, rel=0.01)

    def test_small_fast_messages_aggregate(self):
        factor = batch_factor(16, 4000.0, self.config)
        assert factor > 2.0

    def test_size_bound_binds(self):
        # Huge rate: aggregation capped by MSS/size.
        factor = batch_factor(730, 1e6, self.config)
        assert factor == pytest.approx(self.config.mss_bytes / 730)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            batch_factor(0, 100.0, self.config)
        with pytest.raises(ValueError):
            batch_factor(16, -1.0, self.config)


class TestNagleBuffer:
    def test_flush_on_mss(self):
        buffer = NagleBuffer(NagleConfig(mss_bytes=100))
        assert not buffer.offer(60)
        assert buffer.offer(60)  # 120 >= 100 → flush-worthy
        assert buffer.flush() == [60, 60]

    def test_average_batch(self):
        buffer = NagleBuffer(NagleConfig(mss_bytes=100))
        buffer.offer(10)
        buffer.offer(10)
        buffer.flush()
        buffer.offer(10)
        buffer.flush()
        assert buffer.average_batch == pytest.approx(1.5)

    def test_empty_flush_not_counted(self):
        buffer = NagleBuffer(NagleConfig())
        assert buffer.flush() == []
        assert buffer.flushes == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            NagleBuffer(NagleConfig()).offer(-1)


class TestRedirects:
    def test_iptables_pays_stack_passes(self):
        cost = IptablesRedirect().message_cost(1024)
        assert cost.stack_passes == 2
        assert cost.context_switches == 2

    def test_ebpf_pays_one_context_switch(self):
        cost = EbpfRedirect().message_cost(1024)
        assert cost.stack_passes == 0
        assert cost.context_switches == 1

    def test_ebpf_cheaper_per_message(self):
        assert (EbpfRedirect().message_cost(1024).cpu_s
                < IptablesRedirect().message_cost(1024).cpu_s)

    def test_fig22_ebpf_no_nagle_has_higher_ctx_rate(self):
        """The paper's small-packet finding: kernel bypass without Nagle
        context-switches more often than iptables with kernel Nagle."""
        iptables = IptablesRedirect().path_cost(16, 4000.0)
        ebpf_raw = EbpfRedirect(nagle_enabled=False).path_cost(16, 4000.0)
        assert ebpf_raw.context_switches > iptables.context_switches

    def test_ebpf_nagle_fix_restores_advantage(self):
        iptables = IptablesRedirect().path_cost(16, 4000.0)
        ebpf_fixed = EbpfRedirect(nagle_enabled=True).path_cost(16, 4000.0)
        assert ebpf_fixed.context_switches < iptables.context_switches
        assert ebpf_fixed.cpu_s < iptables.cpu_s

    def test_large_packets_unaffected_by_nagle(self):
        with_nagle = EbpfRedirect(nagle_enabled=True).path_cost(4000, 1000.0)
        without = EbpfRedirect(nagle_enabled=False).path_cost(4000, 1000.0)
        assert with_nagle.context_switches == without.context_switches

    def test_copy_cost_scales_with_bytes(self):
        costs = KernelCosts()
        assert costs.copy_cost(2000) == pytest.approx(2 * costs.copy_cost(1000))
