"""Tests for session aggregation via tunneling and the economics."""

import pytest

from repro.core import (
    Disaggregator,
    MtuError,
    RegionDemand,
    Replica,
    SessionAggregator,
    cost_reduction,
    deployment_footprint,
)
from repro.core.replica import ReplicaConfig
from repro.netsim import FiveTuple, Packet
from repro.simcore import Simulator


def packet(index=0, size=500):
    return Packet(FiveTuple(f"10.0.0.{index % 250 + 1}", 30_000 + index,
                            "10.9.9.9", 443), size_bytes=size)


@pytest.fixture
def replica():
    return Replica(Simulator(0), "r1", "az1", ReplicaConfig(cores=8))


class TestSessionAggregator:
    def test_tunnel_count_scales_with_cores(self, replica):
        aggregator = SessionAggregator("9.9.9.1", vni=100,
                                       tunnels_per_core=10)
        assert aggregator.tunnel_count(replica) == 80

    def test_encapsulation_sets_tunnel_endpoints(self, replica):
        aggregator = SessionAggregator("9.9.9.1", vni=100)
        wrapped = aggregator.encapsulate(packet(), "10.8.8.8", replica)
        assert wrapped.vxlan.outer_src_ip == "9.9.9.1"
        assert wrapped.vxlan.outer_dst_ip == "10.8.8.8"
        assert wrapped.vxlan.vni == 100

    def test_same_flow_same_tunnel(self, replica):
        aggregator = SessionAggregator("9.9.9.1", vni=100)
        a = aggregator.encapsulate(packet(1), "10.8.8.8", replica)
        b = aggregator.encapsulate(packet(1), "10.8.8.8", replica)
        assert a.vxlan.outer_src_port == b.vxlan.outer_src_port

    def test_underlay_sessions_capped_by_tunnels(self, replica):
        """The headline effect: hundreds of thousands of sessions
        collapse to the tunnel count (§5.6)."""
        aggregator = SessionAggregator("9.9.9.1", vni=100)
        assert aggregator.underlay_sessions(replica, 300_000) == 80
        assert aggregator.underlay_sessions(replica, 5) == 5

    def test_mtu_guard(self, replica):
        aggregator = SessionAggregator("9.9.9.1", vni=100, mtu_bytes=520)
        with pytest.raises(MtuError):
            aggregator.encapsulate(packet(size=500), "10.8.8.8", replica)

    def test_raised_mtu_accepts(self, replica):
        """The paper's mitigation: adjust the device MTU."""
        aggregator = SessionAggregator("9.9.9.1", vni=100, mtu_bytes=1600)
        wrapped = aggregator.encapsulate(packet(size=1500), "10.8.8.8",
                                         replica)
        assert wrapped.wire_size == 1550

    def test_core_spread_is_even(self, replica):
        aggregator = SessionAggregator("9.9.9.1", vni=100,
                                       tunnels_per_core=10)
        spread = aggregator.core_spread(replica)
        assert len(spread) == 8
        assert max(spread) - min(spread) <= 1

    def test_tunnel_stats_accumulate(self, replica):
        aggregator = SessionAggregator("9.9.9.1", vni=100)
        aggregator.encapsulate(packet(1), "10.8.8.8", replica)
        aggregator.encapsulate(packet(1), "10.8.8.8", replica)
        index = aggregator.tunnel_index(packet(1).five_tuple, replica)
        assert aggregator.stats[index].packets == 2


class TestDisaggregator:
    def test_decapsulate(self, replica):
        aggregator = SessionAggregator("9.9.9.1", vni=100)
        wrapped = aggregator.encapsulate(packet(), "10.8.8.8", replica)
        disaggregator = Disaggregator()
        inner = disaggregator.decapsulate(wrapped)
        assert inner.vxlan is None
        assert disaggregator.packets_decapsulated == 1

    def test_cpu_cost_small(self):
        """Decap cost was measured 'insignificant' — a microsecond-scale
        per-packet cost."""
        assert Disaggregator().cpu_cost_s(1000) < 0.01


class TestEconomics:
    def _demand(self):
        return RegionDemand(services=100, azs=3, rps_per_service=110_000.0,
                            sessions_per_service=400_000.0,
                            lb_vm_cost_ratio=1.5)

    def test_baseline_has_lbs(self):
        footprint = deployment_footprint(self._demand(), redirector=False,
                                         tunneling=False)
        assert footprint.lb_vms > 0

    def test_redirector_eliminates_lbs(self):
        footprint = deployment_footprint(self._demand(), redirector=True,
                                         tunneling=False)
        assert footprint.lb_vms == 0

    def test_tunneling_cuts_session_bound_replicas(self):
        without = deployment_footprint(self._demand(), redirector=False,
                                       tunneling=False)
        with_tunnels = deployment_footprint(self._demand(), redirector=False,
                                            tunneling=True)
        assert with_tunnels.replica_vms < without.replica_vms

    def test_combined_saving_largest(self):
        demand = self._demand()
        redirector = cost_reduction(demand, redirector=True, tunneling=False)
        tunneling = cost_reduction(demand, redirector=False, tunneling=True)
        both = cost_reduction(demand, redirector=True, tunneling=True)
        assert both > redirector > 0
        assert both > tunneling > 0

    def test_not_proportional_to_session_drop(self):
        """§5.6: sessions drop to a few, but VMs are still needed for
        CPU — the saving is bounded well below the session ratio."""
        both = cost_reduction(self._demand(), redirector=True,
                              tunneling=True)
        assert both < 0.9

    def test_redirector_surcharge_applied(self):
        demand = RegionDemand(services=100, azs=1,
                              rps_per_service=500_000.0,
                              sessions_per_service=10_000.0)
        plain = deployment_footprint(demand, redirector=False,
                                     tunneling=True)
        with_redirector = deployment_footprint(demand, redirector=True,
                                               tunneling=True)
        # CPU-bound deployment: the redirector's ~1/13 surcharge can
        # cost replicas.
        assert with_redirector.replica_vms >= plain.replica_vms

    def test_demand_validation(self):
        with pytest.raises(ValueError):
            RegionDemand(services=0)
        with pytest.raises(ValueError):
            RegionDemand(services=1, target_utilization=0.0)
