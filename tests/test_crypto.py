"""Tests for certificates, crypto engines, and the mTLS handshake."""

import pytest

from repro.crypto import (
    BatchedAccelerator,
    CertificateAuthority,
    CryptoCosts,
    DEFAULT_CRYPTO_COSTS,
    PrivateKey,
    SoftwareAsymEngine,
    mtls_handshake,
)
from repro.simcore import CpuResource, Simulator


@pytest.fixture
def sim():
    return Simulator(seed=0)


class TestCertificates:
    def setup_method(self):
        self.ca = CertificateAuthority("test-ca")

    def test_issue_and_verify(self):
        cert = self.ca.issue("spiffe://t1/pod", "t1", not_after=100.0)
        assert self.ca.verify(cert, now=50.0)

    def test_expired_rejected(self):
        cert = self.ca.issue("id", "t1", not_after=10.0)
        assert not self.ca.verify(cert, now=11.0)

    def test_wrong_issuer_rejected(self):
        other = CertificateAuthority("other-ca")
        cert = other.issue("id", "t1", not_after=100.0)
        assert not self.ca.verify(cert, now=0.0)

    def test_forged_signature_rejected(self):
        from dataclasses import replace
        cert = self.ca.issue("id", "t1", not_after=100.0)
        forged = replace(cert, identity="admin")
        assert not self.ca.verify(forged, now=0.0)

    def test_same_name_ca_different_seed_rejects(self):
        impostor = CertificateAuthority("test-ca", seed="other-secret")
        cert = impostor.issue("id", "t1", not_after=100.0)
        assert not self.ca.verify(cert, now=0.0)

    def test_private_key_deterministic(self):
        a = PrivateKey.generate("o", "seed")
        b = PrivateKey.generate("o", "seed")
        assert a.secret_hex == b.secret_hex

    def test_issued_registry(self):
        self.ca.issue("id", "t1", not_after=1.0)
        assert self.ca.issued_count == 1
        self.ca.revoke("id")
        assert self.ca.issued_for("id") is None


class TestSoftwareAsymEngine:
    def test_old_cpu_slower_than_new(self, sim):
        old = SoftwareAsymEngine(sim, new_cpu=False)
        new = SoftwareAsymEngine(sim, new_cpu=True)
        assert old.op_cost_s > new.op_cost_s

    def test_completion_time(self, sim):
        engine = SoftwareAsymEngine(sim, new_cpu=False)
        done = engine.submit()
        sim.run()
        assert done.value == pytest.approx(
            DEFAULT_CRYPTO_COSTS.asym_software_old_cpu_s)

    def test_occupies_cpu_when_bound(self, sim):
        cpu = CpuResource(sim, cores=1)
        engine = SoftwareAsymEngine(sim, new_cpu=True, cpu=cpu)
        engine.submit()
        engine.submit()
        sim.run()
        # Two ops serialized on one core.
        assert sim.now == pytest.approx(2 * engine.op_cost_s)
        assert cpu.busy_time() == pytest.approx(2 * engine.op_cost_s)


class TestBatchedAccelerator:
    def test_minimum_flush_timeout_enforced(self, sim):
        with pytest.raises(ValueError):
            BatchedAccelerator(sim, flush_timeout_s=0.5e-3)

    def test_single_op_waits_out_timeout(self, sim):
        accelerator = BatchedAccelerator(sim)
        done = accelerator.submit()
        sim.run()
        expected = (accelerator.flush_timeout_s
                    + DEFAULT_CRYPTO_COSTS.asym_accelerated_s)
        assert done.value == pytest.approx(expected)

    def test_full_batch_flushes_immediately(self, sim):
        accelerator = BatchedAccelerator(sim)
        events = [accelerator.submit() for _ in range(8)]
        sim.run()
        assert events[0].value == pytest.approx(
            DEFAULT_CRYPTO_COSTS.asym_accelerated_s)
        assert accelerator.full_batches == 1

    def test_overflow_spills_to_next_batch(self, sim):
        accelerator = BatchedAccelerator(sim)
        events = [accelerator.submit() for _ in range(9)]
        sim.run()
        assert accelerator.batches == 2
        # The ninth op waits for its own (timer-flushed) batch.
        assert events[8].value > events[0].value

    def test_fill_ratio(self, sim):
        accelerator = BatchedAccelerator(sim)
        for _ in range(8):
            accelerator.submit()
        sim.run()
        assert accelerator.fill_ratio == pytest.approx(1.0)

    def test_fig25_underfill_loses_to_software(self, sim):
        """Below 8 concurrent connections, batching is slower than plain
        software on the same (new) CPU."""
        accelerator = BatchedAccelerator(sim)
        done = accelerator.submit()
        sim.run()
        software = DEFAULT_CRYPTO_COSTS.asym_software_new_cpu_s
        assert done.value > software

    def test_batch_size_validated(self, sim):
        with pytest.raises(ValueError):
            BatchedAccelerator(sim, batch_size=0)


class TestMtlsHandshake:
    def _run(self, sim, client_ok=True, rtt=1e-3):
        ca = CertificateAuthority("mesh")
        client = ca.issue("client", "t1", not_after=100.0)
        if not client_ok:
            other = CertificateAuthority("rogue")
            client = other.issue("client", "t1", not_after=100.0)
        server = ca.issue("server", "t1", not_after=100.0)
        engine_a = SoftwareAsymEngine(sim, new_cpu=True)
        engine_b = SoftwareAsymEngine(sim, new_cpu=True)
        process = sim.process(mtls_handshake(
            sim, ca, client, server, engine_a, engine_b, rtt_s=rtt))
        sim.run()
        return process.value

    def test_successful_handshake(self, sim):
        result = self._run(sim)
        assert result.ok
        assert result.session is not None

    def test_latency_includes_two_rtts_and_asym(self, sim):
        result = self._run(sim, rtt=1e-3)
        expected = 2e-3 + DEFAULT_CRYPTO_COSTS.asym_software_new_cpu_s
        assert result.latency_s == pytest.approx(expected)

    def test_rogue_client_rejected(self, sim):
        result = self._run(sim, client_ok=False)
        assert not result.ok
        assert "client" in result.failure_reason

    def test_session_prices_symmetric_crypto(self, sim):
        result = self._run(sim)
        cost = result.session.protect_cost(10_000)
        assert cost == pytest.approx(
            DEFAULT_CRYPTO_COSTS.symmetric_cost(10_000))
        assert result.session.bytes_protected == 10_000

    def test_symmetric_much_cheaper_than_asymmetric(self):
        costs = CryptoCosts()
        assert costs.symmetric_cost(1500) < costs.asym_accelerated_s / 10
