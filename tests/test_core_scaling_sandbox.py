"""Tests for precise scaling (Reuse/New) and sandbox migration."""

import pytest

from repro.core import (
    GatewayConfig,
    MeshGateway,
    SandboxManager,
    ScalingEngine,
    ScalingTimings,
)
from repro.core.replica import ReplicaConfig
from repro.simcore import Simulator


def make_gateway(sim, backends_per_az=6, services=4):
    config = GatewayConfig(
        replicas_per_backend=2, backends_per_service_per_az=2,
        azs_per_service=2,
        replica=ReplicaConfig(cores=8, request_cost_s=100e-6))
    gateway = MeshGateway(sim, config)
    gateway.deploy_initial(["az1", "az2"], backends_per_az)
    tenant_services = []
    for index in range(services):
        tenant = gateway.registry.add_tenant(f"t{index + 1}")
        service = gateway.registry.add_service(tenant, "web",
                                               f"10.0.0.{index + 1}")
        gateway.register_service(service)
        tenant_services.append(service)
    return gateway, tenant_services


@pytest.fixture
def sim():
    return Simulator(9)


class TestScalingEngine:
    def test_reuse_when_idle_backend_exists(self, sim):
        gateway, services = make_gateway(sim)
        engine = ScalingEngine(sim, gateway)
        sid = services[0].service_id
        gateway.set_service_load(sid, 50_000.0)
        process = sim.process(engine.scale_service(sid))
        sim.run()
        event = process.value
        assert event.kind == "reuse"
        assert len(gateway.service_backends[sid]) > 4

    def test_new_when_pool_saturated(self, sim):
        gateway, services = make_gateway(sim, backends_per_az=2)
        engine = ScalingEngine(sim, gateway, reuse_water_threshold=0.2)
        # Saturate every backend above the reuse threshold.
        for service in services:
            gateway.set_service_load(service.service_id, 400_000.0)
        backends_before = len(gateway.all_backends)
        process = sim.process(
            engine.scale_service(services[0].service_id))
        sim.run()
        event = process.value
        assert event.kind == "new"
        assert len(gateway.all_backends) == backends_before + 1

    def test_new_much_slower_than_reuse(self, sim):
        """Fig 17: Reuse completes in ~a minute, New in ~a quarter hour."""
        gateway, services = make_gateway(sim)
        engine = ScalingEngine(sim, gateway)
        gateway.set_service_load(services[0].service_id, 50_000.0)
        reuse = sim.process(engine.scale_service(services[0].service_id))
        sim.run()
        saturated, services2 = make_gateway(Simulator(10), backends_per_az=2)
        sim2 = saturated.sim
        engine2 = ScalingEngine(sim2, saturated)
        for service in services2:
            saturated.set_service_load(service.service_id, 400_000.0)
        new = sim2.process(engine2.scale_service(services2[0].service_id))
        sim2.run()
        assert new.value.completion_s > 5 * reuse.value.completion_s

    def test_precise_scaling_reaches_target_water(self, sim):
        gateway, services = make_gateway(sim, backends_per_az=10)
        engine = ScalingEngine(sim, gateway, target_water=0.35)
        sid = services[0].service_id
        gateway.set_service_load(sid, 800_000.0)
        process = sim.process(engine.scale_service(sid))
        sim.run()
        hottest = max(b.water_level()
                      for b in gateway.service_backends[sid])
        assert hottest <= 0.35 + 0.05

    def test_concurrent_triggers_coalesce(self, sim):
        gateway, services = make_gateway(sim)
        engine = ScalingEngine(sim, gateway)
        sid = services[0].service_id
        gateway.set_service_load(sid, 50_000.0)
        first = sim.process(engine.scale_service(sid))
        second = sim.process(engine.scale_service(sid))
        sim.run()
        results = [first.value, second.value]
        assert sum(1 for r in results if r is not None) == 1
        assert len(engine.events) == 1

    def test_completion_time_accounting(self, sim):
        gateway, services = make_gateway(sim)
        engine = ScalingEngine(sim, gateway)
        gateway.set_service_load(services[0].service_id, 50_000.0)
        process = sim.process(
            engine.scale_service(services[0].service_id))
        sim.run()
        event = process.value
        assert (event.executed_at <= event.finished_at
                <= event.below_threshold_at)
        assert engine.completion_times("reuse") == [event.completion_s]

    def test_reuse_prefers_coldest_backend(self, sim):
        gateway, services = make_gateway(sim)
        engine = ScalingEngine(sim, gateway)
        sid = services[0].service_id
        # Warm up one non-carrier backend.
        other = services[1].service_id
        warm = next(b for b in gateway.all_backends
                    if not b.hosts_service(sid)
                    and b.hosts_service(other))
        gateway.set_service_load(other, 60_000.0)
        candidate = engine.find_reusable_backend(sid)
        assert candidate is not None
        assert candidate.water_level() <= warm.water_level()


class TestSandboxManager:
    def test_lossy_migration_resets_sessions(self, sim):
        gateway, services = make_gateway(sim)
        sandbox = SandboxManager(sim, gateway)
        sid = services[0].service_id
        gateway.set_service_load(sid, 30_000.0)
        for backend in gateway.service_backends[sid]:
            for replica in backend.replicas:
                replica.add_sessions(500)
        process = sim.process(sandbox.migrate_lossy(sid))
        sim.run()
        record = process.value
        assert record.mode == "lossy"
        assert record.sessions_reset > 0
        assert record.duration_s < 30.0  # "within seconds"

    def test_lossless_migration_resets_nothing(self, sim):
        gateway, services = make_gateway(sim)
        sandbox = SandboxManager(sim, gateway)
        sid = services[0].service_id
        gateway.set_service_load(sid, 30_000.0)
        process = sim.process(sandbox.migrate_lossless(sid))
        sim.run()
        record = process.value
        assert record.sessions_reset == 0
        # Completion bounded by flow timeout: minutes, not seconds.
        assert record.duration_s > 60.0

    def test_migrated_load_leaves_shared_backends(self, sim):
        """Quarantine actually protects the neighbors: the service's
        load leaves its shuffle-shard backends."""
        gateway, services = make_gateway(sim)
        sandbox = SandboxManager(sim, gateway)
        sid = services[0].service_id
        gateway.set_service_load(sid, 30_000.0)
        shared = gateway.service_backends[sid][0]
        sim.process(sandbox.migrate_lossy(sid))
        sim.run()
        assert shared.service_rps(sid) == 0.0
        assert gateway.sandboxed[sid].service_rps(sid) > 0.0

    def test_sandbox_not_in_shuffle_pool(self, sim):
        gateway, services = make_gateway(sim)
        sandbox = SandboxManager(sim, gateway)
        sim.process(sandbox.migrate_lossy(services[0].service_id))
        sim.run()
        quarantine = gateway.sandboxed[services[0].service_id]
        for pool in gateway.backends_by_az.values():
            assert quarantine not in pool

    def test_release_returns_service(self, sim):
        gateway, services = make_gateway(sim)
        sandbox = SandboxManager(sim, gateway)
        sid = services[0].service_id
        gateway.set_service_load(sid, 30_000.0)
        sim.process(sandbox.migrate_lossy(sid))
        sim.run()
        sandbox.release(sid)
        assert sid not in gateway.sandboxed
        shared_total = sum(b.service_rps(sid)
                           for b in gateway.service_backends[sid])
        assert shared_total == pytest.approx(30_000.0)

    def test_throttle_then_gradual_relaxation(self, sim):
        """§6.2 Case #3: throttle, then relax step by step."""
        gateway, services = make_gateway(sim)
        sandbox = SandboxManager(sim, gateway)
        sid = services[0].service_id
        gateway.set_service_load(sid, 100_000.0)
        sandbox.throttle(sid, 20_000.0)
        carried = sum(b.service_rps(sid)
                      for b in gateway.service_backends[sid])
        assert carried == pytest.approx(20_000.0)
        sim.process(sandbox.relax_throttle(sid, 100_000.0, steps=4,
                                           interval_s=10.0))
        sim.run()
        carried = sum(b.service_rps(sid)
                      for b in gateway.service_backends[sid])
        assert carried == pytest.approx(100_000.0)
        assert sid not in gateway.throttles

    def test_relax_requires_existing_throttle(self, sim):
        gateway, services = make_gateway(sim)
        sandbox = SandboxManager(sim, gateway)
        with pytest.raises(KeyError):
            sim.process(sandbox.relax_throttle(
                services[0].service_id, 100.0))
            sim.run()
