"""Tests for in-phase traffic detection and scatter migration (§6.3)."""

import random

import pytest

from repro.core import (
    DailyProfile,
    GatewayConfig,
    MeshGateway,
    PhaseMonitor,
    hwhm_window,
)
from repro.core.replica import ReplicaConfig
from repro.simcore import Simulator
from repro.workloads import diurnal_profile, flat_profile


@pytest.fixture
def rng():
    return random.Random(21)


def make_gateway(sim, services=6):
    config = GatewayConfig(
        replicas_per_backend=2, backends_per_service_per_az=2,
        azs_per_service=2,
        replica=ReplicaConfig(cores=8, request_cost_s=100e-6))
    gateway = MeshGateway(sim, config)
    gateway.deploy_initial(["az1", "az2"], 6)
    out = []
    for index in range(services):
        tenant = gateway.registry.add_tenant(f"t{index + 1}")
        service = gateway.registry.add_service(tenant, "web",
                                               f"10.0.0.{index + 1}")
        gateway.register_service(service)
        out.append(service)
    return gateway, out


class TestDailyProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            DailyProfile((1.0, 2.0))
        with pytest.raises(ValueError):
            DailyProfile((1.0, -2.0, 1.0, 1.0))

    def test_peak(self):
        profile = DailyProfile((1.0, 5.0, 2.0, 1.0))
        assert profile.peak == 5.0
        assert profile.peak_index == 1

    def test_at_wraps_around(self):
        profile = DailyProfile((1.0, 2.0, 3.0, 4.0))
        assert profile.at([0, 5]) == [1.0, 2.0]


class TestHwhm:
    def test_window_contains_peak(self, rng):
        profile = diurnal_profile(rng, 100.0, 1000.0, peak_position=0.5)
        lo, hi = hwhm_window(profile)
        assert lo <= profile.peak_index <= hi

    def test_window_values_above_half_max(self, rng):
        profile = diurnal_profile(rng, 100.0, 1000.0, noise=0.0)
        lo, hi = hwhm_window(profile)
        floor = min(profile.samples)
        half = floor + (profile.peak - floor) / 2
        for index in range(lo, hi + 1):
            assert profile.samples[index] >= half

    def test_narrow_peak_narrow_window(self):
        samples = [1.0] * 20
        samples[10] = 100.0
        lo, hi = hwhm_window(DailyProfile(tuple(samples)))
        assert (lo, hi) == (10, 10)


class TestInPhaseDetection:
    def test_synchronized_services_grouped(self, rng):
        sim = Simulator(22)
        gateway, services = make_gateway(sim)
        monitor = PhaseMonitor(gateway)
        backend = gateway.service_backends[services[0].service_id][0]
        in_phase = [s for s in services
                    if backend.hosts_service(s.service_id)][:2]
        assert len(in_phase) >= 2 or True
        # Give two co-located services identical phase, one opposite.
        for service in services:
            if service in in_phase:
                profile = diurnal_profile(rng, 100.0, 1000.0,
                                          peak_position=0.5)
            else:
                profile = diurnal_profile(rng, 100.0, 1000.0,
                                          peak_position=0.0)
            monitor.service_profiles[service.service_id] = profile
            gateway.set_service_load(service.service_id, 10_000.0)
        if len(in_phase) >= 2:
            groups = monitor.in_phase_groups(backend)
            grouped_ids = {sid for group in groups for sid in group}
            assert all(s.service_id in grouped_ids for s in in_phase)

    def test_flat_profiles_not_grouped(self, rng):
        sim = Simulator(23)
        gateway, services = make_gateway(sim)
        monitor = PhaseMonitor(gateway, correlation_threshold=0.8)
        backend = gateway.all_backends[0]
        for service in services:
            monitor.service_profiles[service.service_id] = flat_profile(
                rng, 100.0)
            gateway.set_service_load(service.service_id, 10_000.0)
        # Independent noise rarely correlates above 0.8.
        groups = monitor.in_phase_groups(backend)
        assert all(len(group) < 3 for group in groups)


class TestCandidateRanking:
    def test_high_rps_first_https_weighted(self, rng):
        sim = Simulator(24)
        gateway, services = make_gateway(sim, services=3)
        monitor = PhaseMonitor(gateway)
        http_big, https_small, http_small = services
        https_small.https = True
        monitor.service_profiles[http_big.service_id] = DailyProfile(
            (400.0,) * 8)
        monitor.service_profiles[https_small.service_id] = DailyProfile(
            (200.0,) * 8)   # weighted: 600
        monitor.service_profiles[http_small.service_id] = DailyProfile(
            (100.0,) * 8)
        ranked = monitor.rank_migration_candidates(
            [s.service_id for s in services])
        assert ranked[0] == https_small.service_id
        assert ranked[-1] == http_small.service_id

    def test_long_sessions_penalized(self, rng):
        sim = Simulator(25)
        gateway, services = make_gateway(sim, services=2)
        monitor = PhaseMonitor(gateway)
        sticky, nimble = services
        sticky.long_session_fraction = 0.9
        nimble.long_session_fraction = 0.05
        for service in services:
            monitor.service_profiles[service.service_id] = DailyProfile(
                (100.0,) * 8)
        ranked = monitor.rank_migration_candidates(
            [s.service_id for s in services])
        assert ranked[0] == nimble.service_id


class TestTargetSelection:
    def test_prefers_complementary_same_az_backend(self, rng):
        sim = Simulator(26)
        gateway, services = make_gateway(sim)
        monitor = PhaseMonitor(gateway)
        service = services[0]
        source = gateway.service_backends[service.service_id][0]
        peak_half = diurnal_profile(rng, 100.0, 1000.0, peak_position=0.5)
        monitor.service_profiles[service.service_id] = peak_half
        # Candidate backends: one in-phase (busy at the service's peak),
        # one complementary.
        complementary = None
        for backend in gateway.backends_by_az[source.az]:
            if backend.name == source.name:
                monitor.backend_profiles[backend.name] = peak_half
            elif backend.hosts_service(service.service_id):
                monitor.backend_profiles[backend.name] = peak_half
            elif complementary is None:
                complementary = backend
                monitor.backend_profiles[backend.name] = diurnal_profile(
                    rng, 100.0, 1000.0, peak_position=0.0)
            else:
                monitor.backend_profiles[backend.name] = diurnal_profile(
                    rng, 150.0, 1100.0, peak_position=0.45)
        target = monitor.choose_target_backend(service.service_id, source)
        assert target is complementary

    def test_no_candidates_returns_none(self, rng):
        sim = Simulator(27)
        gateway, services = make_gateway(sim)
        monitor = PhaseMonitor(gateway)
        service = services[0]
        source = gateway.service_backends[service.service_id][0]
        monitor.service_profiles[service.service_id] = DailyProfile(
            (1.0,) * 8)
        # No backend profiles known → nothing to compare against.
        assert monitor.choose_target_backend(service.service_id,
                                             source) is None


class TestMigrationExecution:
    def test_execute_moves_service(self, rng):
        sim = Simulator(28)
        gateway, services = make_gateway(sim)
        monitor = PhaseMonitor(gateway)
        service = services[0]
        gateway.set_service_load(service.service_id, 20_000.0)
        source = gateway.service_backends[service.service_id][0]
        target = next(b for b in gateway.backends_by_az[source.az]
                      if not b.hosts_service(service.service_id))
        from repro.core import MigrationPlan
        plan = MigrationPlan(service_id=service.service_id,
                             from_backend=source.name,
                             to_backend=target.name)
        monitor.execute(plan)
        assert not source.hosts_service(service.service_id)
        assert target.hosts_service(service.service_id)
        carried = sum(b.service_rps(service.service_id)
                      for b in gateway.service_backends[service.service_id])
        assert carried == pytest.approx(20_000.0)
