"""Tests for gateway monitoring and root-cause analysis."""

import pytest

from repro.core import (
    GatewayConfig,
    GatewayMonitor,
    MeshGateway,
    RootCauseAnalyzer,
    pearson,
)
from repro.core.replica import ReplicaConfig
from repro.simcore import Simulator


def make_setup(sim, services=4):
    config = GatewayConfig(
        replicas_per_backend=2, backends_per_service_per_az=2,
        azs_per_service=2,
        replica=ReplicaConfig(cores=8, request_cost_s=100e-6))
    gateway = MeshGateway(sim, config)
    gateway.deploy_initial(["az1", "az2"], 4)
    tenant_services = []
    for index in range(services):
        tenant = gateway.registry.add_tenant(f"t{index + 1}")
        service = gateway.registry.add_service(tenant, "web",
                                               f"10.0.0.{index + 1}")
        gateway.register_service(service)
        tenant_services.append(service)
    monitor = GatewayMonitor(sim, gateway, interval_s=1.0)
    return gateway, tenant_services, monitor


@pytest.fixture
def sim():
    return Simulator(5)


class TestPearson:
    def test_perfect_correlation(self):
        assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_anti_correlation(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_series_is_zero(self):
        assert pearson([1, 1, 1], [1, 2, 3]) == 0.0

    def test_short_series_is_zero(self):
        assert pearson([1], [2]) == 0.0

    def test_unequal_lengths_use_tail(self):
        assert pearson([9, 1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)


class TestGatewayMonitor:
    def test_samples_recorded(self, sim):
        gateway, services, monitor = make_setup(sim)
        gateway.set_service_load(services[0].service_id, 1000.0)
        monitor.start()
        sim.run(until=5.0)
        series = monitor.service_series[services[0].service_id]
        assert len(series) >= 5

    def test_backend_alert_on_threshold(self, sim):
        gateway, services, monitor = make_setup(sim)
        monitor.start()
        sim.run(until=2.0)
        gateway.set_service_load(services[0].service_id, 2_000_000.0)
        sim.run(until=4.0)
        assert any(alert.level == "backend" for alert in monitor.alerts)

    def test_alert_fires_on_rising_edge_only(self, sim):
        gateway, services, monitor = make_setup(sim)
        gateway.set_service_load(services[0].service_id, 2_000_000.0)
        monitor.start()
        sim.run(until=10.0)
        backend_alerts = [a for a in monitor.alerts if a.level == "backend"]
        alerted_backends = {a.subject for a in backend_alerts}
        assert len(backend_alerts) == len(alerted_backends)

    def test_subscriber_called(self, sim):
        gateway, services, monitor = make_setup(sim)
        seen = []
        monitor.subscribe(seen.append)
        gateway.set_service_load(services[0].service_id, 2_000_000.0)
        monitor.start()
        sim.run(until=2.0)
        assert seen

    def test_tenant_alert_on_cluster_saturation(self, sim):
        gateway, services, monitor = make_setup(sim)
        monitor.user_cluster_utilization["t1"] = 0.99
        monitor.start()
        sim.run(until=2.0)
        assert any(alert.level == "tenant" and alert.subject == "t1"
                   for alert in monitor.alerts)

    def test_service_alert_only_for_autoscaling_tenants(self, sim):
        gateway, services, monitor = make_setup(sim)
        services[0].tenant.auto_scaling = False
        gateway.set_service_load(services[0].service_id, 2_000_000.0)
        monitor.start()
        sim.run(until=2.0)
        service_alerts = [a for a in monitor.alerts if a.level == "service"]
        assert str(services[0].service_id) not in {
            a.subject for a in service_alerts}

    def test_double_start_rejected(self, sim):
        gateway, services, monitor = make_setup(sim)
        monitor.start()
        with pytest.raises(RuntimeError):
            monitor.start()


class TestRootCauseAnalysis:
    def _grow_service(self, sim, gateway, monitor, service,
                      others, seconds=30):
        """Drive a growth trace: the target service ramps, others flat."""
        def driver():
            for second in range(seconds):
                gateway.set_service_load(
                    service.service_id, 10_000.0 + 3_000.0 * second)
                for other in others:
                    gateway.set_service_load(other.service_id, 8_000.0)
                monitor.sample()
                yield sim.timeout(1.0)

        sim.process(driver())
        sim.run(until=seconds + 1)

    def test_basic_algorithm_pinpoints_grower(self, sim):
        gateway, services, monitor = make_setup(sim)
        analyzer = RootCauseAnalyzer(gateway, monitor)
        target, others = services[0], services[1:]
        self._grow_service(sim, gateway, monitor, target, others)
        hot = max(gateway.service_backends[target.service_id],
                  key=lambda b: b.water_level())
        result = analyzer._basic(hot)
        assert result.found
        assert result.service_id == target.service_id
        assert result.method == "basic"

    def test_intersection_speculation(self, sim):
        gateway, services, monitor = make_setup(sim)
        analyzer = RootCauseAnalyzer(gateway, monitor)
        target = services[0]
        # Overload only the target: all its backends run hot together.
        gateway.set_service_load(target.service_id, 5_000_000.0)
        monitor.sample()
        result = analyzer.analyze(gateway.service_backends[
            target.service_id][0])
        assert result.found
        assert result.service_id == target.service_id
        assert result.method == "intersection"

    def test_ambiguous_intersection_falls_back(self, sim):
        """When the hot-backend intersection isn't a singleton, the
        analyzer reverts to the basic algorithm (§4.3)."""
        gateway, services, monitor = make_setup(sim)
        analyzer = RootCauseAnalyzer(gateway, monitor)
        target, decoy = services[0], services[1]
        # Force the decoy onto exactly the target's backends so the
        # intersection has two members.
        for backend in gateway.service_backends[target.service_id]:
            if not backend.hosts_service(decoy.service_id):
                gateway.extend_service(decoy.service_id, backend)
        self._grow_service(sim, gateway, monitor, target,
                           [decoy] + list(services[2:]))
        gateway.set_service_load(target.service_id, 5_000_000.0)
        monitor.sample()
        hot = gateway.service_backends[target.service_id][0]
        result = analyzer.analyze(hot)
        assert result.method == "basic"
        assert result.service_id == target.service_id

    def test_no_data_returns_not_found(self, sim):
        gateway, services, monitor = make_setup(sim)
        analyzer = RootCauseAnalyzer(gateway, monitor)
        result = analyzer._basic(gateway.all_backends[0])
        assert not result.found

    def test_flat_services_not_blamed(self, sim):
        gateway, services, monitor = make_setup(sim)
        analyzer = RootCauseAnalyzer(gateway, monitor)

        def driver():
            for _ in range(20):
                for service in services:
                    gateway.set_service_load(service.service_id, 9_000.0)
                monitor.sample()
                yield sim.timeout(1.0)

        sim.process(driver())
        sim.run(until=21.0)
        result = analyzer._basic(gateway.all_backends[0])
        assert not result.found
