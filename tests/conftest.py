"""Shared test fixtures."""

import pytest

from repro.runtime import cache as runtime_cache


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Point the default result cache at a per-test directory so tests
    never read or write the developer's ``.repro-cache/`` — runs stay
    hermetic regardless of cache state."""
    monkeypatch.setattr(runtime_cache, "DEFAULT_CACHE_DIR",
                        str(tmp_path / "result-cache"))
