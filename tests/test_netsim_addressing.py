"""Tests for IPv4 addressing and VPCs with overlapping space."""

import pytest

from repro.netsim import Cidr, Vpc, int_to_ip, ip_to_int


class TestIpConversion:
    def test_roundtrip(self):
        for address in ("0.0.0.0", "10.1.2.3", "255.255.255.255"):
            assert int_to_ip(ip_to_int(address)) == address

    def test_known_value(self):
        assert ip_to_int("10.0.0.1") == (10 << 24) + 1

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            ip_to_int("10.0.0")

    def test_octet_range_checked(self):
        with pytest.raises(ValueError):
            ip_to_int("10.0.0.256")

    def test_int_range_checked(self):
        with pytest.raises(ValueError):
            int_to_ip(1 << 32)


class TestCidr:
    def test_parse(self):
        cidr = Cidr.parse("10.0.0.0/16")
        assert cidr.network == "10.0.0.0"
        assert cidr.prefix == 16
        assert cidr.size == 65536

    def test_parse_requires_prefix(self):
        with pytest.raises(ValueError):
            Cidr.parse("10.0.0.0")

    def test_host_bits_rejected(self):
        with pytest.raises(ValueError):
            Cidr("10.0.0.1", 24)

    def test_contains(self):
        cidr = Cidr.parse("192.168.1.0/24")
        assert cidr.contains("192.168.1.77")
        assert not cidr.contains("192.168.2.1")

    def test_hosts_excludes_network_and_broadcast(self):
        hosts = list(Cidr.parse("10.0.0.0/30").hosts())
        assert hosts == ["10.0.0.1", "10.0.0.2"]

    def test_str(self):
        assert str(Cidr.parse("10.0.0.0/8")) == "10.0.0.0/8"


class TestVpc:
    def _vpc(self, tenant="t1", vni=100):
        return Vpc(tenant=tenant, name=f"{tenant}-vpc",
                   cidr=Cidr.parse("10.0.0.0/24"), vni=vni)

    def test_sequential_allocation(self):
        vpc = self._vpc()
        assert vpc.allocate("pod-a") == "10.0.0.1"
        assert vpc.allocate("pod-b") == "10.0.0.2"

    def test_owner_tracking(self):
        vpc = self._vpc()
        address = vpc.allocate("pod-a")
        assert vpc.owner_of(address) == "pod-a"
        assert vpc.owner_of("10.0.0.200") is None

    def test_exhaustion(self):
        vpc = Vpc(tenant="t", name="tiny", cidr=Cidr.parse("10.0.0.0/30"),
                  vni=1)
        vpc.allocate("a")
        vpc.allocate("b")
        with pytest.raises(RuntimeError):
            vpc.allocate("c")

    def test_overlapping_vpcs_allocate_same_addresses(self):
        """The multi-tenancy premise: two tenants may hold identical
        private addresses — only the VNI tells them apart."""
        vpc1 = self._vpc("tenant1", vni=100)
        vpc2 = self._vpc("tenant2", vni=101)
        assert vpc1.allocate("a") == vpc2.allocate("b")
        assert vpc1.vni != vpc2.vni
