"""Cross-module integration tests: full scenarios end to end."""

import pytest

from repro.core import (
    AnomalySignals,
    FailureInjector,
    GatewayMonitor,
    RapidResponder,
    SandboxManager,
    ScalingEngine,
    ScalingTimings,
)
from repro.experiments.cloud_ops import build_production_gateway
from repro.experiments.testbed import build_testbed
from repro.mesh import HttpRequest
from repro.simcore import Simulator
from repro.workloads import ClosedLoopDriver, OpenLoopDriver


class TestThreeArchitectureComparison:
    """The paper's headline comparisons, asserted as orderings."""

    @pytest.fixture(scope="class")
    def reports(self):
        out = {}
        for mesh_name in ("no-mesh", "istio", "ambient", "canal"):
            run = build_testbed(mesh_name)
            driver = ClosedLoopDriver(run.sim, run.mesh, run.client_pod,
                                      "svc1", connections=1,
                                      requests_per_connection=50,
                                      think_time_s=1.0)
            report = run.run_driver(driver)
            out[mesh_name] = (report, run.mesh)
        return out

    def test_latency_ordering(self, reports):
        """Fig 10: no-mesh < canal < ambient < istio."""
        means = {name: report.latency.mean
                 for name, (report, _mesh) in reports.items()}
        assert (means["no-mesh"] < means["canal"]
                < means["ambient"] < means["istio"])

    def test_latency_ratios_in_paper_bands(self, reports):
        means = {name: report.latency.mean
                 for name, (report, _mesh) in reports.items()}
        assert 1.4 < means["istio"] / means["canal"] < 2.2
        assert 1.1 < means["ambient"] / means["canal"] < 1.6

    def test_user_cpu_ordering(self, reports):
        """Fig 13: canal ≪ ambient ≪ istio on user-cluster CPU."""
        cpu = {name: mesh.user_cpu_seconds()
               for name, (_report, mesh) in reports.items()}
        assert cpu["canal"] < cpu["ambient"] < cpu["istio"]

    def test_user_cpu_ratios_in_paper_bands(self, reports):
        cpu = {name: mesh.user_cpu_seconds()
               for name, (_report, mesh) in reports.items()}
        assert 10.0 < cpu["istio"] / cpu["canal"] < 22.0
        assert 3.5 < cpu["ambient"] / cpu["canal"] < 8.0

    def test_all_requests_succeeded(self, reports):
        for name, (report, _mesh) in reports.items():
            assert report.error_count == 0, name


class TestNoisyNeighborEndToEnd:
    def test_alert_rca_scale_pipeline(self):
        """Monitor → alert → RCA → precise Reuse scaling, closed loop."""
        sim = Simulator(77)
        gateway, services = build_production_gateway(sim, backends_per_az=10)
        for service in services:
            gateway.set_service_load(service.service_id, 25_000.0)
        monitor = GatewayMonitor(sim, gateway, interval_s=1.0)
        scaling = ScalingEngine(
            sim, gateway, timings=ScalingTimings(reuse_median_s=5.0,
                                                 settle_median_s=3.0),
            target_water=0.35)
        sandbox = SandboxManager(sim, gateway)
        responder = RapidResponder(
            sim, gateway, monitor, scaling, sandbox,
            signal_provider=lambda sid: AnomalySignals(
                rps_growth=4.0, session_growth=4.0, water_growth=3.0))
        monitor.start()
        # services[1] is HTTP (weight 1): the surge sizing below keeps
        # the pool able to absorb it via Reuse alone.
        noisy = services[1]

        def surge():
            for second in range(120):
                rps = 25_000.0 if second < 30 else 400_000.0
                gateway.set_service_load(noisy.service_id, rps)
                yield sim.timeout(1.0)

        sim.process(surge())
        sim.run(until=121.0)
        # The alert fired, the RCA found the noisy service, scaling ran,
        # and the hottest backend is back under the target.
        assert any(a.level == "backend" for a in monitor.alerts)
        scaled = [r for r in responder.responses if r.action == "scale"]
        assert scaled
        assert scaled[0].service_id == noisy.service_id
        hottest = max(b.water_level()
                      for b in gateway.service_backends[noisy.service_id])
        assert hottest < 0.45

    def test_peers_unaffected(self):
        sim = Simulator(78)
        gateway, services = build_production_gateway(sim, backends_per_az=10)
        for service in services:
            gateway.set_service_load(service.service_id, 25_000.0)
        noisy, peers = services[0], services[1:]
        gateway.set_service_load(noisy.service_id, 300_000.0)
        for peer in peers:
            carried = sum(b.service_rps(peer.service_id)
                          for b in gateway.service_backends[peer.service_id])
            assert carried == pytest.approx(25_000.0)
            assert not gateway.service_outage(peer.service_id)


class TestFailureRecoveryUnderLoad:
    def test_canal_requests_survive_backend_failure(self):
        """DES-mode hierarchical recovery: fail one gateway backend
        mid-run; requests keep succeeding via the survivors."""
        run = build_testbed("canal")
        gateway = run.mesh.gateway
        # Give the testbed gateway a second backend so there is a
        # survivor, and re-register services over both.
        spare = gateway.deploy_backend("az1")
        for service_name in ("svc0", "svc1", "svc2"):
            sid = run.mesh.tenant_service(service_name).service_id
            gateway.extend_service(sid, spare)

        statuses = []

        def scenario():
            connection = yield run.sim.process(
                run.mesh.open_connection(run.client_pod, "svc1"))
            for index in range(20):
                if index == 10:
                    gateway.fail_backend(
                        gateway.all_backends[0].name)
                response = yield run.sim.process(
                    run.mesh.request(connection, HttpRequest()))
                statuses.append(response.status)

        run.sim.process(scenario())
        run.sim.run()
        assert statuses.count(200) == 20

    def test_istio_server_pod_loss_is_visible(self):
        run = build_testbed("istio")
        statuses = []

        def scenario():
            connection = yield run.sim.process(
                run.mesh.open_connection(run.client_pod, "svc1"))
            run.cluster.delete_pod(connection.server_pod)
            response = yield run.sim.process(
                run.mesh.request(connection, HttpRequest()))
            statuses.append(response.status)

        run.sim.process(scenario())
        run.sim.run()
        assert statuses == [503]


class TestMultiTenantIsolationEndToEnd:
    def test_two_tenants_with_overlapping_ips(self):
        """Two clusters with identical pod CIDRs attach to one gateway;
        the VNI→service-ID mapping keeps them apart."""
        from repro.core import CanalMesh, GatewayConfig, MeshGateway
        from repro.core.replica import ReplicaConfig
        from repro.k8s import Cluster
        from repro.netsim import Topology

        sim = Simulator(55)
        config = GatewayConfig(
            replicas_per_backend=1, backends_per_service_per_az=1,
            azs_per_service=1, replica=ReplicaConfig(cores=4))
        gateway = MeshGateway(sim, config)
        gateway.deploy_backend("az1")

        meshes = []
        for tenant_index in (1, 2):
            topo = Topology.single_az_testbed(worker_nodes=2)
            cluster = Cluster(f"cluster{tenant_index}", topo.all_nodes(),
                              tenant=f"tenant{tenant_index}",
                              vni=100 + tenant_index)
            mesh = CanalMesh(sim, gateway=gateway)
            mesh.attach(cluster)
            cluster.create_deployment("web", replicas=4,
                                      labels={"app": "web"})
            cluster.create_service("web", selector={"app": "web"})
            meshes.append((cluster, mesh))

        (cluster1, mesh1), (cluster2, mesh2) = meshes
        service1 = mesh1.tenant_service("web")
        service2 = mesh2.tenant_service("web")
        # Same inner VIP is possible; service IDs must differ.
        assert service1.service_id != service2.service_id
        assert service1.tenant.name != service2.tenant.name

        def scenario(mesh, cluster):
            client = next(iter(cluster.pods.values()))
            connection = yield sim.process(
                mesh.open_connection(client, "web"))
            response = yield sim.process(
                mesh.request(connection, HttpRequest()))
            return response

        first = sim.process(scenario(mesh1, cluster1))
        second = sim.process(scenario(mesh2, cluster2))
        sim.run()
        assert first.value.ok and second.value.ok


class TestSaturationBehaviour:
    def test_istio_p99_spikes_beyond_knee(self):
        """Fig 11's mechanism: past saturation, P99 explodes."""
        reports = {}
        for rps in (400.0, 2600.0):
            run = build_testbed("istio")
            driver = OpenLoopDriver(run.sim, run.mesh, run.client_pod,
                                    "svc1", rps=rps, duration_s=2.0,
                                    connections=50)
            reports[rps] = run.run_driver(driver)
        low = reports[400.0].latency.percentile(99)
        high = reports[2600.0].latency.percentile(99)
        assert high > 5 * low

    def test_canal_stable_where_istio_saturates(self):
        run = build_testbed("canal")
        driver = OpenLoopDriver(run.sim, run.mesh, run.client_pod,
                                "svc1", rps=2600.0, duration_s=2.0,
                                connections=50)
        report = run.run_driver(driver)
        assert report.latency.percentile(99) < 20e-3
