"""Tests for the scripted production cases (§6.2, §2.1)."""

import pytest

from repro.experiments.cases import (
    case1_lossy_migration,
    case2_lossless_migration,
    case3_hotspot_throttling,
    case_cross_region_vpn,
)


class TestCase1LossyMigration:
    @pytest.fixture(scope="class")
    def result(self):
        return case1_lossy_migration()

    def test_attack_classified_as_ddos(self, result):
        assert result.findings["classified_ddos"] >= 1

    def test_exactly_one_migration(self, result):
        """Several backends alert on the same flood; the responses
        coalesce into a single migration."""
        assert result.findings["lossy_migrations"] == 1

    def test_sessions_reset(self, result):
        assert result.findings["sessions_reset"] > 100_000

    def test_completes_within_seconds(self, result):
        assert result.findings["migration_duration_s"] < 15.0

    def test_peers_unaffected(self, result):
        assert result.findings["peers_unaffected"] == 1.0


class TestCase2LosslessMigration:
    @pytest.fixture(scope="class")
    def result(self):
        return case2_lossless_migration()

    def test_autoscaling_kept_firing(self, result):
        assert result.findings["scaling_events"] >= 2

    def test_lossless_migration_happened(self, result):
        assert result.findings["lossless_migrations"] == 1

    def test_no_sessions_reset(self, result):
        assert result.findings["sessions_reset"] == 0

    def test_takes_minutes_not_seconds(self, result):
        """Completion bounded by existing-flow timeout: median ~20 min."""
        assert 5.0 < result.findings["migration_duration_min"] < 90.0


class TestCase3Hotspot:
    @pytest.fixture(scope="class")
    def result(self):
        return case3_hotspot_throttling()

    def test_cascade_without_throttling(self, result):
        """The cross-platform query of death: every platform dies."""
        assert result.findings["platforms_down_without"] == 3

    def test_throttling_prevents_cascade(self, result):
        assert result.findings["platforms_down_with"] == 0
        assert result.findings["a_survives_with_throttle"] == 1.0


class TestCrossRegionVpn:
    @pytest.fixture(scope="class")
    def result(self):
        # Full incident scale: smaller clusters don't saturate the VPN.
        return case_cross_region_vpn(pods=1000, updates=8)

    def test_100mbps_delays_much_larger(self, result):
        assert result.findings["delay_ratio"] > 5.0

    def test_queue_grows_on_saturated_vpn(self, result):
        """Updates arrive faster than the link drains them."""
        assert result.findings["queue_growth_100mbps"] > 1.5

    def test_1gbps_is_timely(self, result):
        assert result.findings["p50_delay_1gbps"] < 5.0


class TestPhaseMigrationCase:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments.cases import case_phase_migration
        return case_phase_migration()

    def test_in_phase_group_detected(self, result):
        assert result.findings["in_phase_groups"] >= 1

    def test_migrations_scatter_the_group(self, result):
        assert result.findings["migrations_executed"] >= 2

    def test_daily_peak_reduced(self, result):
        assert (result.findings["peak_water_after"]
                < result.findings["peak_water_before"])
        assert result.findings["peak_reduction"] > 0.2
