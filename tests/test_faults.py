"""Tests for ``repro.faults``: plans, the engine, and the auditor."""

import json

import pytest

from repro.core import FailureInjector, availability_report
from repro.experiments.cloud_ops import build_production_gateway
from repro.experiments.recovery import _fig8_seed_run, fig8_plan
from repro.faults import (
    FAULT_KINDS,
    Fault,
    FaultEngine,
    FaultPlan,
    FaultPlanError,
    FaultTargetError,
    InvariantAuditor,
    InvariantViolation,
    get_fault_plan,
    take_timelines,
    use_fault_plan,
)
from repro.runtime import use_executor
from repro.simcore import Simulator


def make_chaos_gateway(seed=53, services=6):
    sim = Simulator(seed)
    gateway, tenant_services = build_production_gateway(
        sim, backends_per_az=6, services=services)
    for service in tenant_services:
        gateway.set_service_sessions(service.service_id, 12_000)
        gateway.set_service_load(service.service_id, 20_000.0)
    return sim, gateway, tenant_services


class TestFaultPlan:
    def test_roundtrip_through_json(self):
        plan = fig8_plan()
        clone = FaultPlan.from_json(json.loads(plan.canonical()))
        assert clone == plan
        assert clone.canonical() == plan.canonical()

    def test_canonical_is_key_sorted_and_compact(self):
        plan = FaultPlan.of(Fault(kind="az_crash", at=3.0, target="az1"))
        assert plan.canonical() == \
            '[{"at":3.0,"kind":"az_crash","target":"az1"}]'

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            Fault(kind="disk_melt", target="x")

    def test_negative_time_and_duration_rejected(self):
        with pytest.raises(FaultPlanError, match="must be >= 0"):
            Fault(kind="az_crash", at=-1.0, target="az1")
        with pytest.raises(FaultPlanError, match="duration_s"):
            Fault(kind="az_crash", at=1.0, target="az1", duration_s=0.0)

    def test_targeted_kinds_need_targets(self):
        with pytest.raises(FaultPlanError, match="needs a target"):
            Fault(kind="backend_crash")

    def test_push_delay_needs_positive_param(self):
        with pytest.raises(FaultPlanError, match="positive param"):
            Fault(kind="controlplane_push_delay", at=1.0)

    def test_literal_replica_needs_owning_backend(self):
        with pytest.raises(FaultPlanError, match="owning 'backend'"):
            Fault(kind="replica_crash", target="backend-3-r1")
        # Either form of ownership is fine.
        Fault(kind="replica_crash", target="backend-3-r1",
              backend="backend-3")
        Fault(kind="replica_crash", target="service:0/backend:0/replica:0")

    def test_unknown_json_field_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault field"):
            Fault.from_json({"kind": "az_crash", "target": "az1",
                             "blast_radius": 3})

    def test_non_numeric_fields_rejected(self):
        with pytest.raises(FaultPlanError, match="must be a number"):
            Fault.from_json({"kind": "az_crash", "target": "az1",
                             "at": "noon"})

    def test_sim_and_serve_fault_split(self):
        plan = FaultPlan.of(
            Fault(kind="serve_worker_death", param=2),
            Fault(kind="az_crash", at=5.0, target="az1"))
        assert [f.kind for f in plan.sim_faults()] == ["az_crash"]
        assert [f.kind for f in plan.serve_faults()] == \
            ["serve_worker_death"]

    def test_horizon_covers_recoveries(self):
        plan = FaultPlan.of(
            Fault(kind="az_crash", at=10.0, target="az1", duration_s=30.0),
            Fault(kind="backend_crash", at=35.0, target="backend-1"))
        assert plan.horizon() == 40.0

    def test_every_kind_is_constructible(self):
        for kind in FAULT_KINDS:
            kwargs = {"kind": kind}
            if kind in ("replica_crash", "backend_crash", "az_crash",
                        "query_of_death"):
                kwargs["target"] = "service:0/backend:0/replica:0" \
                    if kind == "replica_crash" else "service:0"
            if kind == "controlplane_push_delay":
                kwargs["param"] = 1.0
            Fault(**kwargs)


class TestFaultEngine:
    def test_arm_rejects_unwired_component(self):
        sim = Simulator(1)
        engine = FaultEngine(sim)  # nothing wired
        plan = FaultPlan.of(Fault(kind="az_crash", at=1.0, target="az1"))
        with pytest.raises(FaultPlanError, match="gateway"):
            engine.arm(plan)

    def test_arm_rejects_faults_in_the_past(self):
        sim, gateway, _ = make_chaos_gateway()
        sim.run(until=10.0)
        engine = FaultEngine(sim, gateway=gateway)
        with pytest.raises(FaultPlanError, match="in the past"):
            engine.arm(FaultPlan.of(
                Fault(kind="az_crash", at=5.0, target="az1")))

    def test_symbolic_target_out_of_range(self):
        sim, gateway, _ = make_chaos_gateway()
        engine = FaultEngine(sim, gateway=gateway)
        engine.arm(FaultPlan.of(
            Fault(kind="backend_crash", at=1.0, target="service:0/backend:99")))
        with pytest.raises(FaultTargetError, match="only"):
            sim.run(until=2.0)

    def test_symbolic_target_bad_syntax(self):
        sim, gateway, _ = make_chaos_gateway()
        engine = FaultEngine(sim, gateway=gateway)
        engine.arm(FaultPlan.of(
            Fault(kind="query_of_death", at=1.0, target="svc-first")))
        with pytest.raises(FaultTargetError):
            sim.run(until=2.0)

    def test_replica_crash_and_recovery(self):
        sim, gateway, services = make_chaos_gateway()
        engine = FaultEngine(sim, gateway=gateway)
        engine.arm(FaultPlan.of(
            Fault(kind="replica_crash", at=5.0,
                  target="service:0/backend:0/replica:0", duration_s=10.0)))
        sim.run(until=6.0)
        victim = sorted(gateway.service_backends)[0]
        backend = gateway.service_backends[victim][0]
        assert not backend.replicas[0].healthy
        assert availability_report(gateway)[victim]  # sibling replica holds
        sim.run(until=20.0)
        assert backend.replicas[0].healthy

    def test_az_crash_survived_and_timeline_recorded(self):
        sim, gateway, _ = make_chaos_gateway()
        engine = FaultEngine(sim, gateway=gateway)
        engine.arm(FaultPlan.of(
            Fault(kind="az_crash", at=5.0, target="az1", duration_s=10.0)))
        sim.run(until=6.0)
        assert all(availability_report(gateway).values())
        sim.run(until=20.0)
        assert [(e["t"], e["action"]) for e in engine.timeline] == \
            [(5.0, "inject"), (15.0, "recover")]
        assert engine.auditor.checks_run > 0
        assert engine.auditor.violations == []

    def test_query_of_death_blast_radius(self):
        sim, gateway, services = make_chaos_gateway()
        engine = FaultEngine(sim, gateway=gateway)
        engine.arm(FaultPlan.of(
            Fault(kind="query_of_death", at=5.0, target="service:2",
                  duration_s=10.0)))
        sim.run(until=6.0)
        victim = sorted(gateway.service_backends)[2]
        report = availability_report(gateway)
        assert not report[victim]
        assert all(up for sid, up in report.items() if sid != victim)
        sim.run(until=20.0)
        assert all(availability_report(gateway).values())

    def test_overlapping_faults_do_not_double_count(self):
        """AZ crash with a backend crash inside it: the backend's
        sessions are disrupted once, not twice."""
        sim, gateway, _ = make_chaos_gateway()
        engine = FaultEngine(sim, gateway=gateway)
        backend = gateway.backends_by_az["az1"][0]
        before = sum(r.sessions_used for r in backend.replicas)
        engine.arm(FaultPlan.of(
            Fault(kind="az_crash", at=5.0, target="az1", duration_s=20.0),
            Fault(kind="backend_crash", at=10.0, target=backend.name,
                  duration_s=5.0)))
        sim.run(until=30.0)
        disrupted = engine.injector.disrupted_by_scope()
        assert disrupted.get("backend", 0) == 0  # already down with the AZ
        assert disrupted["az"] >= before

    def test_plan_order_breaks_same_time_ties(self):
        sim, gateway, _ = make_chaos_gateway()
        engine = FaultEngine(sim, gateway=gateway)
        engine.arm(FaultPlan.of(
            Fault(kind="az_crash", at=5.0, target="az1"),
            Fault(kind="az_crash", at=5.0, target="az2")))
        sim.run(until=6.0)
        assert [e["target"] for e in engine.timeline] == ["az1", "az2"]

    def test_nagle_misconfig_swaps_and_restores(self):
        from repro.kernel.redirection import EbpfRedirect
        sim = Simulator(3)
        pristine = EbpfRedirect()
        engine = FaultEngine(sim, redirector=pristine, audit=False)
        engine.arm(FaultPlan.of(
            Fault(kind="nagle_misconfig", at=1.0, duration_s=2.0)))
        sim.run(until=1.5)
        assert engine.redirector.nagle_enabled is False
        sim.run(until=5.0)
        assert engine.redirector is pristine

    def test_cert_rotation_failure_and_reissue(self):
        from repro.crypto import CertificateAuthority
        sim = Simulator(4)
        ca = CertificateAuthority("test-ca")
        cert = ca.issue("spiffe://t/s", "t", not_after=1e9)
        engine = FaultEngine(sim, ca=ca, audit=False)
        engine.arm(FaultPlan.of(
            Fault(kind="cert_rotation_failure", at=1.0, duration_s=2.0)))
        sim.run(until=2.0)
        assert not ca.verify(cert, now=sim.now)
        sim.run(until=5.0)
        assert ca.verify(ca.issued_for("spiffe://t/s"), now=sim.now)


class TestDeterminism:
    def test_seed_run_is_reproducible(self):
        spec = (53, fig8_plan().canonical())
        first = _fig8_seed_run(spec)
        second = _fig8_seed_run(spec)
        assert json.dumps(first, sort_keys=True, default=str) == \
            json.dumps(second, sort_keys=True, default=str)

    def test_seed_run_identical_under_pooled_executor(self):
        """The chaos-smoke property: byte-identical at any --jobs."""
        specs = [(seed, fig8_plan().canonical()) for seed in (53, 54)]
        serial = [_fig8_seed_run(spec) for spec in specs]
        with use_executor(jobs=2):
            from repro.runtime import sweep_map
            pooled = sweep_map(_fig8_seed_run, specs)
        assert json.dumps(serial, sort_keys=True, default=str) == \
            json.dumps(pooled, sort_keys=True, default=str)


class TestInvariantAuditor:
    def test_clean_gateway_passes(self):
        _sim, gateway, _ = make_chaos_gateway()
        auditor = InvariantAuditor(gateway=gateway)
        assert auditor.check("baseline") > 0
        assert auditor.violations == []

    def test_catches_stale_dns_after_hidden_replica_kill(self):
        """Failures injected below the gateway API (the pre-plan bug):
        the auditor must notice DNS still resolving a dead AZ."""
        _sim, gateway, _ = make_chaos_gateway()
        for backend in gateway.backends_by_az["az1"]:
            for replica in backend.replicas:
                replica.healthy = False
                replica.sessions_used = 0
        auditor = InvariantAuditor(gateway=gateway)
        with pytest.raises(InvariantViolation, match="dns-consistency"):
            auditor.check("stale-dns")

    def test_catches_sessions_parked_on_dead_replica(self):
        _sim, gateway, _ = make_chaos_gateway()
        replica = gateway.all_backends[0].replicas[0]
        replica.healthy = False  # without clearing sessions_used
        assert replica.sessions_used > 0
        auditor = InvariantAuditor(gateway=gateway)
        with pytest.raises(InvariantViolation, match="dead-replica"):
            auditor.check("stale-sessions")

    def test_catches_lost_sessions(self):
        _sim, gateway, _ = make_chaos_gateway()
        sid = sorted(gateway.service_backends)[0]
        for backend in gateway.service_backends[sid]:
            backend.offer_sessions(sid, 0)  # sessions vanish, total doesn't
        auditor = InvariantAuditor(gateway=gateway)
        with pytest.raises(InvariantViolation, match="session-conservation"):
            auditor.check("lost-sessions")

    def test_collect_mode_accumulates_instead_of_raising(self):
        _sim, gateway, _ = make_chaos_gateway()
        replica = gateway.all_backends[0].replicas[0]
        replica.healthy = False
        auditor = InvariantAuditor(gateway=gateway,
                                   raise_on_violation=False)
        auditor.check("collect")
        assert len(auditor.violations) >= 1
        assert all(isinstance(v, InvariantViolation)
                   for v in auditor.violations)

    def test_violation_message_carries_context(self):
        violation = InvariantViolation("dns-consistency", "oops",
                                       context="inject:az_crash:az1")
        assert "inject:az_crash:az1" in str(violation)
        assert violation.invariant == "dns-consistency"


class TestAmbientPlan:
    def test_use_fault_plan_scopes_and_restores(self):
        plan = fig8_plan()
        assert get_fault_plan() is None
        with use_fault_plan(plan):
            assert get_fault_plan() is plan
            with use_fault_plan(None):
                assert get_fault_plan() is None
            assert get_fault_plan() is plan
        assert get_fault_plan() is None

    def test_engine_timelines_drain_once(self):
        take_timelines()  # drop anything a prior test leaked
        sim, gateway, _ = make_chaos_gateway()
        engine = FaultEngine(sim, gateway=gateway)
        engine.arm(FaultPlan.of(
            Fault(kind="az_crash", at=1.0, target="az1", duration_s=1.0)))
        sim.run(until=3.0)
        drained = take_timelines()
        assert engine.timeline in drained
        assert take_timelines() == []

    def test_ambient_plan_bypasses_result_cache(self, tmp_path):
        from repro.runtime import cached_run
        with use_fault_plan(fig8_plan()):
            with pytest.warns(RuntimeWarning, match="fault plan"):
                result, hit = cached_run("fig19",
                                         cache_dir=str(tmp_path / "cache"))
        assert not hit
        assert result.exp_id == "fig19"
