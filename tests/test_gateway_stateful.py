"""Stateful chaos testing of the gateway (hypothesis rule-based).

Random interleavings of the operations a production gateway sees —
load changes, backend/AZ failures and recoveries, service extension and
shrinking, throttling, sandbox quarantine — must preserve the
invariants the paper's availability story rests on:

* load conservation: carried RPS equals offered RPS (capped by any
  throttle) whenever the service has a healthy carrier;
* availability: a service is in outage only when *every* carrier
  backend is down;
* replica-level balance: every healthy replica of a backend carries the
  same share;
* no operation sequence crashes the control plane.
"""

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.core import GatewayConfig, MeshGateway, SandboxManager
from repro.core.replica import ReplicaConfig
from repro.simcore import Simulator


class GatewayMachine(RuleBasedStateMachine):
    @initialize()
    def build(self):
        self.sim = Simulator(1234)
        config = GatewayConfig(
            replicas_per_backend=2, backends_per_service_per_az=2,
            azs_per_service=2,
            replica=ReplicaConfig(cores=8, request_cost_s=100e-6))
        self.gateway = MeshGateway(self.sim, config)
        self.gateway.deploy_initial(["az1", "az2"], 5)
        self.sandbox = SandboxManager(self.sim, self.gateway)
        self.services = []
        for index in range(4):
            tenant = self.gateway.registry.add_tenant(f"t{index}")
            service = self.gateway.registry.add_service(
                tenant, "web", f"10.0.0.{index + 1}")
            self.gateway.register_service(service)
            self.gateway.set_service_load(service.service_id, 10_000.0)
            self.services.append(service)
        self.offered = {s.service_id: 10_000.0 for s in self.services}
        self.throttles = {}

    # -- operations --------------------------------------------------------
    @rule(index=st.integers(0, 3),
          rps=st.floats(min_value=0, max_value=300_000))
    def set_load(self, index, rps):
        sid = self.services[index].service_id
        self.gateway.set_service_load(sid, rps)
        self.offered[sid] = rps

    @rule(backend_index=st.integers(0, 9))
    def fail_backend(self, backend_index):
        backends = self.gateway.all_backends
        self.gateway.fail_backend(
            backends[backend_index % len(backends)].name)

    @rule(backend_index=st.integers(0, 9))
    def recover_backend(self, backend_index):
        backends = self.gateway.all_backends
        self.gateway.recover_backend(
            backends[backend_index % len(backends)].name)

    @rule(az=st.sampled_from(["az1", "az2"]))
    def fail_az(self, az):
        self.gateway.fail_az(az)

    @rule(az=st.sampled_from(["az1", "az2"]))
    def recover_az(self, az):
        self.gateway.recover_az(az)

    @rule(index=st.integers(0, 3))
    def extend(self, index):
        sid = self.services[index].service_id
        spare = next((b for b in self.gateway.all_backends
                      if not b.hosts_service(sid)
                      and b not in self.gateway.sandboxed.values()), None)
        if spare is not None:
            self.gateway.extend_service(sid, spare)

    @rule(index=st.integers(0, 3))
    def shrink(self, index):
        sid = self.services[index].service_id
        backends = self.gateway.service_backends[sid]
        if len(backends) > 1:
            self.gateway.shrink_service(sid, backends[-1])

    @rule(index=st.integers(0, 3),
          rate=st.floats(min_value=1_000, max_value=50_000))
    def throttle(self, index, rate):
        sid = self.services[index].service_id
        self.gateway.throttle_service(sid, rate)
        self.throttles[sid] = rate

    @rule(index=st.integers(0, 3))
    def unthrottle(self, index):
        sid = self.services[index].service_id
        self.gateway.unthrottle_service(sid)
        self.throttles.pop(sid, None)

    @rule(index=st.integers(0, 3))
    def quarantine(self, index):
        sid = self.services[index].service_id
        if sid not in self.gateway.sandboxed:
            process = self.sim.process(self.sandbox.migrate_lossy(sid))
            self.sim.run()

    @rule(index=st.integers(0, 3))
    def release(self, index):
        sid = self.services[index].service_id
        if sid in self.gateway.sandboxed:
            self.sandbox.release(sid)

    # -- invariants -----------------------------------------------------------
    @invariant()
    def load_is_conserved(self):
        for service in getattr(self, "services", []):
            sid = service.service_id
            offered = self.offered[sid]
            limit = self.throttles.get(sid)
            expected = min(offered, limit) if limit is not None else offered
            carriers = list(self.gateway.service_backends[sid])
            quarantine = self.gateway.sandboxed.get(sid)
            if quarantine is not None:
                carriers = [quarantine]
            healthy = [b for b in carriers if b.is_healthy]
            carried = sum(b.service_rps(sid) for b in healthy)
            if healthy and expected > 0:
                assert carried == pytest.approx(expected, rel=1e-6)
            else:
                assert carried == 0.0

    @invariant()
    def outage_only_when_all_carriers_down(self):
        for service in getattr(self, "services", []):
            sid = service.service_id
            quarantine = self.gateway.sandboxed.get(sid)
            if quarantine is not None:
                carriers = [quarantine]
            else:
                carriers = self.gateway.service_backends[sid]
            any_up = any(b.is_healthy for b in carriers)
            assert self.gateway.service_outage(sid) == (not any_up)

    @invariant()
    def replicas_balanced_within_backend(self):
        for backend in getattr(self, "gateway",
                               type("x", (), {"all_backends": []})) \
                .all_backends:
            healthy = backend.healthy_replicas()
            if len(healthy) < 2:
                continue
            loads = [r.offered_rps for r in healthy]
            assert max(loads) - min(loads) < 1e-6 * max(1.0, max(loads))


GatewayMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None)
TestGatewayChaos = GatewayMachine.TestCase
