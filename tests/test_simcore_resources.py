"""Tests for resources: semaphores, CPU accounting, stores."""

import pytest

from repro.simcore import CpuResource, Resource, Simulator, Store


@pytest.fixture
def sim():
    return Simulator(seed=0)


class TestResource:
    def test_capacity_validated(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_grants_up_to_capacity(self, sim):
        resource = Resource(sim, capacity=2)
        first = resource.request()
        second = resource.request()
        third = resource.request()
        sim.run()
        assert first.processed and second.processed
        assert not third.triggered
        assert resource.queue_length == 1

    def test_release_grants_next_in_fifo_order(self, sim):
        resource = Resource(sim, capacity=1)
        order = []

        def worker(name, hold):
            with resource.request() as claim:
                yield claim
                order.append(name)
                yield sim.timeout(hold)

        sim.process(worker("a", 1.0))
        sim.process(worker("b", 1.0))
        sim.process(worker("c", 1.0))
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_release_is_idempotent(self, sim):
        resource = Resource(sim, capacity=1)
        claim = resource.request()
        sim.run()
        resource.release(claim)
        resource.release(claim)
        assert resource.in_use == 0

    def test_cancel_queued_request(self, sim):
        resource = Resource(sim, capacity=1)
        held = resource.request()
        queued = resource.request()
        sim.run()
        resource.release(queued)  # cancel while still waiting
        resource.release(held)
        assert resource.in_use == 0
        assert resource.queue_length == 0

    def test_resize_grants_waiters(self, sim):
        resource = Resource(sim, capacity=1)
        resource.request()
        waiting = resource.request()
        sim.run()
        assert not waiting.triggered
        resource.resize(2)
        sim.run()
        assert waiting.processed


class TestCpuResource:
    def test_busy_time_single_job(self, sim):
        cpu = CpuResource(sim, cores=1)

        def job():
            yield from cpu.execute(2.5)

        sim.process(job())
        sim.run()
        assert cpu.busy_time() == pytest.approx(2.5)

    def test_parallel_jobs_on_multiple_cores(self, sim):
        cpu = CpuResource(sim, cores=2)
        for _ in range(2):
            sim.process(cpu.execute(1.0))
        sim.run()
        assert sim.now == pytest.approx(1.0)
        assert cpu.busy_time() == pytest.approx(2.0)

    def test_queueing_on_saturated_cpu(self, sim):
        cpu = CpuResource(sim, cores=1)
        for _ in range(3):
            sim.process(cpu.execute(1.0))
        sim.run()
        assert sim.now == pytest.approx(3.0)
        assert cpu.busy_time() == pytest.approx(3.0)

    def test_utilization_full(self, sim):
        cpu = CpuResource(sim, cores=2)
        for _ in range(4):
            sim.process(cpu.execute(1.0))
        sim.run()
        assert cpu.utilization() == pytest.approx(1.0)

    def test_utilization_partial(self, sim):
        cpu = CpuResource(sim, cores=1)
        sim.process(cpu.execute(1.0))
        sim.run(until=4.0)
        assert cpu.utilization() == pytest.approx(0.25)

    def test_utilization_between_marks(self, sim):
        cpu = CpuResource(sim, cores=1)

        def scenario():
            cpu.mark()
            yield from cpu.execute(1.0)
            yield sim.timeout(1.0)
            cpu.mark()
            yield from cpu.execute(2.0)
            cpu.mark()

        sim.process(scenario())
        sim.run()
        windows = cpu.utilization_between_marks()
        assert windows[0][1] == pytest.approx(0.5)   # busy 1 of 2 s
        assert windows[1][1] == pytest.approx(1.0)   # busy 2 of 2 s

    def test_negative_work_rejected(self, sim):
        cpu = CpuResource(sim, cores=1)
        with pytest.raises(ValueError):
            list(cpu.execute(-1.0))


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("item")
        claim = store.get()
        sim.run()
        assert claim.value == "item"

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        results = []

        def consumer():
            value = yield store.get()
            results.append((sim.now, value))

        def producer():
            yield sim.timeout(2.0)
            store.put("late")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert results == [(2.0, "late")]

    def test_fifo_ordering(self, sim):
        store = Store(sim)
        store.put(1)
        store.put(2)
        first = store.get()
        second = store.get()
        sim.run()
        assert (first.value, second.value) == (1, 2)

    def test_len_reflects_contents(self, sim):
        store = Store(sim)
        assert len(store) == 0
        store.put("x")
        assert len(store) == 1
