"""SIM001 fixture: sim-process generators that block or never yield."""

import time


def bad_sleeping_process(sim, delay):
    time.sleep(delay)  # positive: line 7
    yield sim.timeout(delay)


def bad_returns_before_yield(sim, value):
    return value * 2  # positive: line 12 — yields below are unreachable
    yield sim.timeout(1.0)


def fine_conditional_return(sim, fast_path, value):
    if fast_path:
        return value  # negative: Process delivers StopIteration values
    yield sim.timeout(1.0)
    return value * 2


def fine_plain_generator(items):
    for item in items:
        time.sleep(0)  # negative: not a sim process (no sim yields)
        yield item


def suppressed_process(sim, delay):
    time.sleep(delay)  # simlint: ignore[SIM001] negative: justified
    yield sim.timeout(delay)
