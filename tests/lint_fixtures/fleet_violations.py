"""Fleet-tier lint fixture (linted as module repro.fleet.fixture).

Pins the fluid tier's determinism contract: ``repro.fleet`` sits at
rank 2 in the layer DAG and is *not* on the DET001 allowlist, so
wall-clock reads, unseeded RNG, dynamic imports (its modules feed the
fleet exhibits' cache keys), and upward imports must all fire here.
"""

import importlib  # CACHE001 positive: line 9
import random
import time

from repro.experiments.base import ExperimentResult  # LAYER001: line 13
from repro.serve import app  # LAYER001 positive: line 14


def bad_wall_clock():
    return time.time()  # DET001 positive: line 18


def bad_unseeded_rng():
    return random.random()  # DET002 positive: line 22


def bad_dynamic_physics(name):
    return importlib.import_module(name)  # (CACHE001 flags line 9)


def use_upward():
    return ExperimentResult, app
