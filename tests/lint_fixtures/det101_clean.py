"""DET101 clean fixture (linted as module repro.core.fake_clean).

Deterministic flows and sanitized order must not fire.
"""

import time
from typing import Set


def model_time(sim):
    return sim.now + 1.0


class Gateway:
    def __init__(self, sim):
        self.active: Set[int] = set()
        self.last_seen = 0.0
        self.sim = sim

    def refresh(self, sim):
        # deterministic helper: sim time, not wall time.
        self.last_seen = model_time(sim)

    def snapshot(self):
        # sorted() strips the order taint before the sink.
        self.order = sorted(self.active)

    def direct(self):
        # Direct wall-clock store: DET001 territory, not DET101's
        # (no call hop, so DET101 stays quiet; DET001 fires instead).
        self.started = time.time()


def seeded_draw(rng):
    # rng threaded as a parameter is the sanctioned pattern.
    return rng.random()
