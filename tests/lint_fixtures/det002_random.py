"""DET002 fixture: module-level / unseeded randomness."""

import random
from random import Random


def bad_module_level():
    return random.randint(0, 10)  # positive: line 8


def bad_unseeded():
    return random.Random()  # positive: line 12


def bad_from_import_unseeded():
    return Random()  # positive: line 16


def bad_system_random():
    return random.SystemRandom()  # positive: line 20


def fine_seeded(seed):
    return random.Random(seed)  # negative: seeded


def suppressed():
    return random.random()  # simlint: ignore[DET002] negative: justified
