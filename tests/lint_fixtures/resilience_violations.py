"""Resilience-layer lint fixture (linted as repro.resilience.fixture).

Pins the new package's lint contract: ``repro.resilience`` sits at
rank 1 in the layer DAG (a mechanism layer, peer of ``repro.core`` /
``repro.mesh``) and its modules steer every protected exhibit's
output, so dynamic imports (CACHE001) and upward imports into the
fault/experiment layers (LAYER001) must all fire here.
"""

import importlib  # CACHE001 positive: line 10

from repro.faults.plan import FaultPlan  # LAYER001 positive: line 12
from repro.experiments.base import Series  # LAYER001 positive: line 13


def bad_dynamic_policy(name):
    return importlib.import_module(name)  # (CACHE001 flags line 10)


def use_upward():
    return FaultPlan, Series
