"""SLAB001 fixture: slab recycling with and without callbacks reset.

The rule keys on the *module name* (``repro.simcore.*``), so the test
lints this file with an explicit module override.
"""


def bad_recycle_keeps_callbacks(sim, event):
    slab = sim._timeout_slab
    event._value = None
    slab.append(event)  # positive: line 11


def bad_recycle_attribute_slab(sim, event):
    event._value = None
    sim._timeout_slab.append(event)  # positive: line 16


def good_recycle_resets_callbacks(sim, event, callbacks):
    del callbacks[:]
    event.callbacks = callbacks
    sim._timeout_slab.append(event)  # negative: reset above


def good_recycle_tuple_assign(sim, event):
    event.callbacks, event._value = [], None
    sim._timeout_slab.append(event)  # negative: tuple-target reset


def fine_unrelated_append(items, value):
    items.append(value)  # negative: not a slab
