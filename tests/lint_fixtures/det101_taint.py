"""DET101 firing fixture (linted as module repro.core.fake_taint).

Every sink here receives nondeterminism *through at least one call*,
which is exactly the gap DET001-003 cannot see.
"""

import time
from typing import Set


def jitter():
    return time.time()


def scaled_jitter():
    return jitter() * 2.0


def record(holder, value):
    # Param sink: callers feeding a tainted second argument are flagged
    # at their call site.
    holder.stamp = value


class Gateway:
    def __init__(self):
        self.active: Set[int] = set()
        self.last_seen = 0.0
        self.order = ()

    def refresh(self):
        # wall-clock reaches sim state two calls deep.
        self.last_seen = scaled_jitter()

    def snapshot(self):
        # set -> sequence conversion: hash-order reaches sim state.
        self.order = list(self.active)

    def tag(self, obj):
        # id() identity taint into sim state (direct: ident always fires).
        self.marker = id(obj)


def drive(gateway):
    record(gateway, time.time())


def cache_spec(name):
    # identity taint into cache-key material.
    return RunSpec(key=hash(name))


class RunSpec:
    def __init__(self, key=None):
        self.key = key
