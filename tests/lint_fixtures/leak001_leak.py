"""LEAK001 firing fixture: acquired slab objects leaked on exit paths."""


def early_return_leak(sim, slab):
    timeout = slab._acquire(sim, 1.0)
    if sim.now > 10.0:
        return None
    sim.schedule(timeout)
    return timeout


def fall_off_leak(pool):
    connection = pool.acquire()
    print("acquired but never used")


def one_branch_leaks(sim, slab):
    timeout = slab._acquire(sim, 1.0)
    if sim.now > 10.0:
        timeout.cancel()
    else:
        pass
    return None
