"""DET003 order-insensitive-consumer fixture: both sides.

A comprehension over a set fed directly into len/any/all/sum/min/max/
sorted/set/frozenset is deterministic (clean); the same comprehension
materialized into an ordered container still fires.
"""

ITEMS = {3, 1, 2}


def clean_consumers():
    total = sum(x for x in ITEMS)
    n = len([x for x in ITEMS if x > 1])
    has_even = any(x % 2 == 0 for x in ITEMS)
    uniform = all(x < 10 for x in ITEMS)
    ordered = sorted(x * 2 for x in ITEMS)
    doubled = {x * 2 for x in ITEMS}
    present = 2 in ITEMS
    return total, n, has_even, uniform, ordered, doubled, present


def firing_consumers():
    as_list = [x for x in ITEMS]
    as_dict = {x: True for x in ITEMS}
    return as_list, as_dict
