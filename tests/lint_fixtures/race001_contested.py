"""RACE001 firing fixture (linted as module repro.core.fake_race).

Two distinct sim-process generators write the same module global and
the same class attribute without simcore synchronization.
"""

BACKLOG = []


class Shared:
    high_water = 0


def producer(sim):
    yield sim.timeout(1.0)
    BACKLOG.append("produced")
    Shared.high_water = sim.now


def consumer(sim):
    yield sim.timeout(2.0)
    BACKLOG.append("consumed")
    Shared.high_water = 0
