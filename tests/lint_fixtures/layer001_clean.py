"""LAYER001 clean fixture (linted as module repro.mesh.fake).

Downward and same-layer imports, stdlib, and low-rank submodules
reached through a higher-rank package root are all allowed.
"""

import json
import os

from repro.simcore import Simulator
from repro.core import gateway
from repro.obs.runtime import get_telemetry


def use_them():
    return json, os, Simulator, gateway, get_telemetry
