"""CACHE001 fixture: dynamic imports in an experiments module.

The rule keys on the *module name* (``repro.experiments.*``), so the
test lints this file with an explicit module override.
"""

import importlib  # positive: line 7


def bad_dynamic_load(name):
    return importlib.import_module(name)


def bad_dunder_import(name):
    return __import__(name)  # positive: line 15


def fine_static_use():
    # simlint: ignore[CACHE001] negative: justified
    from importlib import metadata
    return metadata
