"""PICKLE001 fixture: unpicklable sweep targets."""


def _module_level_point(spec):
    return spec * 2


def bad_lambda(sweep_map, specs):
    return sweep_map(lambda s: s * 2, specs)  # positive: line 9


def bad_nested(sweep_map, specs, factor):
    def point(spec):
        return spec * factor

    return sweep_map(point, specs)  # positive: line 16


class Engine:
    def point(self, spec):
        return spec

    def bad_bound_method(self, sweep_imap, specs):
        return sweep_imap(self.point, specs)  # positive: line 24

    def suppressed(self, sweep_map, specs):
        # simlint: ignore[PICKLE001] negative: serial-only helper
        return sweep_map(self.point, specs)


def fine_module_level(sweep_map, specs):
    return sweep_map(_module_level_point, specs)  # negative: picklable
