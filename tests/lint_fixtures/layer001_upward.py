"""LAYER001 firing fixture (linted as module repro.simcore.fake).

The simulation kernel (layer 0) importing observability (layer 1) and
the service layer (layer 4) are upward edges in the declared DAG.
"""

from repro.obs.runtime import new_profiler
from repro.serve import app

import repro.experiments


def use_them():
    return new_profiler, app, repro.experiments
