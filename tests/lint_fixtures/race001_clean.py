"""RACE001 clean fixture (linted as module repro.core.fake_race_ok).

Single-writer globals, non-generator writers, and state routed through
a simcore synchronization type are all fine.
"""

from repro.simcore import Store

QUEUE = Store()
SOLO = []


def producer(sim):
    yield sim.timeout(1.0)
    # Store is simcore-synchronized: exempt even with two writers.
    QUEUE.append("produced")


def consumer(sim):
    yield sim.timeout(2.0)
    QUEUE.append("consumed")


def only_writer(sim):
    yield sim.timeout(1.0)
    SOLO.append("one writer is not a race")


def not_a_process():
    # plain function (no yield): free to touch module state.
    SOLO.append("setup")
