"""DET003 fixture: unordered iteration."""

import os
from typing import Set


class Holder:
    def __init__(self):
        self.members: Set[str] = set()


def bad_for_over_set(items):
    total = []
    for item in set(items):  # positive: line 14
        total.append(item)
    return total


def bad_comprehension(holder):
    return [m for m in holder.members]  # positive: line 20 (annotated attr)


def bad_popitem(table):
    return table.popitem()  # positive: line 24


def bad_listdir(path):
    return list(os.listdir(path))  # positive: line 28


def bad_local_set_name(items):
    pending = {item for item in items}
    return [item for item in pending]  # positive: line 33


def fine_sorted(items):
    return [item for item in sorted(set(items))]  # negative: sorted


def fine_listdir_sorted(path):
    return sorted(os.listdir(path))  # negative: sorted wrapper


def suppressed(items):
    for item in set(items):  # simlint: ignore[DET003] negative: justified
        return item
