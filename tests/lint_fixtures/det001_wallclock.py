"""DET001 fixture: wall-clock reads."""

import time
from datetime import datetime
from time import perf_counter


def bad_direct():
    return time.time()  # positive: line 9


def bad_from_import():
    return perf_counter()  # positive: line 13


def bad_datetime():
    return datetime.now()  # positive: line 17


def suppressed():
    return time.monotonic()  # simlint: ignore[DET001] negative: justified


def fine_sim_time(sim):
    return sim.now  # negative: simulated clock is the point
