"""LEAK001 clean fixture: every exit path consumes the acquired value."""


def released_on_both_paths(sim, slab):
    timeout = slab._acquire(sim, 1.0)
    if sim.now > 10.0:
        timeout.cancel()
        return None
    sim.schedule(timeout)
    return timeout


def returned_directly(sim, slab):
    return slab._acquire(sim, 1.0)


def handed_off(sim, slab, registry):
    timeout = slab._acquire(sim, 1.0)
    registry.track(timeout)


def stored(sim, slab, holder):
    timeout = slab._acquire(sim, 1.0)
    holder.pending = timeout


def context_managed(pool):
    with pool.acquire() as connection:
        return connection.ping()
