"""Intentional simlint violations, one module per rule.

Each fixture pairs a positive case (the rule must fire, on a known
line) with a negative case (suppressed or structurally fine). The
directory is excluded from recursive lint walks — fixtures are only
linted when named explicitly (see tests/test_lint.py).
"""
