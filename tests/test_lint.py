"""simlint: rule fixtures, framework behavior, CLI, cache hardening."""

import json
import os
import warnings

import pytest

from repro.lint import (
    ModuleSource,
    ProjectIndex,
    all_rules,
    collect_files,
    get_rule,
    lint_files,
    lint_paths,
    select_rules,
)
from repro.lint.astutil import (
    collect_aliases,
    dynamic_import_lines,
    module_name_for_path,
    resolve_call_name,
)
from repro.lint.cli import main as lint_main
from repro.lint.runner import load_baseline, split_baselined, write_baseline
from repro.runtime import cache as runtime_cache

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "lint_fixtures")
SRC_REPRO = os.path.normpath(os.path.join(HERE, "..", "src", "repro"))


def fixture(name: str) -> str:
    return os.path.join(FIXTURES, name)


def findings_for(name: str, rule_id: str, module: str = None):
    """Run one rule over one fixture, suppressions applied."""
    source_module = ModuleSource(fixture(name), module=module)
    assert source_module.syntax_error is None
    project = ProjectIndex.build([source_module])
    rule = get_rule(rule_id)
    return sorted((f for f in rule.check(source_module, project)
                   if not source_module.is_suppressed(f.line, f.rule)),
                  key=lambda f: f.sort_key)


class TestDet001WallClock:
    def test_positive_lines(self):
        found = findings_for("det001_wallclock.py", "DET001")
        assert [f.line for f in found] == [9, 13, 17]
        assert all(f.rule == "DET001" and f.severity == "error"
                   for f in found)

    def test_from_import_resolves(self):
        found = findings_for("det001_wallclock.py", "DET001")
        assert "time.perf_counter()" in found[1].message

    def test_allowlisted_module_is_exempt(self):
        source_module = ModuleSource(fixture("det001_wallclock.py"),
                                     module="repro.obs.fake")
        rule = get_rule("DET001")
        assert list(rule.check(source_module, ProjectIndex())) == []

    def test_obs_profiler_is_allowlisted_in_src(self):
        profiler = os.path.join(SRC_REPRO, "obs", "profiler.py")
        found = [f for f in lint_files([profiler]) if f.rule == "DET001"]
        assert found == []  # uses perf_counter but lives in repro.obs

    def test_denylist_overrides_allowlist(self):
        # repro.obs.trace sits under the repro.obs allowlist prefix but
        # records sim time, so wall-clock use there IS a finding.
        source_module = ModuleSource(fixture("det001_wallclock.py"),
                                     module="repro.obs.trace")
        rule = get_rule("DET001")
        found = [f for f in rule.check(source_module, ProjectIndex())
                 if not source_module.is_suppressed(f.line, f.rule)]
        assert [f.line for f in found] == [9, 13, 17]

    def test_trace_module_in_src_is_clean(self):
        trace = os.path.join(SRC_REPRO, "obs", "trace.py")
        found = [f for f in lint_files([trace]) if f.rule == "DET001"]
        assert found == []  # denylisted, and actually wall-clock free


class TestDet002Random:
    def test_positive_lines(self):
        found = findings_for("det002_random.py", "DET002")
        assert [f.line for f in found] == [8, 12, 16, 20]

    def test_seeded_random_is_fine(self):
        found = findings_for("det002_random.py", "DET002")
        assert not any(f.line == 24 for f in found)


class TestDet003Unordered:
    def test_positive_lines(self):
        found = findings_for("det003_unordered.py", "DET003")
        assert [f.line for f in found] == [14, 20, 24, 28, 33]

    def test_sorted_wrappers_are_fine(self):
        found = findings_for("det003_unordered.py", "DET003")
        assert not any(f.line in (37, 41) for f in found)

    def test_cross_file_set_attribute(self, tmp_path):
        """An attribute annotated Set in one file flags iteration over
        the same attribute name in another file."""
        declaring = tmp_path / "declaring.py"
        declaring.write_text(
            "from typing import Set\n"
            "class Backend:\n"
            "    def __init__(self):\n"
            "        self.members: Set[int] = set()\n")
        consuming = tmp_path / "consuming.py"
        consuming.write_text(
            "def peers(backend):\n"
            "    return [m for m in backend.members]\n")
        found = lint_files([str(declaring), str(consuming)],
                           rules=[get_rule("DET003")])
        assert [(os.path.basename(f.path), f.line) for f in found] == [
            ("consuming.py", 2)]


class TestPickle001SweepTargets:
    def test_positive_lines(self):
        found = findings_for("pickle001_sweep.py", "PICKLE001")
        assert [f.line for f in found] == [9, 16, 24]

    def test_messages_name_the_sink(self):
        found = findings_for("pickle001_sweep.py", "PICKLE001")
        assert "sweep_map" in found[0].message
        assert "sweep_imap" in found[2].message

    def test_module_level_target_is_fine(self):
        found = findings_for("pickle001_sweep.py", "PICKLE001")
        assert not any(f.line == 32 for f in found)


class TestSim001BlockingProcess:
    def test_positive_lines(self):
        found = findings_for("sim001_blocking.py", "SIM001")
        assert [f.line for f in found] == [7, 12]

    def test_conditional_early_return_is_fine(self):
        found = findings_for("sim001_blocking.py", "SIM001")
        assert not any(17 <= f.line <= 21 for f in found)

    def test_plain_generator_is_not_a_sim_process(self):
        found = findings_for("sim001_blocking.py", "SIM001")
        assert not any(23 <= f.line <= 27 for f in found)


class TestCache001DynamicImports:
    def test_positive_lines_with_experiments_module(self):
        found = findings_for("cache001_dynamic.py", "CACHE001",
                             module="repro.experiments.fixture")
        assert [f.line for f in found] == [7, 15]

    def test_rule_only_applies_to_experiments_package(self):
        found = findings_for("cache001_dynamic.py", "CACHE001",
                             module="tests.lint_fixtures.cache001_dynamic")
        assert found == []

    def test_rule_covers_faults_package(self):
        # Chaos-aware exhibits import repro.faults on the cached path,
        # so its modules get the same dynamic-import scrutiny.
        found = findings_for("cache001_dynamic.py", "CACHE001",
                             module="repro.faults.fixture")
        assert [f.line for f in found] == [7, 15]

    def test_rule_covers_trace_module(self):
        # Traces ride the cached report path too (write_run_artifacts
        # serializes them), so repro.obs.trace gets the same scrutiny.
        found = findings_for("cache001_dynamic.py", "CACHE001",
                             module="repro.obs.trace")
        assert [f.line for f in found] == [7, 15]

    def test_rule_covers_simcore_package(self):
        # Every exhibit's cache key is a function of the simulation
        # kernel, so the agenda engines get the same scrutiny.
        found = findings_for("cache001_dynamic.py", "CACHE001",
                             module="repro.simcore.agenda")
        assert [f.line for f in found] == [7, 15]


class TestFleetLintCoverage:
    """The fluid tier is state-layer code: full determinism scrutiny."""

    def test_wall_clock_fires_in_fleet(self):
        found = findings_for("fleet_violations.py", "DET001",
                             module="repro.fleet.fixture")
        assert [f.line for f in found] == [18]

    def test_unseeded_rng_fires_in_fleet(self):
        found = findings_for("fleet_violations.py", "DET002",
                             module="repro.fleet.fixture")
        assert [f.line for f in found] == [22]

    def test_dynamic_import_fires_in_fleet(self):
        # fleet modules feed the fleet_* exhibits' cache keys, so
        # CACHE001's package list includes them.
        found = findings_for("fleet_violations.py", "CACHE001",
                             module="repro.fleet.fixture")
        assert [f.line for f in found] == [9]

    def test_fleet_package_in_src_is_clean(self):
        fleet_dir = os.path.join(SRC_REPRO, "fleet")
        files = [os.path.join(fleet_dir, name)
                 for name in sorted(os.listdir(fleet_dir))
                 if name.endswith(".py")]
        assert len(files) >= 8
        assert lint_files(files) == []


class TestResilienceLintCoverage:
    """Installed policies steer every protected exhibit's output, so
    ``repro.resilience`` gets the cached-path determinism scrutiny."""

    def test_dynamic_import_fires_in_resilience(self):
        found = findings_for("resilience_violations.py", "CACHE001",
                             module="repro.resilience.fixture")
        assert [f.line for f in found] == [10]

    def test_resilience_package_in_src_is_clean(self):
        resilience_dir = os.path.join(SRC_REPRO, "resilience")
        files = [os.path.join(resilience_dir, name)
                 for name in sorted(os.listdir(resilience_dir))
                 if name.endswith(".py")]
        assert len(files) >= 7
        assert lint_files(files) == []


class TestSlab001SlabRecycle:
    def test_positive_lines(self):
        found = findings_for("slab001_stale_callbacks.py", "SLAB001",
                             module="repro.simcore.fake")
        assert [f.line for f in found] == [11, 16]
        assert all("callbacks" in f.message for f in found)

    def test_module_outside_simcore_is_exempt(self):
        found = findings_for(
            "slab001_stale_callbacks.py", "SLAB001",
            module="tests.lint_fixtures.slab001_stale_callbacks")
        assert found == []

    def test_sim_module_in_src_is_clean(self):
        # Both recycle sites in the simulator reattach a cleared
        # callbacks list before the slab append.
        sim = os.path.join(SRC_REPRO, "simcore", "sim.py")
        found = [f for f in lint_files([sim]) if f.rule == "SLAB001"]
        assert found == []

    def test_agenda_module_is_wallclock_denylisted(self):
        # The agenda engines order the whole simulation; DET001 pins
        # them on its denylist so they stay wall-clock free.
        agenda = os.path.join(SRC_REPRO, "simcore", "agenda.py")
        found = [f for f in lint_files([agenda]) if f.rule == "DET001"]
        assert found == []
        source_module = ModuleSource(fixture("det001_wallclock.py"),
                                     module="repro.simcore.agenda")
        rule = get_rule("DET001")
        flagged = [f for f in rule.check(source_module, ProjectIndex())
                   if not source_module.is_suppressed(f.line, f.rule)]
        assert [f.line for f in flagged] == [9, 13, 17]


class TestSuppressionAndSelection:
    def test_same_line_and_line_above_suppression(self, tmp_path):
        target = tmp_path / "sup.py"
        target.write_text(
            "import time\n"
            "a = time.time()  # simlint: ignore[DET001] reason\n"
            "# simlint: ignore[DET001] reason\n"
            "b = time.time()\n"
            "c = time.time()\n")
        found = lint_files([str(target)], rules=[get_rule("DET001")])
        assert [f.line for f in found] == [5]

    def test_bare_ignore_suppresses_every_rule(self, tmp_path):
        target = tmp_path / "bare.py"
        target.write_text("import time\n"
                          "a = time.time()  # simlint: ignore\n")
        assert lint_files([str(target)]) == []

    def test_skip_file_pragma(self, tmp_path):
        target = tmp_path / "skipped.py"
        target.write_text("# simlint: skip-file\n"
                          "import time\n"
                          "a = time.time()\n")
        assert lint_files([str(target)]) == []

    def test_select_and_ignore(self):
        only_det001 = select_rules(select=["DET001"])
        assert [r.id for r in only_det001] == ["DET001"]
        without = select_rules(ignore=["DET003"])
        assert "DET003" not in [r.id for r in without]
        with pytest.raises(KeyError):
            select_rules(select=["NOPE999"])

    def test_syntax_error_becomes_parse_finding(self, tmp_path):
        target = tmp_path / "broken.py"
        target.write_text("def broken(:\n")
        found = lint_files([str(target)])
        assert [f.rule for f in found] == ["PARSE"]


class TestRunnerAndBaseline:
    def test_walk_excludes_fixtures_but_explicit_file_lints(self):
        walked = collect_files([HERE])
        assert not any("lint_fixtures" in path for path in walked)
        explicit = collect_files([fixture("det001_wallclock.py")])
        assert len(explicit) == 1

    def test_baseline_roundtrip(self, tmp_path):
        found = lint_files([fixture("det001_wallclock.py")],
                           rules=[get_rule("DET001")])
        assert found
        baseline_path = tmp_path / "baseline.json"
        write_baseline(str(baseline_path), found)
        keys = load_baseline(str(baseline_path))
        new, old = split_baselined(found, keys)
        assert new == [] and len(old) == len(found)

    def test_src_repro_is_clean(self):
        """The tentpole gate: the shipped tree has zero findings."""
        assert lint_paths([SRC_REPRO]) == []

    def test_tests_are_clean(self):
        assert lint_paths([HERE]) == []


class TestCLI:
    def test_list_rules_exits_zero(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.id in out

    def test_fixture_violation_exits_nonzero(self, capsys):
        code = lint_main([fixture("det001_wallclock.py"),
                          "--select", "DET001"])
        assert code == 1
        assert "DET001" in capsys.readouterr().out

    def test_json_output_roundtrips(self, capsys):
        code = lint_main([fixture("det002_random.py"), "--format", "json"])
        assert code == 1
        report = json.loads(capsys.readouterr().out)
        assert report["tool"] == "simlint"
        assert report["summary"]["findings"] == len(report["findings"])
        assert report["summary"]["by_rule"].get("DET002") == 4

    def test_output_file_written(self, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        lint_main([fixture("det002_random.py"), "--format", "json",
                   "--output", str(out_path)])
        capsys.readouterr()
        assert json.loads(out_path.read_text())["tool"] == "simlint"

    def test_baseline_flag_gates_exit_code(self, tmp_path, capsys):
        baseline_path = tmp_path / "baseline.json"
        target = fixture("det001_wallclock.py")
        assert lint_main([target, "--select", "DET001",
                          "--write-baseline", str(baseline_path)]) == 0
        capsys.readouterr()
        assert lint_main([target, "--select", "DET001",
                          "--baseline", str(baseline_path)]) == 0
        assert "baselined" in capsys.readouterr().out

    def test_unknown_rule_exits_two(self, capsys):
        assert lint_main(["--select", "NOPE999", FIXTURES]) == 2

    def test_missing_path_exits_two(self, capsys):
        assert lint_main(["does/not/exist.txt"]) == 2

    def test_clean_tree_exits_zero(self, capsys):
        assert lint_main([SRC_REPRO]) == 0


class TestAstutil:
    def test_module_name_for_path(self):
        assert module_name_for_path(
            os.path.join(SRC_REPRO, "mesh", "ambient.py")) == \
            "repro.mesh.ambient"
        assert module_name_for_path(
            os.path.join(SRC_REPRO, "obs", "__init__.py")) == "repro.obs"

    def test_alias_resolution(self):
        import ast as ast_mod
        tree = ast_mod.parse(
            "import time\n"
            "from datetime import datetime as dt\n"
            "from time import perf_counter\n")
        aliases = collect_aliases(tree)
        assert aliases["dt"] == "datetime.datetime"
        assert aliases["perf_counter"] == "time.perf_counter"
        call = ast_mod.parse("dt.now()").body[0].value
        assert resolve_call_name(call.func, aliases) == \
            "datetime.datetime.now"

    def test_dynamic_import_lines(self):
        import ast as ast_mod
        tree = ast_mod.parse("import importlib\n"
                             "x = 1\n"
                             "mod = __import__('os')\n")
        assert dynamic_import_lines(tree) == [1, 3]


class TestCacheHardening:
    def test_real_exhibits_have_no_dynamic_imports(self):
        assert runtime_cache.closure_dynamic_imports(
            "repro.experiments.cloud_ops") == {}

    def test_closure_dynamic_imports_detects(self, monkeypatch):
        files = {"repro": "a", "repro.x": "b", "repro.y": "c"}
        graph = {"repro": set(), "repro.x": {"repro.y"}, "repro.y": set()}
        dynamic = {"repro.y": [10]}
        monkeypatch.setattr(runtime_cache, "_graph_cache",
                            (files, graph, dynamic))
        assert runtime_cache.closure_dynamic_imports("repro.x") == {
            "repro.y": [10]}
        assert runtime_cache.closure_dynamic_imports("repro") == {}

    def test_cached_run_skips_unsound_cache(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            runtime_cache, "closure_dynamic_imports",
            lambda module: {"repro.experiments.fake": [3]})
        cache_dir = tmp_path / "cache"
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result, hit = runtime_cache.cached_run(
                "fig17", cache_dir=str(cache_dir))
        assert not hit and result is not None
        assert any("cache disabled" in str(w.message) for w in caught)
        assert not cache_dir.exists()  # nothing read or written

    def test_cached_run_sound_closure_still_caches(self, tmp_path):
        _first, hit1 = runtime_cache.cached_run(
            "fig17", cache_dir=str(tmp_path))
        _second, hit2 = runtime_cache.cached_run(
            "fig17", cache_dir=str(tmp_path))
        assert (hit1, hit2) == (False, True)
