"""Tests for the Istio/Ambient/NoMesh dataplanes on the §5.1 testbed."""

import pytest

from repro.experiments.testbed import build_testbed
from repro.k8s import ResourceRequest
from repro.mesh import (
    AuthorizationPolicy,
    ConnectionPool,
    HttpRequest,
    RouteRule,
    RouteTable,
    HttpMatch,
    WeightedDestination,
)
from repro.mesh.base import MeshError


def run_one_request(run, service="svc1", request=None):
    mesh, sim = run.mesh, run.sim

    def scenario():
        connection = yield sim.process(
            mesh.open_connection(run.client_pod, service))
        response = yield sim.process(
            mesh.request(connection, request or HttpRequest()))
        return connection, response

    process = sim.process(scenario())
    sim.run()
    return process.value


class TestIstioDataplane:
    def test_request_succeeds(self):
        run = build_testbed("istio")
        _conn, response = run_one_request(run)
        assert response.ok
        assert response.latency_s > 0

    def test_sidecars_injected_into_every_pod(self):
        run = build_testbed("istio")
        assert all(pod.sidecar is not None
                   for pod in run.cluster.pods.values())
        assert run.mesh.sidecars_injected == 30

    def test_sidecar_consumes_user_resources(self):
        """The intrusion problem: injected sidecars eat cluster CPU/mem."""
        run = build_testbed("istio")
        usage = run.cluster.resource_usage()
        assert usage["sidecar_cpu_millicores"] > 0
        assert usage["sidecar_memory_mb"] > 0

    def test_request_consumes_user_cpu(self):
        run = build_testbed("istio")
        run_one_request(run)
        assert run.mesh.user_cpu_seconds() > 0

    def test_proxy_count_is_pod_count(self):
        run = build_testbed("istio")
        assert run.mesh.proxy_count() == 30

    def test_authorization_denies(self):
        run = build_testbed("istio")
        run.mesh.authorization.add(AuthorizationPolicy(
            service="svc1", allowed_identities=("nobody",)))
        _conn, response = run_one_request(run)
        assert response.status == 403

    def test_dead_server_returns_503(self):
        run = build_testbed("istio")

        def scenario():
            connection = yield run.sim.process(
                run.mesh.open_connection(run.client_pod, "svc1"))
            run.cluster.delete_pod(connection.server_pod)
            response = yield run.sim.process(
                run.mesh.request(connection, HttpRequest()))
            return response

        process = run.sim.process(scenario())
        run.sim.run()
        assert process.value.status == 503

    def test_route_table_steers_to_subset(self):
        run = build_testbed("istio")
        run.cluster.create_deployment(
            "svc1-canary", replicas=2,
            labels={"app": "svc1", "version": "canary"})
        table = RouteTable("svc1", [RouteRule(
            HttpMatch(), destinations=(WeightedDestination("canary"),))])
        run.mesh.set_route_table(table)
        pod = run.mesh.pick_endpoint("svc1", HttpRequest())
        assert pod.labels.get("version") == "canary"

    def test_unknown_service_raises(self):
        run = build_testbed("istio")
        with pytest.raises(MeshError):
            run.mesh.pick_endpoint("ghost")

    def test_mtls_session_established(self):
        run = build_testbed("istio")
        connection, _resp = run_one_request(run)
        assert connection.session is not None

    def test_mtls_disabled_skips_session(self):
        run = build_testbed("istio", mesh_kwargs={"mtls_enabled": False})
        connection, response = run_one_request(run)
        assert connection.session is None
        assert response.ok


class TestAmbientDataplane:
    def test_request_succeeds(self):
        run = build_testbed("ambient")
        _conn, response = run_one_request(run)
        assert response.ok

    def test_proxy_count_is_nodes_plus_services(self):
        """O(node + service), the paper's Ambient accounting."""
        run = build_testbed("ambient")
        assert run.mesh.proxy_count() == 2 + 3

    def test_no_sidecars_injected(self):
        run = build_testbed("ambient")
        assert all(pod.sidecar is None for pod in run.cluster.pods.values())

    def test_l4_only_service_skips_waypoint(self):
        run = build_testbed("ambient")
        run.mesh.set_l7_enabled("svc1", False)
        run_one_request(run)
        assert run.mesh.waypoint_requests.get("svc1", 0) == 0

    def test_l7_service_uses_waypoint(self):
        run = build_testbed("ambient")
        run_one_request(run)
        assert run.mesh.waypoint_requests.get("svc1", 0) == 1

    def test_l4_only_is_faster(self):
        l7 = build_testbed("ambient")
        _c, with_l7 = run_one_request(l7)
        l4 = build_testbed("ambient")
        l4.mesh.set_l7_enabled("svc1", False)
        _c, without_l7 = run_one_request(l4)
        assert without_l7.latency_s < with_l7.latency_s

    def test_new_service_gets_l7_by_default(self):
        run = build_testbed("ambient")
        run.cluster.create_service("svc-new", selector={"app": "x"})
        assert run.mesh.l7_enabled("svc-new")

    def test_user_cpu_below_istio(self):
        istio = build_testbed("istio")
        run_one_request(istio)
        ambient = build_testbed("ambient")
        run_one_request(ambient)
        assert ambient.mesh.user_cpu_seconds() < istio.mesh.user_cpu_seconds()


class TestNoMeshBaseline:
    def test_request_succeeds(self):
        run = build_testbed("no-mesh")
        _conn, response = run_one_request(run)
        assert response.ok

    def test_no_user_cpu(self):
        run = build_testbed("no-mesh")
        run_one_request(run)
        assert run.mesh.user_cpu_seconds() == 0.0

    def test_fastest_architecture(self):
        baseline = build_testbed("no-mesh")
        _c, base_resp = run_one_request(baseline)
        istio = build_testbed("istio")
        _c, istio_resp = run_one_request(istio)
        assert base_resp.latency_s < istio_resp.latency_s


class TestConnectionPool:
    def test_hit_and_miss_accounting(self):
        pool = ConnectionPool()
        assert pool.get("c", "svc") is None
        assert pool.misses == 1
        from repro.mesh import Connection
        pool.put(Connection("c", "svc", "pod-1", established_at=0.0))
        assert pool.get("c", "svc") is not None
        assert pool.hits == 1

    def test_invalidate_server_drops_pinned(self):
        from repro.mesh import Connection
        pool = ConnectionPool()
        pool.put(Connection("a", "svc", "pod-1", 0.0))
        pool.put(Connection("b", "svc", "pod-2", 0.0))
        dropped = pool.invalidate_server("pod-1")
        assert dropped == 1
        assert len(pool) == 1
