"""Tests for the vSwitch service-ID mapping, AZ-aware DNS, and links."""

import random

import pytest

from repro.netsim import (
    AzAwareResolver,
    FiveTuple,
    Link,
    Packet,
    ResolutionError,
    SERVICE_ID_META_KEY,
    ServiceIdMapper,
    VSwitch,
    VxlanHeader,
)
from repro.simcore import Simulator


def encapsulated_packet(vni=100, dst="10.0.0.5"):
    flow = FiveTuple("10.0.0.1", 40_000, dst, 80)
    return Packet(flow, size_bytes=200).encapsulate(
        VxlanHeader(vni, "9.9.9.1", "9.9.9.2"))


class TestServiceIdMapper:
    def test_register_assigns_unique_ids(self):
        mapper = ServiceIdMapper()
        a = mapper.register(100, "10.0.0.5")
        b = mapper.register(101, "10.0.0.5")
        assert a != b

    def test_register_idempotent(self):
        mapper = ServiceIdMapper()
        assert mapper.register(100, "10.0.0.5") == mapper.register(
            100, "10.0.0.5")

    def test_overlapping_addresses_disambiguated_by_vni(self):
        """Two tenants, identical inner address → distinct service IDs."""
        mapper = ServiceIdMapper()
        tenant1 = mapper.register(100, "10.0.0.5", "t1/svc")
        tenant2 = mapper.register(200, "10.0.0.5", "t2/svc")
        assert tenant1 != tenant2
        assert mapper.name_of(tenant1) == "t1/svc"

    def test_lookup_unknown_is_none(self):
        assert ServiceIdMapper().lookup(1, "1.1.1.1") is None


class TestVSwitch:
    def test_strips_vxlan_and_stamps_service_id(self):
        mapper = ServiceIdMapper()
        service_id = mapper.register(100, "10.0.0.5")
        vswitch = VSwitch(mapper)
        inner = vswitch.deliver_to_vm(encapsulated_packet())
        assert inner.vxlan is None
        assert inner.meta[SERVICE_ID_META_KEY] == service_id

    def test_unknown_service_dropped(self):
        vswitch = VSwitch(ServiceIdMapper())
        assert vswitch.deliver_to_vm(encapsulated_packet()) is None
        assert vswitch.dropped_unknown_service == 1

    def test_plain_packet_passes_through(self):
        vswitch = VSwitch(ServiceIdMapper())
        packet = Packet(FiveTuple("1.1.1.1", 1, "2.2.2.2", 2), 10)
        assert vswitch.deliver_to_vm(packet) is packet


class TestAzAwareResolver:
    def _resolver(self):
        resolver = AzAwareResolver(rng=random.Random(0))
        resolver.register("svc", "vip-az1", "az1")
        resolver.register("svc", "vip-az2", "az2")
        return resolver

    def test_prefers_local_az(self):
        resolver = self._resolver()
        for _ in range(20):
            assert resolver.resolve("svc", "az1").address == "vip-az1"

    def test_falls_back_cross_az_when_local_down(self):
        """§4.2: only if all local-AZ backends are unavailable do
        requests resolve to other AZs."""
        resolver = self._resolver()
        resolver.set_health("svc", "vip-az1", False)
        assert resolver.resolve("svc", "az1").address == "vip-az2"

    def test_all_down_raises(self):
        resolver = self._resolver()
        resolver.set_health("svc", "vip-az1", False)
        resolver.set_health("svc", "vip-az2", False)
        with pytest.raises(ResolutionError):
            resolver.resolve("svc", "az1")

    def test_recovery_restores_local_preference(self):
        resolver = self._resolver()
        resolver.set_health("svc", "vip-az1", False)
        resolver.set_health("svc", "vip-az1", True)
        assert resolver.resolve("svc", "az1").address == "vip-az1"

    def test_unknown_health_target_raises(self):
        with pytest.raises(KeyError):
            self._resolver().set_health("svc", "nope", False)

    def test_deregister(self):
        resolver = self._resolver()
        resolver.deregister("svc", "vip-az1")
        assert resolver.resolve("svc", "az1").address == "vip-az2"

    def test_no_local_endpoint_uses_remote(self):
        resolver = self._resolver()
        assert resolver.resolve("svc", "az3").address in (
            "vip-az1", "vip-az2")


class TestLink:
    def test_serialization_delay(self):
        sim = Simulator(0)
        link = Link(sim, bandwidth_bps=8000.0)  # 1000 bytes/s
        assert link.serialization_delay(500) == pytest.approx(0.5)

    def test_transfer_takes_time(self):
        sim = Simulator(0)
        link = Link(sim, bandwidth_bps=8000.0, latency_s=0.1)
        sim.process(link.transfer(1000))
        sim.run()
        assert sim.now == pytest.approx(1.1)
        assert link.bytes_carried == 1000

    def test_concurrent_transfers_serialize(self):
        sim = Simulator(0)
        link = Link(sim, bandwidth_bps=8000.0)
        sim.process(link.transfer(1000))
        sim.process(link.transfer(1000))
        sim.run()
        assert sim.now == pytest.approx(2.0)

    def test_invalid_parameters(self):
        sim = Simulator(0)
        with pytest.raises(ValueError):
            Link(sim, bandwidth_bps=0.0)
        with pytest.raises(ValueError):
            Link(sim, bandwidth_bps=1.0, latency_s=-1.0)

    def test_negative_transfer_rejected(self):
        sim = Simulator(0)
        link = Link(sim, bandwidth_bps=1e6)
        with pytest.raises(ValueError):
            sim.process(link.transfer(-5))
            sim.run()
