"""Tests for ``repro.resilience``: the five policy mechanisms, their
chaos coverage (every policy under at least one armed FaultPlan with
zero invariant violations), the new auditor checks, and exhibit
determinism."""

import json
import pickle

import pytest

from repro.core import GatewayConfig, MeshGateway
from repro.core.replica import ReplicaConfig
from repro.experiments.resilience import (
    _resilience_case,
    fig8_resilience,
    resilience_plan,
)
from repro.experiments.testbed import build_testbed
from repro.faults import Fault, FaultEngine, FaultPlan, InvariantAuditor, \
    InvariantViolation
from repro.mesh import HttpRequest
from repro.resilience import (
    BreakerConfig,
    BreakerIllegalTransition,
    Bulkhead,
    BulkheadConfig,
    CircuitBreaker,
    DegradationConfig,
    DegradationController,
    LevelerConfig,
    LoadLeveler,
    ResilienceConfig,
    ResiliencePolicies,
    RetryConfig,
    RetryPolicy,
    contained_cascade_depth,
    retry_storm_arrivals,
)
from repro.runtime import use_executor
from repro.runtime.sweep import sweep_map
from repro.simcore import Simulator

#: The testbed cluster's tenant (every svcN belongs to it).
TESTBED_TENANT = "tenant1"


# ---------------------------------------------------------------------------
# unit: circuit breaker
# ---------------------------------------------------------------------------
class TestCircuitBreaker:
    def test_starts_closed_and_allows(self):
        breaker = CircuitBreaker()
        assert breaker.state == "closed"
        assert breaker.allow(0.0)
        assert breaker.transitions == []

    def test_volume_threshold_blocks_early_trip(self):
        breaker = CircuitBreaker(BreakerConfig(min_requests=5))
        breaker.record_failure(1.0, count=4)
        assert breaker.state == "closed"
        breaker.record_failure(1.0)
        assert breaker.state == "open"
        assert breaker.times_opened == 1

    def test_error_rate_threshold(self):
        breaker = CircuitBreaker(BreakerConfig(
            min_requests=4, failure_threshold=0.5))
        breaker.record_success(1.0, count=3)
        breaker.record_failure(1.0, count=2)  # 2/5 = 0.4 < 0.5
        assert breaker.state == "closed"
        breaker.record_failure(1.0)  # 3/6 = 0.5
        assert breaker.state == "open"

    def test_open_fast_fails_until_cooldown(self):
        breaker = CircuitBreaker(BreakerConfig(
            min_requests=1, open_duration_s=10.0))
        breaker.record_failure(0.0)
        assert not breaker.allow(5.0)
        assert breaker.fast_failures == 1
        assert breaker.allow(10.0)  # cooldown expired: half-open probe
        assert breaker.state == "half_open"

    def test_window_prunes_stale_outcomes(self):
        breaker = CircuitBreaker(BreakerConfig(
            window_s=30.0, min_requests=3))
        breaker.record_failure(0.0, count=2)
        breaker.record_failure(100.0)  # the two at t=0 have aged out
        assert breaker.state == "closed"
        assert breaker.error_rate() == 1.0  # 1 failure of 1 in window

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker(BreakerConfig(
            min_requests=1, open_duration_s=5.0))
        breaker.record_failure(0.0)
        assert breaker.allow(5.0)
        breaker.record_failure(6.0)
        assert breaker.state == "open"
        assert breaker.times_opened == 2
        breaker.audit_transitions()  # closed->open->half_open->open

    def test_half_open_closes_after_consecutive_successes(self):
        breaker = CircuitBreaker(BreakerConfig(
            min_requests=1, open_duration_s=5.0, close_after=2))
        breaker.record_failure(0.0)
        assert breaker.allow(5.0)
        breaker.record_success(6.0)
        assert breaker.state == "half_open"
        breaker.record_success(7.0)
        assert breaker.state == "closed"
        assert breaker.error_rate() == 0.0  # window cleared on close
        breaker.audit_transitions()

    def test_audit_rejects_illegal_edge(self):
        breaker = CircuitBreaker(name="forged")
        breaker.transitions.append((1.0, "open", "closed", "forged"))
        with pytest.raises(BreakerIllegalTransition, match="illegal"):
            breaker.audit_transitions()

    def test_audit_rejects_time_regression(self):
        breaker = CircuitBreaker(BreakerConfig(min_requests=1))
        breaker.record_failure(10.0)
        assert breaker.allow(40.0)
        breaker.transitions.append((5.0, "half_open", "open", "rewound"))
        with pytest.raises(BreakerIllegalTransition, match="backwards"):
            breaker.audit_transitions()

    @pytest.mark.parametrize("kwargs", [
        {"window_s": 0.0},
        {"min_requests": 0},
        {"failure_threshold": 0.0},
        {"failure_threshold": 1.5},
        {"open_duration_s": -1.0},
        {"close_after": 0},
    ])
    def test_config_validation(self, kwargs):
        with pytest.raises(ValueError):
            BreakerConfig(**kwargs)

    def test_contained_cascade_depth(self):
        config = BreakerConfig(min_requests=4, failure_threshold=0.5)
        assert contained_cascade_depth(4, 3, config) == 2
        # Volume threshold never reached: the cascade is uncontained.
        loose = BreakerConfig(min_requests=100)
        assert contained_cascade_depth(4, 3, loose) == 4
        assert contained_cascade_depth(0, 3, config) == 0
        with pytest.raises(ValueError):
            contained_cascade_depth(-1, 3, config)
        with pytest.raises(ValueError):
            contained_cascade_depth(4, 0, config)


# ---------------------------------------------------------------------------
# unit: retry policy
# ---------------------------------------------------------------------------
class TestRetryPolicy:
    def test_jitter_free_schedule_is_exact(self):
        policy = RetryPolicy(RetryConfig(
            max_attempts=4, base_backoff_s=0.5, multiplier=2.0,
            max_backoff_s=1.5, jitter=0.0))
        assert policy.backoff_s(1) == pytest.approx(0.5)
        assert policy.backoff_s(2) == pytest.approx(1.0)
        assert policy.backoff_s(3) == pytest.approx(1.5)  # capped

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(RetryConfig(jitter=1.0), seed=7)
        for attempt in (1, 2):
            delay = policy.backoff_s(attempt)
            assert 0.0 <= delay <= 0.5 * 2.0 ** (attempt - 1)

    def test_same_seed_same_schedule(self):
        config = RetryConfig(jitter=1.0)
        first = RetryPolicy(config, seed=11)
        second = RetryPolicy(config, seed=11)
        assert [first.backoff_s(1) for _ in range(5)] \
            == [second.backoff_s(1) for _ in range(5)]
        other = RetryPolicy(config, seed=12)
        assert first.backoff_s(1) != other.backoff_s(1)

    def test_jitter_zero_still_consumes_a_draw(self):
        """Draw alignment: toggling jitter must not shift the stream."""
        plain = RetryPolicy(RetryConfig(jitter=0.0), seed=3)
        jittered = RetryPolicy(RetryConfig(jitter=1.0), seed=3)
        plain.backoff_s(1)
        jittered.backoff_s(1)
        # Both consumed exactly one draw: their next draws agree.
        assert plain._stream.random() == jittered._stream.random()

    def test_attempt_budget(self):
        policy = RetryPolicy(RetryConfig(max_attempts=3))
        assert policy.max_retries == 2
        assert policy.should_retry(1)
        assert policy.should_retry(2)
        assert not policy.should_retry(3)
        with pytest.raises(ValueError):
            policy.should_retry(0)
        with pytest.raises(ValueError):
            policy.backoff_s(3)

    def test_amplification_accounting(self):
        policy = RetryPolicy(RetryConfig(max_attempts=3))
        for _ in range(4):
            policy.note_first_attempt()
        policy.note_retry()
        assert policy.first_attempts == 4
        assert policy.retries == 1
        assert policy.amplification_bound() == 8

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"base_backoff_s": 0.0},
        {"multiplier": 0.5},
        {"max_backoff_s": 0.1},
        {"jitter": 1.1},
    ])
    def test_config_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryConfig(**kwargs)

    def test_storm_synchronized_is_one_spike(self):
        config = RetryConfig(base_backoff_s=10.0, jitter=0.0)
        buckets = retry_storm_arrivals(500, config, seed=5)
        assert buckets[10] == 500
        assert sum(buckets) == 500

    def test_storm_jitter_spreads_population(self):
        config = RetryConfig(base_backoff_s=10.0, jitter=1.0)
        buckets = retry_storm_arrivals(500, config, seed=5)
        assert sum(buckets) == 500
        assert max(buckets) < 500
        assert sum(1 for count in buckets if count) > 1

    def test_storm_edge_cases(self):
        assert retry_storm_arrivals(0, RetryConfig()) == []
        with pytest.raises(ValueError):
            retry_storm_arrivals(-1, RetryConfig())
        with pytest.raises(ValueError):
            retry_storm_arrivals(1, RetryConfig(), bucket_s=0.0)


# ---------------------------------------------------------------------------
# unit: bulkhead, leveler, degradation
# ---------------------------------------------------------------------------
class TestBulkhead:
    def test_cap_per_compartment(self):
        bulkhead = Bulkhead(BulkheadConfig(max_concurrent_per_backend=2))
        assert bulkhead.try_acquire("t1", "b1")
        assert bulkhead.try_acquire("t1", "b1")
        assert not bulkhead.try_acquire("t1", "b1")
        # A full compartment does not starve neighbors.
        assert bulkhead.try_acquire("t2", "b1")
        assert bulkhead.try_acquire("t1", "b2")
        assert bulkhead.admitted == 4
        assert bulkhead.rejected == 1

    def test_release_frees_a_slot(self):
        bulkhead = Bulkhead(BulkheadConfig(max_concurrent_per_backend=1))
        assert bulkhead.try_acquire("t", "b")
        assert not bulkhead.try_acquire("t", "b")
        bulkhead.release("t", "b")
        assert bulkhead.inflight("t", "b") == 0
        assert bulkhead.try_acquire("t", "b")

    def test_release_without_acquire_raises(self):
        with pytest.raises(ValueError):
            Bulkhead().release("t", "b")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BulkheadConfig(max_concurrent_per_backend=0)


class TestLoadLeveler:
    def test_idle_queue_passes_through(self):
        leveler = LoadLeveler(LevelerConfig(drain_rate_per_s=2.0))
        assert leveler.reserve(5.0) == 0.0
        assert leveler.delayed == 0

    def test_burst_is_smoothed_then_shed(self):
        leveler = LoadLeveler(LevelerConfig(drain_rate_per_s=2.0,
                                            max_queue=1))
        assert leveler.reserve(0.0) == pytest.approx(0.0)
        assert leveler.reserve(0.0) == pytest.approx(0.5)
        assert leveler.reserve(0.0) is None  # backlog would exceed 1
        assert (leveler.admitted, leveler.delayed, leveler.shed) == (2, 1, 1)

    def test_queue_drains_with_virtual_time(self):
        leveler = LoadLeveler(LevelerConfig(drain_rate_per_s=2.0,
                                            max_queue=1))
        leveler.reserve(0.0)
        leveler.reserve(0.0)
        assert leveler.queue_depth(0.0) == 2  # undrained reservations
        assert leveler.reserve(10.0) == 0.0  # backlog long gone
        assert leveler.queue_depth(10.5) == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LevelerConfig(drain_rate_per_s=0.0)
        with pytest.raises(ValueError):
            LevelerConfig(max_queue=-1)


class TestDegradation:
    def _controller(self, **kwargs):
        defaults = dict(shed_water_level=0.9, restore_water_level=0.7,
                        tenant_priorities={"free": 0, "paid": 1},
                        max_shed_priority=1, check_interval_s=1.0)
        defaults.update(kwargs)
        return DegradationController(DegradationConfig(**defaults))

    def test_escalates_and_sheds_lowest_priority_first(self):
        controller = self._controller()
        controller.update(0.0, 0.95)
        assert controller.cutoff == 1
        assert not controller.allows("free")
        assert controller.allows("paid")
        assert controller.requests_shed == 1
        assert controller.shed_tenants() == {"free": 0}

    def test_hysteresis_band_holds_state(self):
        controller = self._controller()
        controller.update(0.0, 0.95)
        controller.update(2.0, 0.8)  # between restore and shed levels
        assert controller.cutoff == 1
        controller.update(4.0, 0.6)
        assert controller.cutoff == 0
        assert controller.allows("free")

    def test_updates_are_rate_limited(self):
        controller = self._controller()
        controller.update(0.0, 0.95)
        controller.update(0.5, 0.95)  # inside check_interval_s: ignored
        assert controller.cutoff == 1

    def test_never_sheds_past_max_priority(self):
        controller = self._controller()
        for second in range(5):
            controller.update(float(second), 1.0)
        assert controller.cutoff == 2  # max_shed_priority + 1
        assert controller.allows("vip-not-in-map") is False  # default 0
        assert controller.shedding
        assert controller.escalations == [(0.0, 1), (1.0, 2)]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DegradationConfig(shed_water_level=0.0)
        with pytest.raises(ValueError):
            DegradationConfig(restore_water_level=0.95)
        with pytest.raises(ValueError):
            DegradationConfig(check_interval_s=0.0)


# ---------------------------------------------------------------------------
# unit: the composed policy set
# ---------------------------------------------------------------------------
class TestResiliencePolicies:
    def test_everything_off_is_pass_through(self):
        policies = ResiliencePolicies(ResilienceConfig())
        assert policies.breaker_for(1) is None
        assert policies.allow_dispatch(1, 0.0)
        assert policies.acquire_slot("t", "b")
        assert policies.leveler_reserve(0.0) == 0.0
        assert policies.tenant_allowed("t")
        policies.degradation_tick(0.0)  # no source installed: no-op

    def test_breakers_are_lazy_and_per_service(self):
        policies = ResiliencePolicies(ResilienceConfig(
            breaker=BreakerConfig(min_requests=1)))
        assert policies.breakers == {}
        policies.record_dispatch(7, 0.0, ok=False)
        policies.record_dispatch(9, 0.0, ok=True)
        assert sorted(policies.breakers) == [7, 9]
        assert policies.breaker_state(7) == "open"
        assert policies.breaker_state(9) == "closed"
        assert policies.breaker_state(999) == "closed"  # never dispatched

    def test_stats_snapshot_is_picklable(self):
        policies = ResiliencePolicies(ResilienceConfig(
            breaker=BreakerConfig(min_requests=1),
            retry=RetryConfig(),
            bulkhead=BulkheadConfig(),
            leveler=LevelerConfig(),
            degradation=DegradationConfig()))
        policies.record_dispatch(1, 0.0, ok=False)
        policies.acquire_slot("t", "b")
        stats = pickle.loads(pickle.dumps(policies.stats()))
        assert stats["breakers"][1]["state"] == "open"
        assert stats["bulkhead"]["inflight"] == 1
        assert stats["retry"]["retries"] == 0

    def test_degradation_pulls_from_real_water_levels(self):
        """install_resilience wires the gateway's fluid water levels."""
        sim = Simulator(3)
        config = GatewayConfig(
            replicas_per_backend=2, backends_per_service_per_az=2,
            azs_per_service=2,
            replica=ReplicaConfig(cores=8, request_cost_s=100e-6,
                                  request_cost_sigma=0.0))
        gateway = MeshGateway(sim, config)
        gateway.deploy_initial(["az1", "az2"], 2)
        tenant = gateway.registry.add_tenant("t1")
        service = gateway.registry.add_service(tenant, "web", "10.0.0.1")
        gateway.register_service(service)
        policies = ResiliencePolicies(ResilienceConfig(
            degradation=DegradationConfig(shed_water_level=0.9,
                                          restore_water_level=0.7)))
        gateway.install_resilience(policies)
        # Per-backend capacity 2 * 8 / 100e-6 = 160k rps; 600k over 4
        # backends puts each at water 0.9375 >= the shed level.
        gateway.set_service_load(service.service_id, 600_000.0)
        policies.degradation_tick(1.0)
        assert not policies.tenant_allowed("t1")
        gateway.set_service_load(service.service_id, 0.0)
        policies.degradation_tick(2.5)
        assert policies.tenant_allowed("t1")


# ---------------------------------------------------------------------------
# chaos coverage: every policy under an armed FaultPlan, zero violations
# ---------------------------------------------------------------------------
def _protected_testbed(config, seed=7):
    run = build_testbed("canal", seed=seed)
    policies = ResiliencePolicies(config, seed=seed, name="testbed")
    run.mesh.gateway.install_resilience(policies)
    return run, policies


def _request_at(run, at, responses, service="svc1"):
    mesh, sim = run.mesh, run.sim

    def scenario():
        if at > sim.now:
            yield sim.timeout(at - sim.now)
        connection = yield sim.process(
            mesh.open_connection(run.client_pod, service))
        response = yield sim.process(
            mesh.request(connection, HttpRequest()))
        responses[at] = response

    run.sim.process(scenario())


class TestChaosUnderPolicy:
    """Each mechanism rides through a real armed FaultPlan and the
    invariant auditor (including the two new resilience checks) stays
    clean."""

    def test_breaker_full_lifecycle_under_backend_crash(self):
        run, policies = _protected_testbed(ResilienceConfig(
            breaker=BreakerConfig(window_s=30.0, min_requests=1,
                                  failure_threshold=0.5,
                                  open_duration_s=3.0, close_after=1)))
        engine = FaultEngine(run.sim, gateway=run.mesh.gateway)
        engine.arm(FaultPlan.of(Fault(
            kind="backend_crash", at=0.5, target="service:1/backend:0",
            duration_s=5.0)))
        responses = {}
        _request_at(run, 1.0, responses)   # fails: trips the breaker
        _request_at(run, 2.0, responses)   # fast-failed while open
        _request_at(run, 6.0, responses)   # probe after heal: closes
        run.sim.run()
        sid = run.mesh.tenant_service("svc1").service_id
        breaker = policies.breakers[sid]
        assert responses[1.0].status == 503
        assert responses[2.0].status == 503
        assert responses[6.0].ok
        assert breaker.state == "closed"
        assert breaker.times_opened == 1
        assert breaker.fast_failures >= 1
        assert [(f, t) for _t, f, t, _r in breaker.transitions] == [
            ("closed", "open"), ("open", "half_open"),
            ("half_open", "closed")]
        assert engine.auditor.check("final") > 0
        assert engine.auditor.violations == []

    def test_retry_rides_out_a_crash_window(self):
        run, policies = _protected_testbed(ResilienceConfig(
            retry=RetryConfig(max_attempts=3, base_backoff_s=1.0,
                              multiplier=2.0, max_backoff_s=4.0,
                              jitter=0.0)))
        engine = FaultEngine(run.sim, gateway=run.mesh.gateway)
        engine.arm(FaultPlan.of(Fault(
            kind="backend_crash", at=0.5, target="service:1/backend:0",
            duration_s=1.0)))
        responses = {}
        # First attempt at t=1.0 lands in the outage; the 1 s backoff
        # (jitter 0) lands the retry after the t=1.5 recovery.
        _request_at(run, 1.0, responses)
        run.sim.run()
        assert responses[1.0].ok
        assert policies.retry.first_attempts == 1
        assert policies.retry.retries == 1
        assert policies.retry.retries <= policies.retry.amplification_bound()
        assert engine.auditor.check("final") > 0
        assert engine.auditor.violations == []

    def test_retry_budget_exhausts_into_503(self):
        run, policies = _protected_testbed(ResilienceConfig(
            retry=RetryConfig(max_attempts=2, base_backoff_s=0.5,
                              multiplier=2.0, max_backoff_s=4.0,
                              jitter=0.0)))
        engine = FaultEngine(run.sim, gateway=run.mesh.gateway)
        engine.arm(FaultPlan.of(Fault(
            kind="backend_crash", at=0.5, target="service:1/backend:0",
            duration_s=30.0)))
        responses = {}
        _request_at(run, 1.0, responses)
        run.sim.run()
        assert responses[1.0].status == 503
        assert policies.retry.retries == 1  # budget: one retry, then give up
        assert engine.auditor.check("final") > 0
        assert engine.auditor.violations == []

    def test_bulkhead_rejects_when_compartment_full(self):
        run, policies = _protected_testbed(ResilienceConfig(
            bulkhead=BulkheadConfig(max_concurrent_per_backend=1)))
        gateway = run.mesh.gateway
        engine = FaultEngine(run.sim, gateway=gateway)
        engine.arm(FaultPlan.of(Fault(
            kind="replica_crash", at=3.0,
            target="service:1/backend:0/replica:0", duration_s=1.0)))
        sid = run.mesh.tenant_service("svc1").service_id
        backend = gateway.service_backends[sid][0].name
        # Occupy the tenant's single slot for the first request's window.
        assert policies.acquire_slot(TESTBED_TENANT, backend)
        responses = {}
        _request_at(run, 0.0, responses)
        run.sim.run(until=1.0)
        assert responses[0.0].status == 429
        assert policies.bulkhead.rejected == 1
        policies.release_slot(TESTBED_TENANT, backend)
        _request_at(run, 6.0, responses)  # after the replica recovers
        run.sim.run()
        assert responses[6.0].ok
        assert policies.bulkhead.total_inflight() == 0
        assert engine.auditor.check("final") > 0
        assert engine.auditor.violations == []

    def test_leveler_smooths_and_sheds_a_burst(self):
        run, policies = _protected_testbed(ResilienceConfig(
            leveler=LevelerConfig(drain_rate_per_s=2.0, max_queue=1)))
        engine = FaultEngine(run.sim, gateway=run.mesh.gateway)
        engine.arm(FaultPlan.of(Fault(
            kind="backend_crash", at=10.0, target="service:1/backend:0",
            duration_s=2.0)))
        responses = {}
        for index in range(4):
            _request_at(run, 0.001 * index, responses)
        run.sim.run()
        statuses = sorted(r.status for r in responses.values())
        assert statuses == [200, 200, 429, 429]
        assert policies.leveler.admitted == 2
        assert policies.leveler.delayed == 1
        assert policies.leveler.shed == 2
        assert engine.auditor.check("final") > 0
        assert engine.auditor.violations == []

    def test_degradation_sheds_then_restores(self):
        run, policies = _protected_testbed(ResilienceConfig(
            degradation=DegradationConfig(shed_water_level=0.9,
                                          restore_water_level=0.7,
                                          check_interval_s=0.5)))
        engine = FaultEngine(run.sim, gateway=run.mesh.gateway)
        engine.arm(FaultPlan.of(Fault(
            kind="backend_crash", at=0.2, target="service:1/backend:0",
            duration_s=0.3)))
        # Drive the water source directly so the test controls the
        # overload window (install_resilience wired the real one).
        water = {"level": 0.95}
        policies.water_source = lambda: water["level"]
        responses = {}
        _request_at(run, 0.0, responses)   # shed at cutoff 1
        _request_at(run, 1.0, responses)   # capacity back: admitted

        def cool_down():
            yield run.sim.timeout(0.6)
            water["level"] = 0.1

        run.sim.process(cool_down())
        run.sim.run()
        assert responses[0.0].status == 503
        assert responses[1.0].ok
        assert policies.degradation.requests_shed >= 1
        assert policies.degradation.cutoff == 0
        assert [cut for _t, cut in policies.degradation.escalations] \
            == [1, 0]
        assert engine.auditor.check("final") > 0
        assert engine.auditor.violations == []


# ---------------------------------------------------------------------------
# fluid-tier chaos: breaker containment of the query-of-death cascade
# ---------------------------------------------------------------------------
class TestBreakerContainment:
    @pytest.fixture(scope="class")
    def chaos_pair(self):
        plan_json = resilience_plan().canonical()
        baseline = _resilience_case(("chaos", 53, plan_json, False))
        protected = _resilience_case(("chaos", 53, plan_json, True))
        return baseline, protected

    def test_baseline_cascade_is_uncontained(self, chaos_pair):
        baseline, _ = chaos_pair
        assert baseline["qod_backends_crashed"] == baseline[
            "victim_backends"]
        assert 0 in baseline["victim_up"]

    def test_breaker_contains_blast_radius(self, chaos_pair):
        baseline, protected = chaos_pair
        assert protected["qod_backends_crashed"] \
            < baseline["qod_backends_crashed"]
        # The victim keeps its surviving shuffle-shard backends: it
        # never goes dark inside the query-of-death window.
        lo = int(next(f.at for f in resilience_plan().sim_faults()
                      if f.kind == "query_of_death"))
        hi = lo + 20
        assert all(protected["victim_up"][lo + 1:hi])

    def test_containment_matches_aggregate_analogue(self, chaos_pair):
        _, protected = chaos_pair
        stats = protected["policy_stats"]
        config = BreakerConfig(window_s=30.0, min_requests=4,
                               failure_threshold=0.5,
                               open_duration_s=30.0, close_after=2)
        predicted = contained_cascade_depth(
            backends=protected["victim_backends"],
            failures_per_backend=3, config=config)
        assert protected["qod_backends_crashed"] == predicted
        opened = [sid for sid, breaker in stats["breakers"].items()
                  if breaker["times_opened"] > 0]
        assert len(opened) == 1  # only the poisoned service tripped

    def test_both_runs_audit_clean(self, chaos_pair):
        for run in chaos_pair:
            assert run["checks"] > 0
            assert run["violations"] == 0


# ---------------------------------------------------------------------------
# auditor: the two new invariants actually fire
# ---------------------------------------------------------------------------
def _policed_gateway():
    sim = Simulator(3)
    config = GatewayConfig(
        replicas_per_backend=2, backends_per_service_per_az=2,
        azs_per_service=2,
        replica=ReplicaConfig(cores=8, request_cost_s=100e-6,
                              request_cost_sigma=0.0))
    gateway = MeshGateway(sim, config)
    gateway.deploy_initial(["az1", "az2"], 4)
    tenant = gateway.registry.add_tenant("t1")
    service = gateway.registry.add_service(tenant, "web", "10.0.0.1")
    gateway.register_service(service)
    policies = ResiliencePolicies(ResilienceConfig(
        breaker=BreakerConfig(), retry=RetryConfig()))
    gateway.install_resilience(policies)
    return gateway, policies, service.service_id


class TestAuditorResilienceChecks:
    def test_clean_policies_pass(self):
        gateway, policies, sid = _policed_gateway()
        policies.record_dispatch(sid, 1.0, ok=True)
        auditor = InvariantAuditor(gateway=gateway)
        assert auditor.check("clean") > 0
        assert auditor.violations == []

    def test_forged_breaker_edge_is_a_violation(self):
        gateway, policies, sid = _policed_gateway()
        breaker = policies.breaker_for(sid)
        breaker.transitions.append((1.0, "open", "closed", "forged"))
        auditor = InvariantAuditor(gateway=gateway)
        with pytest.raises(InvariantViolation, match="breaker-legality"):
            auditor.check("forged-edge")

    def test_retry_amplification_cap_is_a_violation(self):
        gateway, policies, _sid = _policed_gateway()
        policies.retry.note_first_attempt()
        policies.retry.retries = 7  # bound is 1 x 2 = 2
        auditor = InvariantAuditor(gateway=gateway,
                                   raise_on_violation=False)
        auditor.check("amplified")
        assert [v.invariant for v in auditor.violations] \
            == ["retry-amplification"]

    def test_unprotected_gateway_skips_resilience_checks(self):
        gateway, _policies, _sid = _policed_gateway()
        gateway.resilience = None
        baseline = InvariantAuditor(gateway=gateway).check("bare")
        gateway2, _p, _s = _policed_gateway()
        assert InvariantAuditor(gateway=gateway2).check("policed") \
            == baseline + 2


# ---------------------------------------------------------------------------
# exhibit determinism: serial == pooled, byte for byte
# ---------------------------------------------------------------------------
class TestExhibitDeterminism:
    def test_serial_matches_pooled_bytes(self):
        plan_json = resilience_plan().canonical()
        specs = [("chaos", 53, plan_json, False),
                 ("chaos", 53, plan_json, True),
                 ("storm", 53, 5_000, 0.0),
                 ("storm", 53, 5_000, 1.0)]
        serial = [_resilience_case(spec) for spec in specs]
        with use_executor(jobs=2):
            pooled = sweep_map(_resilience_case, specs)
        assert json.dumps(serial, sort_keys=True, default=str) \
            == json.dumps(pooled, sort_keys=True, default=str)

    def test_unknown_case_kind_rejected(self):
        with pytest.raises(ValueError):
            _resilience_case(("nonsense",))

    def test_fig8_resilience_headline_findings(self):
        result = fig8_resilience(seed=53, seeds=[53])
        findings = result.findings
        assert findings["invariant_violations"] == 0.0
        assert findings["containment_matches_analytic"] == 1.0
        assert findings["qod_backends_crashed_protected"] \
            < findings["qod_backends_crashed_baseline"]
        assert findings["qod_victim_up_protected"] == 1.0
        assert findings["qod_victim_up_baseline"] == 0.0
        assert findings["storm_peak_jittered"] \
            < findings["storm_peak_synchronized"]
        assert findings["storm_peak_reduction"] > 1.0
        names = {series.name for series in result.series}
        assert {"availability_baseline", "availability_protected",
                "retry_arrivals_synchronized",
                "retry_arrivals_jittered"} <= names
