"""Tests for ``repro.runtime``: sweep determinism, the result cache,
warm-start snapshots, and the exhibit CLI."""

import multiprocessing
import pickle
import random

import pytest

from repro.experiments import EXPERIMENTS, exhibit_ids, run
from repro.experiments.__main__ import main as cli_main
from repro.runtime import (
    ResultCache,
    RunSpec,
    SweepExecutor,
    SweepPointError,
    WarmStart,
    cached_run,
    exhibit_fingerprint,
    module_closure,
    run_exhibit,
    sweep_imap,
    sweep_map,
    use_executor,
    warm_start,
)
from repro.simcore import Simulator


def _square(point):
    return point * point


def _explode_on_37(point):
    if point == 37:
        raise ValueError("boom")
    return point


def _concurrent_cache_writer(cache_dir, results):
    """Child-process body for the concurrent-writer race test."""
    try:
        result, hit = cached_run("fig17", cache_dir=cache_dir)
        results.put(("ok", result.exp_id, hit))
    except BaseException as exc:  # report, never hang the parent
        results.put(("error", repr(exc), None))


class TestSweepExecutor:
    def test_serial_map_preserves_order(self):
        assert sweep_map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_serial_imap_is_lazy(self):
        calls = []

        def probe(point):
            calls.append(point)
            return point

        # simlint: ignore[PICKLE001] serial executor — probe never pickled
        iterator = sweep_imap(probe, [1, 2, 3])
        assert next(iterator) == 1
        assert calls == [1]  # points past the cursor not yet computed

    def test_parallel_map_matches_serial(self):
        points = list(range(20))
        with SweepExecutor(jobs=4) as executor:
            assert executor.map(_square, points) == [
                p * p for p in points]

    def test_use_executor_scopes_ambient(self):
        with use_executor(jobs=4):
            assert sweep_map(_square, [2, 3]) == [4, 9]
        # back to serial outside the context
        assert sweep_map(_square, [2]) == [4]

    def test_jobs_zero_means_all_cores(self):
        executor = SweepExecutor(jobs=0)
        assert executor.jobs >= 1
        executor.close()

    def test_worker_exception_carries_point_repr(self):
        points = list(range(30, 45))
        with SweepExecutor(jobs=2) as executor:
            with pytest.raises(SweepPointError) as excinfo:
                executor.map(_explode_on_37, points)
        message = str(excinfo.value)
        # The failing point's index, repr, and original error all travel.
        assert "37" in message
        assert "_explode_on_37" in message
        assert "ValueError('boom')" in message

    def test_worker_exception_wrapper_is_transparent_on_success(self):
        points = list(range(20))
        with SweepExecutor(jobs=2) as executor:
            assert executor.map(_square, points) == [p * p for p in points]


class TestDeterminism:
    def test_fig2_identical_serial_vs_parallel(self):
        with use_executor(jobs=1):
            serial = run("fig2")
        with use_executor(jobs=4):
            parallel = run("fig2")
        assert serial == parallel
        assert serial.formatted() == parallel.formatted()

    def test_fig17_seed_sweep_identical_and_picklable(self):
        from repro.experiments.cloud_ops import fig17_scaling_cdf

        kwargs = dict(reuse_events=6, new_events=2, seeds=[37, 38])
        serial = fig17_scaling_cdf(**kwargs)
        with use_executor(jobs=2):
            parallel = fig17_scaling_cdf(**kwargs)
        assert serial == parallel
        pickle.loads(pickle.dumps(parallel))


class TestResultCache:
    def test_miss_then_hit_equal(self, tmp_path):
        first, hit1 = cached_run("fig17", cache_dir=str(tmp_path))
        second, hit2 = cached_run("fig17", cache_dir=str(tmp_path))
        assert (hit1, hit2) == (False, True)
        assert first == second
        assert first.formatted() == second.formatted()

    def test_refresh_recomputes_but_stores(self, tmp_path):
        cached_run("fig17", cache_dir=str(tmp_path))
        result, hit = cached_run("fig17", cache_dir=str(tmp_path),
                                 refresh=True)
        assert not hit
        _again, hit_again = cached_run("fig17", cache_dir=str(tmp_path))
        assert hit_again

    def test_fingerprint_distinct_per_exhibit(self):
        assert exhibit_fingerprint("fig2") != exhibit_fingerprint("fig17")

    def test_fingerprint_stable_and_extra_sensitive(self):
        assert exhibit_fingerprint("fig2") == exhibit_fingerprint("fig2")
        assert exhibit_fingerprint("fig2") != exhibit_fingerprint(
            "fig2", extra="x")

    def test_closure_includes_own_and_simcore_modules(self):
        closure = module_closure("repro.experiments.cloud_ops")
        assert "repro.experiments.cloud_ops" in closure
        assert "repro.simcore.sim" in closure

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cached_run("fig17", cache_dir=str(tmp_path))
        for entry in tmp_path.iterdir():
            entry.write_bytes(b"not a pickle")
        assert cache.load("fig17") is None

    def test_run_exhibit_reports_cache_hit(self, tmp_path):
        spec = RunSpec("fig17", cache_dir=str(tmp_path))
        cold = run_exhibit(spec)
        warm = run_exhibit(spec)
        assert not cold.cache_hit and warm.cache_hit
        assert cold.result == warm.result

    def test_concurrent_writers_one_valid_entry(self, tmp_path):
        """Two processes caching the same key must both succeed via the
        atomic tmp+rename path and leave exactly one valid entry."""
        cache_dir = str(tmp_path / "shared")
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = multiprocessing.get_context()
        results = context.SimpleQueue()
        writers = [
            context.Process(target=_concurrent_cache_writer,
                            args=(cache_dir, results))
            for _index in range(2)]
        for writer in writers:
            writer.start()
        outcomes = [results.get() for _writer in writers]
        for writer in writers:
            writer.join(timeout=60)
        assert [w.exitcode for w in writers] == [0, 0]
        # Both writers succeed — whichever order the tmp+rename races
        # resolved in — and both return the same exhibit.
        assert sorted(outcome[0] for outcome in outcomes) == ["ok", "ok"]
        assert all(outcome[1] == "fig17" for outcome in outcomes)
        entries = sorted(p.name for p in (tmp_path / "shared").iterdir())
        assert len([e for e in entries if e.endswith(".pkl")]) == 1
        assert not [e for e in entries if e.endswith(".tmp")]
        # The surviving entry is valid and loadable.
        cached = ResultCache(cache_dir).load("fig17")
        assert cached is not None and cached.exp_id == "fig17"


class TestCLI:
    def test_unknown_exhibit_exits_1_and_lists_known(self, capsys):
        code = cli_main(["prog", "bogus_id"])
        captured = capsys.readouterr()
        assert code == 1
        assert "bogus_id" in captured.err
        assert "fig17" in captured.err and "table1" in captured.err

    def test_no_args_lists_exhibits(self, capsys):
        code = cli_main(["prog"])
        captured = capsys.readouterr()
        assert code == 1
        assert all(exp_id in captured.out for exp_id in EXPERIMENTS)

    def test_list_prints_sorted_ids_and_exits_0(self, capsys):
        code = cli_main(["prog", "--list", "--tier", "all"])
        captured = capsys.readouterr()
        assert code == 0
        lines = captured.out.splitlines()
        listed = [line.split()[0] for line in lines]
        assert listed == sorted(EXPERIMENTS)
        assert listed == exhibit_ids()  # the listing serve validates with
        # Every id carries its scheduling tier annotation.
        assert all(line.split()[1] in ("[testbed]", "[fleet]")
                   for line in lines)

    def test_list_default_tier_is_testbed(self, capsys):
        from repro.experiments import exhibit_tier
        code = cli_main(["prog", "--list"])
        captured = capsys.readouterr()
        assert code == 0
        listed = [line.split()[0] for line in captured.out.splitlines()]
        assert listed == [exp_id for exp_id in exhibit_ids()
                          if exhibit_tier(exp_id) == "testbed"]

    def test_single_exhibit_with_jobs_and_no_cache(self, capsys):
        code = cli_main(["prog", "fig17", "--jobs", "2", "--no-cache"])
        captured = capsys.readouterr()
        assert code == 0
        assert "fig17 regenerated" in captured.out

    def test_multi_exhibit_parallel_with_cache(self, tmp_path, capsys):
        argv = ["prog", "fig17", "table4", "--jobs", "2",
                "--cache-dir", str(tmp_path)]
        assert cli_main(argv) == 0
        out = capsys.readouterr().out
        # request order preserved even under exhibit-level parallelism
        assert out.index("[fig17 ") < out.index("[table4 ")
        assert cli_main(argv) == 0
        assert "fig17 cached" in capsys.readouterr().out

    def test_report_writes_artifacts(self, tmp_path, capsys):
        report_dir = tmp_path / "report"
        code = cli_main(["prog", "fig17", "--no-cache",
                         "--report", str(report_dir)])
        assert code == 0
        assert (report_dir / "fig17.report.json").exists()
        assert (report_dir / "fig17.prom").exists()
        assert (report_dir / "fig17.trace.json").exists()


# ---------------------------------------------------------------------------
# warm-start snapshots.


class _WarmTicker:
    """A picklable re-arming timer for warm-start worlds."""

    def __init__(self, sim, rng):
        self.sim = sim
        self.rng = rng
        self.count = 0
        sim.timeout(rng.random()).add_callback(self.fire)

    def fire(self, event):
        self.count += 1
        self.sim.timeout(0.5 + self.rng.random()).add_callback(self.fire)


def _warm_world():
    sim = Simulator(seed=5)
    rng = random.Random(8)
    sim._tickers = [_WarmTicker(sim, rng) for _ in range(40)]
    return sim


def _warm_measure(sim, point):
    sim.run(until=sim.now + 2.0)
    return (point, sum(ticker.count for ticker in sim._tickers))


class TestWarmStart:
    def test_matches_cold_sweep(self):
        snapshot = warm_start(_warm_world, until=10.0)
        points = [0, 1, 2]
        warm_results = snapshot.map(_warm_measure, points)
        cold_results = []
        for point in points:
            sim = _warm_world()
            sim.run(until=10.0)
            cold_results.append(_warm_measure(sim, point))
        assert warm_results == cold_results

    def test_parallel_map_matches_serial(self):
        snapshot = warm_start(_warm_world, until=5.0)
        points = list(range(4))
        serial = snapshot.map(_warm_measure, points)
        with use_executor(jobs=2):
            parallel = snapshot.map(_warm_measure, points)
        assert parallel == serial
        assert list(snapshot.imap(_warm_measure, points)) == serial

    def test_forks_are_independent(self):
        snapshot = warm_start(_warm_world, until=3.0)
        first, second = snapshot.fork(), snapshot.fork()
        assert first.now == second.now == 3.0
        first.run(until=9.0)
        assert second.now == 3.0  # untouched by the sibling's run

    def test_digest_is_stable_and_sized(self):
        first = warm_start(_warm_world, until=4.0)
        second = warm_start(_warm_world, until=4.0)
        # The same warm-up computation digests identically, so cache
        # variants are reproducible across runs. (Re-snapshotting a
        # *fork* is a different computation: pickle's string memo keys
        # on object identity, which an unpickle round-trip perturbs.)
        assert first.digest == second.digest
        assert first.variant == f"warm:{first.digest[:16]}"
        assert first.payload_size > 0
        assert isinstance(WarmStart(first.fork()).digest, str)

    def test_variant_partitions_the_result_cache(self, tmp_path):
        cache_dir = str(tmp_path)
        _, hit = cached_run("fig17", cache_dir=cache_dir)
        assert not hit
        _, hit = cached_run("fig17", cache_dir=cache_dir)
        assert hit
        # A warm-started variant never satisfies (or is satisfied by)
        # the cold entry — distinct fingerprints, distinct slots.
        _, warm_hit = cached_run("fig17", cache_dir=cache_dir,
                                 variant="warm:deadbeef00000000")
        assert not warm_hit
        _, warm_hit = cached_run("fig17", cache_dir=cache_dir,
                                 variant="warm:deadbeef00000000")
        assert warm_hit
        _, hit = cached_run("fig17", cache_dir=cache_dir)
        assert hit  # the cold slot is still intact
