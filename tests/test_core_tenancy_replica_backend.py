"""Tests for tenants/services, replicas, and backends."""

import pytest

from repro.core import Backend, Replica, ReplicaConfig, TenantRegistry
from repro.simcore import Simulator


@pytest.fixture
def sim():
    return Simulator(0)


class TestTenantRegistry:
    def test_add_tenant_assigns_vni(self):
        registry = TenantRegistry()
        t1 = registry.add_tenant("t1")
        t2 = registry.add_tenant("t2")
        assert t1.vni != t2.vni

    def test_duplicate_tenant_rejected(self):
        registry = TenantRegistry()
        registry.add_tenant("t1")
        with pytest.raises(ValueError):
            registry.add_tenant("t1")

    def test_overlapping_vpc_ips_allowed_across_tenants(self):
        registry = TenantRegistry()
        t1 = registry.add_tenant("t1")
        t2 = registry.add_tenant("t2")
        s1 = registry.add_service(t1, "web", "10.0.0.5")
        s2 = registry.add_service(t2, "web", "10.0.0.5")
        assert s1.service_id != s2.service_id

    def test_https_weight_is_3x(self):
        """§6.3: HTTPS requests consume ~3x the resources."""
        registry = TenantRegistry()
        tenant = registry.add_tenant("t1")
        http = registry.add_service(tenant, "a", "10.0.0.1", https=False)
        https = registry.add_service(tenant, "b", "10.0.0.2", https=True)
        assert https.request_weight == 3 * http.request_weight

    def test_service_lookup_by_name(self):
        registry = TenantRegistry()
        tenant = registry.add_tenant("t1")
        service = registry.add_service(tenant, "web", "10.0.0.5")
        assert registry.service_by_name("t1", "web") is service
        with pytest.raises(KeyError):
            registry.service_by_name("t1", "ghost")

    def test_services_of_tenant(self):
        registry = TenantRegistry()
        t1 = registry.add_tenant("t1")
        t2 = registry.add_tenant("t2")
        registry.add_service(t1, "a", "10.0.0.1")
        registry.add_service(t2, "b", "10.0.0.1")
        assert len(registry.services_of("t1")) == 1


class TestReplica:
    def test_fluid_water_level(self, sim):
        replica = Replica(sim, "r1", "az1",
                          ReplicaConfig(cores=8, request_cost_s=100e-6))
        replica.set_service_rps(1, 40_000.0)
        assert replica.water_level() == pytest.approx(0.5)

    def test_water_level_clamped(self, sim):
        replica = Replica(sim, "r1", "az1",
                          ReplicaConfig(cores=1, request_cost_s=1e-3))
        replica.set_service_rps(1, 10_000.0)
        assert replica.water_level() == 1.0

    def test_weighted_rps(self, sim):
        replica = Replica(sim, "r1", "az1")
        replica.set_service_rps(1, 100.0, weight=3.0)
        assert replica.offered_rps == pytest.approx(300.0)

    def test_zero_rps_clears_entry(self, sim):
        replica = Replica(sim, "r1", "az1")
        replica.set_service_rps(1, 100.0)
        replica.set_service_rps(1, 0.0)
        assert 1 not in replica.assigned_rps

    def test_top_services_ranked(self, sim):
        replica = Replica(sim, "r1", "az1")
        replica.set_service_rps(1, 100.0)
        replica.set_service_rps(2, 900.0)
        replica.set_service_rps(3, 500.0)
        top = list(replica.top_services(2))
        assert top == [2, 3]

    def test_session_table_bounded(self, sim):
        replica = Replica(sim, "r1", "az1",
                          ReplicaConfig(session_capacity=100))
        assert replica.add_sessions(90)
        assert not replica.add_sessions(20)
        assert replica.session_utilization() == pytest.approx(0.9)

    def test_session_imbalance_premise(self, sim):
        """§3.2 Issue #4: sessions exhaust while CPU sits near 20 %."""
        replica = Replica(sim, "r1", "az1",
                          ReplicaConfig(cores=8, request_cost_s=100e-6,
                                        session_capacity=100_000))
        replica.set_service_rps(1, 16_000.0)       # 20 % CPU
        replica.add_sessions(90_000)               # 90 % sessions
        assert replica.water_level() == pytest.approx(0.2)
        assert replica.session_utilization() == pytest.approx(0.9)

    def test_des_request_processing(self, sim):
        config = ReplicaConfig(cores=1, request_cost_s=1e-3,
                               request_cost_sigma=0.0)
        replica = Replica(sim, "r1", "az1", config)
        sim.process(replica.process_request())
        sim.run()
        assert sim.now == pytest.approx(1e-3)
        assert replica.requests_served == 1

    def test_https_weight_in_des(self, sim):
        config = ReplicaConfig(cores=1, request_cost_s=1e-3,
                               request_cost_sigma=0.0)
        replica = Replica(sim, "r1", "az1", config)
        sim.process(replica.process_request(weight=3.0))
        sim.run()
        assert sim.now == pytest.approx(3e-3)


class TestBackend:
    def _backend(self, sim, replicas=2):
        return Backend(sim, "b1", "az1", replicas=replicas,
                       replica_config=ReplicaConfig(cores=8,
                                                    request_cost_s=100e-6))

    def test_needs_replicas(self, sim):
        with pytest.raises(ValueError):
            Backend(sim, "b", "az1", replicas=0)

    def test_load_spread_over_replicas(self, sim):
        backend = self._backend(sim)
        backend.install_service(1)
        backend.offer_load(1, 80_000.0)
        waters = [r.water_level() for r in backend.replicas]
        assert waters[0] == pytest.approx(waters[1])
        assert backend.water_level() == pytest.approx(0.5)

    def test_offer_load_requires_configuration(self, sim):
        backend = self._backend(sim)
        with pytest.raises(KeyError):
            backend.offer_load(99, 100.0)

    def test_replica_failure_redistributes(self, sim):
        """Hierarchical recovery level 1: surviving replicas absorb."""
        backend = self._backend(sim)
        backend.install_service(1)
        backend.offer_load(1, 40_000.0)
        before = backend.replicas[0].water_level()
        backend.fail_replica("b1-r2")
        after = backend.replicas[0].water_level()
        assert after == pytest.approx(2 * before)
        assert backend.is_healthy

    def test_all_replicas_down_means_backend_down(self, sim):
        backend = self._backend(sim)
        backend.fail_all()
        assert not backend.is_healthy
        assert backend.water_level() == 0.0

    def test_recovery_restores_distribution(self, sim):
        backend = self._backend(sim)
        backend.install_service(1)
        backend.offer_load(1, 40_000.0)
        backend.fail_replica("b1-r1")
        backend.recover_replica("b1-r1")
        waters = [r.water_level() for r in backend.replicas]
        assert waters[0] == pytest.approx(waters[1])

    def test_add_replica_lowers_per_replica_load(self, sim):
        backend = self._backend(sim)
        backend.install_service(1)
        backend.offer_load(1, 80_000.0)
        before = backend.replicas[0].water_level()
        backend.add_replica()
        after = backend.replicas[0].water_level()
        assert after < before

    def test_top_services(self, sim):
        backend = self._backend(sim)
        for service_id, rps in ((1, 100.0), (2, 500.0), (3, 50.0)):
            backend.install_service(service_id)
            backend.offer_load(service_id, rps)
        assert list(backend.top_services(1)) == [2]

    def test_remove_service_clears_load(self, sim):
        backend = self._backend(sim)
        backend.install_service(1)
        backend.offer_load(1, 10_000.0)
        backend.remove_service(1)
        assert backend.water_level() == 0.0
        assert not backend.hosts_service(1)

    def test_draining_replica_not_accepting(self, sim):
        backend = self._backend(sim)
        backend.replicas[0].draining = True
        assert len(backend.accepting_replicas()) == 1
        assert len(backend.healthy_replicas()) == 2

    def test_pick_replica_skips_draining(self, sim):
        backend = self._backend(sim)
        backend.replicas[0].draining = True
        for flow_hash in range(10):
            assert backend.pick_replica(flow_hash).name == "b1-r2"

    def test_pick_replica_none_when_empty(self, sim):
        backend = self._backend(sim)
        backend.fail_all()
        assert backend.pick_replica(0) is None
